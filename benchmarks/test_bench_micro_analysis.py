"""J-T2 / J-F2 — spatial-analysis micro benchmark.

One benchmark per ST_* analysis function per engine; engines lacking a
function skip it (the paper reports those cells as unsupported)."""

import pytest

from repro.core.micro import analysis_queries, bind_dataset
from repro.errors import UnsupportedFeatureError

from _bench_utils import run_query


@pytest.fixture(scope="session")
def queries(dataset):
    return {q.query_id: q for q in bind_dataset(analysis_queries(), dataset)}


QUERY_IDS = sorted(q.query_id for q in analysis_queries())


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_analysis_query(benchmark, engine_cursor, queries, query_id):
    engine, cursor = engine_cursor
    query = queries[query_id]
    benchmark.group = query_id
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["title"] = query.title
    try:
        run_query(benchmark, cursor, query.sql, query.params)
    except UnsupportedFeatureError as exc:
        pytest.skip(f"{engine}: {exc}")
