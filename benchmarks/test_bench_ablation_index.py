"""J-A2 — ablation: index structure (R-tree vs grid vs quadtree vs scan).

Same engine profile (greenwood), same data, only the ``USING`` clause of
``CREATE SPATIAL INDEX`` changes. Workloads cover the regimes where the
structures differ: small selective windows, large windows, point probes,
and an index-nested-loop spatial join driven by long skinny road
envelopes (the straddler case that hurts quadtrees)."""

import pytest

from repro.dbapi import connect
from repro.engines import Database

from _bench_utils import run_query

INDEX_KINDS = ("rtree", "grid", "quadtree", "scan")

QUERIES = {
    "window_selective": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(40000, 40000, 43000, 43000))"
    ),
    "window_broad": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(5000, 5000, 70000, 70000))"
    ),
    "point_probe": (
        "SELECT COUNT(*) FROM parcels "
        "WHERE ST_Contains(geom, ST_Point(48000, 52000))"
    ),
    "join_roads_water": (
        "SELECT COUNT(*) FROM areawater w JOIN edges e "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@pytest.fixture(scope="module")
def cursors_by_kind(dataset):
    cursors = {}
    for kind in INDEX_KINDS:
        db = Database("greenwood")
        dataset.load_into(db, create_indexes=False)
        if kind != "scan":
            for layer in dataset.layers.values():
                db.execute(
                    f"CREATE SPATIAL INDEX aidx_{layer.name} "
                    f"ON {layer.name} (geom) USING {kind}"
                )
        cursors[kind] = connect(database=db).cursor()
    return cursors


@pytest.mark.parametrize("kind", INDEX_KINDS)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_index_structures(benchmark, cursors_by_kind, query_name, kind):
    benchmark.group = f"index_structure.{query_name}"
    benchmark.extra_info["index"] = kind
    run_query(benchmark, cursors_by_kind[kind], QUERIES[query_name])
