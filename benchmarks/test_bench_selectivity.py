"""J-X1 (extension) — window-selectivity sweep.

Window queries over the road layer at growing window sizes, per engine.
Grouped per window fraction so each report group reads as one x-position
of the sweep curve."""

import pytest

from repro.datagen.tiger import WORLD_SIZE

from _bench_utils import run_query

FRACTIONS = (0.01, 0.1, 0.5, 1.0)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_selectivity(benchmark, engine_cursor, fraction):
    engine, cursor = engine_cursor
    benchmark.group = f"selectivity.window_{fraction}"
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["fraction"] = fraction
    half = fraction * WORLD_SIZE / 2.0
    cx = cy = WORLD_SIZE / 2.0
    sql = (
        f"SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
        f"ST_MakeEnvelope({cx - half}, {cy - half}, {cx + half}, {cy + half}))"
    )
    run_query(benchmark, cursor, sql)
