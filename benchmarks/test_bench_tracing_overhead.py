"""Request-tracing overhead guard for the untraced service path.

The flight recorder is pay-as-you-go: a server started without
``--trace`` must pay exactly one bool check per request — the wire
image, the dispatch path, and the ``CachedExecutor`` call are all
byte-identical to the pre-tracing service tier. This module pins that
contract two ways:

- the round-trip path: a client with ``trace=False`` (the exact PR 8
  wire image) against a tracing-disabled server must stay within 5% of
  the same loop with a ``trace=True`` client against that same server
  (the only delta is a few ignored bytes per frame) — and, the guard
  that matters, the *untraced server* must never call into the
  recorder at all;
- the one-bool gate: with the recorder's entry points replaced by
  raising stubs, an untraced server serves a full round without
  tripping them.

Run standalone::

    pytest benchmarks/test_bench_tracing_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.datagen import generate
from repro.engines import Database
from repro.obs.requests import RECORDER
from repro.service import JackpineServer, ServerConfig, ServiceClient

from _bench_utils import BENCH_SCALE, BENCH_SEED

#: allowed slowdown of the untraced server round-trip when clients
#: attach trace contexts (the server reads one absent dict key)
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3
ROUND_TRIPS = 150

#: cheap statement: round-trip cost is protocol + dispatch, not execution
SQL = "SELECT COUNT(*) FROM pointlm WHERE gid < ?"


def _fresh_db() -> Database:
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


def _median_seconds(call, repeats: int = REPEATS) -> float:
    call()  # warm caches (connection, parse, plan) outside the window
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_untraced_round_trip_overhead_within_budget():
    db = _fresh_db()
    with JackpineServer(db, ServerConfig(pool_size=2,
                                         cache_capacity=0)) as server:
        plain = ServiceClient.from_address(server.address, trace=False)
        traced = ServiceClient.from_address(server.address, trace=True)
        try:
            def round_of(client):
                def run():
                    for index in range(ROUND_TRIPS):
                        client.execute(SQL, (index % 50,))
                return run

            ratios = []
            for _ in range(ATTEMPTS):
                # alternate within the attempt so warmup (socket
                # buffers, plan cache) never lands on just one side
                baseline = _median_seconds(round_of(plain), repeats=3)
                candidate = _median_seconds(round_of(traced), repeats=3)
                ratio = candidate / baseline
                ratios.append(ratio)
                if ratio <= OVERHEAD_BUDGET:
                    break
            assert min(ratios) <= OVERHEAD_BUDGET, (
                f"trace-context frames cost {min(ratios):.3f}x on the "
                f"untraced server (budget {OVERHEAD_BUDGET:.0%}): "
                f"ratios={[f'{r:.3f}' for r in ratios]}"
            )
        finally:
            plain.close()
            traced.close()


def test_untraced_server_is_one_bool_check():
    """The disabled path must never reach the recorder — enforced by
    making every entry point explode, then serving a round."""
    db = _fresh_db()

    def explode(*_a, **_k):  # pragma: no cover - must not be called
        raise AssertionError("recorder touched on the untraced path")

    saved = RECORDER.begin, RECORDER.finish, RECORDER.bind
    RECORDER.begin = explode  # type: ignore[method-assign]
    RECORDER.finish = explode  # type: ignore[method-assign]
    RECORDER.bind = explode  # type: ignore[method-assign]
    try:
        with JackpineServer(db, ServerConfig(pool_size=2)) as server:
            with ServiceClient.from_address(server.address) as client:
                for index in range(20):
                    result = client.execute(SQL, (index,))
                    assert result.rows
                    assert result.trace_id is None
    finally:
        RECORDER.begin, RECORDER.finish, RECORDER.bind = saved
