"""J-A1 — ablation: exact refinement vs MBR-only predicate evaluation.

The design choice that separates the paper's open-source engines: after
the index filter, does the engine refine on the exact geometry (correct,
slower) or answer on bounding boxes (fast, superset answers)? Each
benchmark records both the time and the answer cardinality so the report
shows the speed/correctness trade simultaneously. The three predicate
mechanisms (fast-path, full DE-9IM matrix, MBR) come from the three
profiles over identical data and identical plans."""

import pytest

from _bench_utils import run_query

QUERIES = {
    "contains_points": (
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)"
    ),
    "touches_counties": (
        "SELECT COUNT(*) FROM counties a JOIN counties b "
        "ON ST_Touches(a.geom, b.geom) WHERE a.gid < b.gid"
    ),
    "within_window": (
        "SELECT COUNT(*) FROM arealm "
        "WHERE ST_Within(geom, ST_MakeEnvelope(15000, 15000, 55000, 55000))"
    ),
    "intersects_lines_water": (
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_refinement_modes(benchmark, engine_cursor, query_name):
    engine, cursor = engine_cursor
    benchmark.group = f"refinement.{query_name}"
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["predicate_mode"] = {
        "greenwood": "exact-fast-path",
        "bluestem": "mbr-only",
        "ironbark": "exact-full-matrix",
    }[engine]
    rows = run_query(benchmark, cursor, QUERIES[query_name])
    benchmark.extra_info["answer"] = rows[0][0]
