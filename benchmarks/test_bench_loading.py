"""J-T3 / J-F4 — data loading benchmark.

Times, per engine: full-dataset ingestion through the DB-API (WKB over
qmark parameters, the portable loader path) and spatial index build on
the populated tables. One benchmark per (engine, phase) so the report
reads as the paper's loading figure."""

import pytest

from repro.core.micro.loading import run_loading
from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database

from _bench_utils import BENCH_SEED, ENGINES

LOAD_SCALE = 0.25


@pytest.fixture(scope="module")
def load_dataset():
    return generate(seed=BENCH_SEED, scale=LOAD_SCALE)


@pytest.mark.parametrize("engine", ENGINES)
def test_bulk_insert(benchmark, engine, load_dataset):
    benchmark.group = "loading.insert"
    benchmark.extra_info["engine"] = engine

    def load():
        result = run_loading(engine, load_dataset)
        return result.total_insert

    total = benchmark.pedantic(load, rounds=3, iterations=1)
    benchmark.extra_info["rows"] = load_dataset.total_rows()


@pytest.mark.parametrize("engine", ENGINES)
def test_index_build(benchmark, engine, load_dataset):
    """Index construction on pre-populated tables (profile's index kind)."""
    benchmark.group = "loading.index_build"
    benchmark.extra_info["engine"] = engine

    db = Database(engine)
    load_dataset.load_into(db, create_indexes=False)
    cursor = connect(database=db).cursor()
    counter = [0]

    def build():
        counter[0] += 1
        suffix = counter[0]
        for layer in load_dataset.layers.values():
            cursor.execute(
                f"CREATE SPATIAL INDEX bidx_{layer.name}_{suffix} "
                f"ON {layer.name} (geom)"
            )

    benchmark.pedantic(build, rounds=3, iterations=1)
