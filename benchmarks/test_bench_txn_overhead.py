"""MVCC overhead guard for the auto-commit read path.

The transaction subsystem must be pay-as-you-go: a database that never
ran an explicit transaction keeps unversioned heaps (``table._xmin is
None``), scans take the pre-MVCC fast path, and ``Database.execute``
adds only the per-statement latch + stats-shard bookkeeping. This
module pins that contract like the guardrail overhead guard does: the
full jx3 topology-join matrix through ``db.execute`` on a
transaction-capable engine, against the direct cached-plan baseline,
medians summed across the matrix, within 5% on at least one attempt.

A second guard covers the *versioned-but-quiescent* case: after
transactions commit and the vacuum drains, version arrays exist but
every row is frozen — reads must still answer identically (correctness,
not time, is the bar there; the all-frozen visibility check is one
integer compare per row).

Run standalone::

    pytest benchmarks/test_bench_txn_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.core.experiments import JOIN_MATRIX
from repro.datagen import generate
from repro.engines import Database
from repro.sql.executor import ExecContext

from _bench_utils import BENCH_SCALE, BENCH_SEED

#: allowed slowdown of auto-commit execute over the direct plan path
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3


def _fresh_db() -> Database:
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


def _run_plan_directly(db: Database, sql: str):
    """The pre-MVCC fast path: cached plan, no snapshot in the context."""
    statement = db._parse_statement(sql)
    cached = db._plan_cache.get(sql)
    if cached is None:
        cached = db._planner.plan_select(statement)
        db._plan_cache[sql] = cached
    plan, names = cached
    ctx = ExecContext(
        (), db.profile, db.registry, db.catalog, db.stats,
    )
    return [row["__out__"] for row in plan.rows(ctx)]


def _median_seconds(call, repeats: int = REPEATS) -> float:
    call()  # warm caches (parse, plan, index) outside the timed window
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_tables_stay_unversioned_without_transactions():
    db = _fresh_db()
    for _label, sql in JOIN_MATRIX:
        db.execute(sql)
    for table in db.catalog.tables():
        assert table._xmin is None
    assert db.txn.active_count == 0


def test_autocommit_execute_matches_direct_plan_answers():
    db = _fresh_db()
    for _label, sql in JOIN_MATRIX:
        via_execute = db.execute(sql).scalar()
        direct = _run_plan_directly(db, sql)[0][0]
        assert via_execute == direct


def test_versioned_quiescent_reads_match_unversioned():
    """After txn traffic drains, frozen version arrays change nothing."""
    db = _fresh_db()
    before = {sql: db.execute(sql).scalar() for _label, sql in JOIN_MATRIX}
    gid = db.execute("SELECT gid FROM pointlm ORDER BY gid LIMIT 1").scalar()
    db.execute("BEGIN")
    db.execute("UPDATE pointlm SET name = ? WHERE gid = ?", ("touched", gid))
    db.execute("COMMIT")
    assert db.txn.pending_garbage == 0
    assert db.catalog.table("pointlm")._xmin is not None
    for _label, sql in JOIN_MATRIX:
        assert db.execute(sql).scalar() == before[sql]


def test_txn_overhead_within_budget():
    db = _fresh_db()
    ratios = []
    for _ in range(ATTEMPTS):
        via_execute = 0.0
        baseline = 0.0
        for _label, sql in JOIN_MATRIX:
            via_execute += _median_seconds(lambda s=sql: db.execute(s))
            baseline += _median_seconds(
                lambda s=sql: _run_plan_directly(db, s)
            )
        ratio = via_execute / baseline
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"transaction-capable execute exceeded the {OVERHEAD_BUDGET:.0%} "
        f"budget on every attempt: ratios={[f'{r:.3f}' for r in ratios]}"
    )
