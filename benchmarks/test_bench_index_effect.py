"""J-F5 — effect of the spatial index.

The same selective queries against two copies of the same engine
(greenwood), one with spatial indexes and one without. The paper's
figure shows orders of magnitude on selective window queries and on
spatial joins (index nested loop vs. nested loop)."""

import pytest

from repro.dbapi import connect
from repro.engines import Database

from _bench_utils import run_query

QUERIES = {
    "window_small": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(40000, 40000, 44000, 44000))"
    ),
    "window_large": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(10000, 10000, 60000, 60000))"
    ),
    "point_probe": (
        "SELECT COUNT(*) FROM counties "
        "WHERE ST_Contains(geom, ST_Point(51234, 48765))"
    ),
    "spatial_join": (
        "SELECT COUNT(*) FROM areawater w JOIN pointlm p "
        "ON ST_Within(p.geom, w.geom)"
    ),
    "dwithin": (
        "SELECT COUNT(*) FROM pointlm "
        "WHERE ST_DWithin(geom, ST_Point(50000, 50000), 4000)"
    ),
}


@pytest.fixture(scope="module")
def databases(dataset):
    indexed = Database("greenwood")
    dataset.load_into(indexed, create_indexes=True)
    unindexed = Database("greenwood")
    dataset.load_into(unindexed, create_indexes=False)
    return {"indexed": indexed, "unindexed": unindexed}


@pytest.mark.parametrize("mode", ["indexed", "unindexed"])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_index_effect(benchmark, databases, query_name, mode):
    benchmark.group = f"index_effect.{query_name}"
    benchmark.extra_info["mode"] = mode
    cursor = connect(database=databases[mode]).cursor()
    run_query(benchmark, cursor, QUERIES[query_name])
