"""Helpers shared by the benchmark modules (kept out of conftest so the
name cannot collide with the test suite's conftest)."""

from __future__ import annotations

#: the scale every J-* experiment (except the scalability sweep) runs at
BENCH_SCALE = 0.25
BENCH_SEED = 42

ENGINES = ("greenwood", "bluestem", "ironbark")


def run_query(benchmark, cursor, sql, params=()):
    """Standard measurement protocol for one SQL statement."""

    def call():
        cursor.execute(sql, params)
        return cursor.fetchall()

    rows = benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)
    if rows and len(rows[0]) == 1:
        benchmark.extra_info["result"] = rows[0][0]
    benchmark.extra_info["rows"] = len(rows)
    return rows
