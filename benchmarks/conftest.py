"""Shared fixtures for the benchmark harness.

One dataset and one loaded database per engine are built per session;
benchmarks use ``benchmark.pedantic`` with explicit rounds so the whole
harness completes in minutes while still reporting stable medians.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SCALE, BENCH_SEED, ENGINES
from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database


@pytest.fixture(scope="session")
def dataset():
    return generate(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def loaded_databases(dataset):
    databases = {}
    for engine in ENGINES:
        db = Database(engine)
        dataset.load_into(db, create_indexes=True)
        databases[engine] = db
    return databases


@pytest.fixture(params=ENGINES)
def engine_cursor(request, loaded_databases):
    """(engine_name, cursor) for each of the three engine profiles."""
    engine = request.param
    conn = connect(database=loaded_databases[engine])
    yield engine, conn.cursor()
    conn.close()
