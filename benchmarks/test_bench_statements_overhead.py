"""Statement-store overhead guard.

The statement store follows the engine's one-bool discipline: with
``obs.statements.enabled`` False (the default), ``Database.execute``
takes the plain path and never touches fingerprinting, plan capture or
the store lock — the only cost is the pre-existing ``obs.active`` check.
This module pins that contract the way ``test_bench_waits_overhead.py``
pins the wait monitor: time the jx3 topology-join matrix through
``db.execute`` with statements disabled against the direct-plan baseline
and assert the medians stay within 5%.

Wall-clock comparisons at single-digit-percent resolution are noisy, so
the guard measures median-of-repeats per query, sums across the matrix,
and retries the whole comparison a few times — it fails only when
*every* attempt exceeds the budget. Run standalone::

    pytest benchmarks/test_bench_statements_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.core.experiments import JOIN_MATRIX
from repro.datagen import generate
from repro.engines import Database
from repro.sql.executor import ExecContext

from _bench_utils import BENCH_SCALE, BENCH_SEED

#: allowed slowdown of statements-disabled execute over the direct path
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3


def _fresh_db() -> Database:
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


def _run_plan_directly(db: Database, sql: str):
    """The seed-era fast path: cached plan, no instrumentation branch."""
    statement = db._parse_statement(sql)
    cached = db._plan_cache.get(sql)
    if cached is None:
        cached = db._planner.plan_select(statement)
        db._plan_cache[sql] = cached
    plan, names = cached
    ctx = ExecContext(
        (), db.profile, db.registry, db.catalog, db.stats,
    )
    return [row["__out__"] for row in plan.rows(ctx)]


def _median_seconds(call, repeats: int = REPEATS) -> float:
    call()  # warm caches (parse, plan, index) outside the timed window
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_statements_disabled_by_default():
    db = Database("greenwood")
    assert db.obs.statements.enabled is False
    assert db.obs.active is False


def test_disabled_execute_matches_direct_plan_answers():
    db = _fresh_db()
    assert db.obs.statements.enabled is False
    for _label, sql in JOIN_MATRIX:
        via_execute = db.execute(sql).scalar()
        direct = _run_plan_directly(db, sql)[0][0]
        assert via_execute == direct


def test_enabled_records_every_matrix_statement():
    db = _fresh_db()
    db.obs.enable_statements()
    try:
        for _label, sql in JOIN_MATRIX:
            db.execute(sql)
        entries = db.obs.statements.statements()
        assert len(entries) == len(JOIN_MATRIX)
    finally:
        db.obs.disable_statements()


def test_disabled_overhead_within_budget():
    db = _fresh_db()
    assert db.obs.statements.enabled is False
    ratios = []
    for _ in range(ATTEMPTS):
        guarded = 0.0
        baseline = 0.0
        for _label, sql in JOIN_MATRIX:
            guarded += _median_seconds(lambda s=sql: db.execute(s))
            baseline += _median_seconds(
                lambda s=sql: _run_plan_directly(db, s)
            )
        ratio = guarded / baseline
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"statements-disabled execute exceeded the {OVERHEAD_BUDGET:.0%} "
        f"budget on every attempt: ratios={[f'{r:.3f}' for r in ratios]}"
    )
