"""J-T1 / J-F1 — topological micro benchmark.

Regenerates the paper's per-query response-time comparison: every DE-9IM
relation × geometry-type-pair query, against all three engines. Run::

    pytest benchmarks/test_bench_micro_topology.py --benchmark-only \
        --benchmark-group-by=param:query_id --benchmark-columns=median

and read each group as one cluster of the paper's Figure: three bars
(engines) per topological query. Queries an engine cannot execute are
skipped and reported as such — feature gaps are part of the result.
"""

import pytest

from repro.core.micro import topology_queries
from repro.errors import UnsupportedFeatureError

from _bench_utils import run_query

QUERIES = {q.query_id: q for q in topology_queries()}


@pytest.mark.parametrize("query_id", sorted(QUERIES))
def test_topology_query(benchmark, engine_cursor, query_id):
    engine, cursor = engine_cursor
    query = QUERIES[query_id]
    benchmark.group = query_id
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["title"] = query.title
    try:
        run_query(benchmark, cursor, query.sql, query.params)
    except UnsupportedFeatureError as exc:
        pytest.skip(f"{engine}: {exc}")
