"""J-F6 — scalability with dataset size.

A fixed micro-query subset on the greenwood engine at four dataset
scales. The paper's scalability series shows how response time grows
with feature count; here the series is the same queries at 0.1x, 0.25x,
0.5x and 1x of the benchmark layer cardinalities."""

import pytest

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database

from _bench_utils import BENCH_SEED, run_query

SCALES = (0.1, 0.25, 0.5, 1.0)

QUERIES = {
    "window": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(20000, 20000, 45000, 45000))"
    ),
    "containment_join": (
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)"
    ),
    "line_water_join": (
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@pytest.fixture(scope="module")
def scaled_cursors():
    cursors = {}
    for scale in SCALES:
        db = Database("greenwood")
        generate(seed=BENCH_SEED, scale=scale).load_into(db)
        cursors[scale] = connect(database=db).cursor()
    return cursors


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_scalability(benchmark, scaled_cursors, query_name, scale):
    benchmark.group = f"scalability.{query_name}"
    benchmark.extra_info["scale"] = scale
    run_query(benchmark, scaled_cursors[scale], QUERIES[query_name])
