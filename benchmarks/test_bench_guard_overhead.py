"""Guardrail overhead guard.

Guardrails must cost *nothing it can avoid* when no limit is set:
``Database.execute`` arms a guard only when a limit is configured
(:meth:`Guardrails.start` returns ``None`` otherwise), and every
executor call site gates on ``guard is not None`` before doing any
accounting. This module pins that contract the same way the
observability overhead guard does: the full jx3 topology-join matrix
through ``db.execute`` with no guardrails configured, against the
direct cached-plan baseline, medians summed across the matrix, within
5% on at least one attempt. Run standalone::

    pytest benchmarks/test_bench_guard_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.core.experiments import JOIN_MATRIX
from repro.datagen import generate
from repro.engines import Database
from repro.sql.executor import ExecContext

from _bench_utils import BENCH_SCALE, BENCH_SEED

#: allowed slowdown of guardrail-free execute over the direct plan path
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3


def _fresh_db() -> Database:
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


def _run_plan_directly(db: Database, sql: str):
    """The pre-guardrail fast path: cached plan, no guard in the context."""
    statement = db._parse_statement(sql)
    cached = db._plan_cache.get(sql)
    if cached is None:
        cached = db._planner.plan_select(statement)
        db._plan_cache[sql] = cached
    plan, names = cached
    ctx = ExecContext(
        (), db.profile, db.registry, db.catalog, db.stats,
    )
    return [row["__out__"] for row in plan.rows(ctx)]


def _median_seconds(call, repeats: int = REPEATS) -> float:
    call()  # warm caches (parse, plan, index) outside the timed window
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_guardrails_disabled_by_default():
    db = Database("greenwood")
    assert db.guardrails.enabled is False
    assert db.guardrails.start() is None


def test_unguarded_execute_matches_direct_plan_answers():
    db = _fresh_db()
    for _label, sql in JOIN_MATRIX:
        via_execute = db.execute(sql).scalar()
        direct = _run_plan_directly(db, sql)[0][0]
        assert via_execute == direct


def test_guarded_execute_matches_unguarded_answers():
    """A live guard (generous limits) must not change any answer."""
    db = _fresh_db()
    for _label, sql in JOIN_MATRIX:
        unguarded = db.execute(sql).scalar()
        guarded = db.execute(sql, timeout=3600.0).scalar()
        assert guarded == unguarded


def test_disabled_overhead_within_budget():
    db = _fresh_db()
    assert db.guardrails.enabled is False
    ratios = []
    for _ in range(ATTEMPTS):
        guarded = 0.0
        baseline = 0.0
        for _label, sql in JOIN_MATRIX:
            guarded += _median_seconds(lambda s=sql: db.execute(s))
            baseline += _median_seconds(
                lambda s=sql: _run_plan_directly(db, s)
            )
        ratio = guarded / baseline
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"guardrail-free execute exceeded the {OVERHEAD_BUDGET:.0%} budget "
        f"on every attempt: ratios={[f'{r:.3f}' for r in ratios]}"
    )
