"""Service-tier overhead guard for the embedded no-server path.

The query service must be pay-as-you-go, like every subsystem before
it: a process that never starts a :class:`JackpineServer` pays only the
write-watermark stamp that the result cache's invalidation protocol
needs — one dict write per committed DML statement, nothing on reads.
This module pins that contract the same way the txn overhead guard
does:

- the read path: the full jx3 topology-join matrix through
  ``db.execute`` (which now initialises ``write_marks``/``service`` on
  every Database) against the direct cached-plan baseline, within 5%;
- the write path: single-row auto-commit UPDATEs with the watermark
  stamp live against the same loop with ``bump_write_marks``
  monkeypatched to a no-op, within 5%.

Run standalone::

    pytest benchmarks/test_bench_service_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.core.experiments import JOIN_MATRIX
from repro.datagen import generate
from repro.engines import Database
from repro.sql.executor import ExecContext

from _bench_utils import BENCH_SCALE, BENCH_SEED

#: allowed slowdown of the embedded path with service hooks in place
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3
WRITE_ROUNDS = 300


def _fresh_db() -> Database:
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


def _run_plan_directly(db: Database, sql: str):
    """The engine-internal fast path: cached plan, no service hooks."""
    statement = db._parse_statement(sql)
    cached = db._plan_cache.get(sql)
    if cached is None:
        cached = db._planner.plan_select(statement)
        db._plan_cache[sql] = cached
    plan, names = cached
    ctx = ExecContext(
        (), db.profile, db.registry, db.catalog, db.stats,
    )
    return [row["__out__"] for row in plan.rows(ctx)]


def _median_seconds(call, repeats: int = REPEATS) -> float:
    call()  # warm caches (parse, plan, index) outside the timed window
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_reads_never_touch_write_marks():
    db = _fresh_db()
    assert db.service is None
    # loading stamps every table once (the cache must see table creation
    # as a write); a read-only workload must not move any of them after
    after_load = dict(db.write_marks)
    for _label, sql in JOIN_MATRIX:
        db.execute(sql)
    assert db.write_marks == after_load, (
        "a read-only workload must not advance any watermark"
    )


def test_writes_stamp_marks_only_touched_tables():
    db = _fresh_db()
    after_load = dict(db.write_marks)
    gid = db.execute("SELECT gid FROM pointlm ORDER BY gid LIMIT 1").scalar()
    db.execute("UPDATE pointlm SET name = ? WHERE gid = ?", ("a", gid))
    first = db.write_marks["pointlm"]
    assert first != after_load["pointlm"]
    untouched = {k: v for k, v in db.write_marks.items() if k != "pointlm"}
    assert untouched == {k: v for k, v in after_load.items()
                        if k != "pointlm"}, (
        "a write must stamp only the tables it touched"
    )
    db.execute("UPDATE pointlm SET name = ? WHERE gid = ?", ("b", gid))
    assert db.write_marks["pointlm"] != first, (
        "every committed write must advance the table's watermark"
    )
    # a no-op write (rowcount 0) must not advance it
    quiet = db.write_marks["pointlm"]
    db.execute("UPDATE pointlm SET name = ? WHERE gid = ?", ("c", -1))
    assert db.write_marks["pointlm"] == quiet


def test_read_overhead_within_budget():
    db = _fresh_db()
    ratios = []
    for _ in range(ATTEMPTS):
        via_execute = 0.0
        baseline = 0.0
        for _label, sql in JOIN_MATRIX:
            via_execute += _median_seconds(lambda s=sql: db.execute(s))
            baseline += _median_seconds(
                lambda s=sql: _run_plan_directly(db, s)
            )
        ratio = via_execute / baseline
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"embedded reads exceeded the {OVERHEAD_BUDGET:.0%} budget with "
        f"service hooks in place: ratios={[f'{r:.3f}' for r in ratios]}"
    )


def test_write_watermark_overhead_within_budget():
    db = _fresh_db()
    gid = db.execute("SELECT gid FROM pointlm ORDER BY gid LIMIT 1").scalar()
    sql = "UPDATE pointlm SET name = ? WHERE gid = ?"

    def write_round():
        for index in range(WRITE_ROUNDS):
            db.execute(sql, (f"bench-{index}", gid))

    original = Database.bump_write_marks
    ratios = []
    for _ in range(ATTEMPTS):
        # alternate within the attempt so one-time warmup (version
        # arrays, allocator growth) never lands on just one side
        Database.bump_write_marks = original
        stamped = _median_seconds(write_round, repeats=3)
        Database.bump_write_marks = lambda self, tables, xid: None
        try:
            unstamped = _median_seconds(write_round, repeats=3)
        finally:
            Database.bump_write_marks = original
        ratio = stamped / unstamped
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"watermark stamping cost {min(ratios):.3f}x on the auto-commit "
        f"write path (budget {OVERHEAD_BUDGET:.0%}): "
        f"ratios={[f'{r:.3f}' for r in ratios]}"
    )
