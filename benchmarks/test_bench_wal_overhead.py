"""Durability-hook overhead guard.

Every durable hook in the DML path — insert, update, delete, commit —
reads exactly one attribute (``db.durability``) and branches when no
storage is attached; nothing else may run on the detached path. This
module pins that contract the same way ``test_bench_waits_overhead.py``
pins the wait-event switchboard: time bulk inserts through
``insert_rows`` (latch + per-row durability branch) against the
seed-era direct heap+index path and assert the medians stay within 5%.

Wall-clock comparisons at single-digit-percent resolution are noisy, so
the guard measures median-of-repeats, clears the table outside the
timed window so index size cannot drift between calls, and retries the
whole comparison a few times — it fails only when *every* attempt
exceeds the budget. Run standalone::

    pytest benchmarks/test_bench_wal_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.engines import Database

#: allowed slowdown of the durability-detached path over direct inserts
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3
BATCH = 400

ROWS = [(i, f"POINT({i % 100} {i % 90})") for i in range(BATCH)]


def _fresh_db() -> Database:
    db = Database("greenwood")
    db.execute("CREATE TABLE bench (id INTEGER, g GEOMETRY)")
    db.execute("CREATE SPATIAL INDEX bench_g ON bench (g)")
    return db


def _insert_directly(db: Database) -> None:
    """The seed-era fast path: heap + index, no durability branch, no
    transaction bookkeeping."""
    table = db.catalog.table("bench")
    for values in ROWS:
        row_id = table.insert_row(values, xmin=0)
        db._index_insert(table, row_id)


def _insert_guarded(db: Database) -> None:
    db.insert_rows("bench", ROWS)


def _median_seconds(db: Database, call, repeats: int = REPEATS) -> float:
    call(db)  # warm caches outside the timed window
    db.execute("DELETE FROM bench")
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call(db)
        times.append(time.perf_counter() - start)
        db.execute("DELETE FROM bench")  # keep index size flat
    times.sort()
    return times[len(times) // 2]


def test_durability_detached_by_default():
    db = _fresh_db()
    assert db.durability is None


def test_detached_insert_matches_direct_inserts():
    db = _fresh_db()
    _insert_guarded(db)
    count = db.execute("SELECT COUNT(*) FROM bench").scalar()
    via_index = db.execute(
        "SELECT COUNT(*) FROM bench WHERE ST_Intersects(g, "
        "ST_MakeEnvelope(-1, -1, 200, 200))"
    ).scalar()
    assert count == via_index == BATCH
    db.execute("DELETE FROM bench")
    _insert_directly(db)
    assert db.execute("SELECT COUNT(*) FROM bench").scalar() == BATCH


def test_detached_overhead_within_budget():
    db = _fresh_db()
    assert db.durability is None
    ratios = []
    for _ in range(ATTEMPTS):
        guarded = _median_seconds(db, _insert_guarded)
        baseline = _median_seconds(db, _insert_directly)
        ratio = guarded / baseline
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"durability-detached insert exceeded the {OVERHEAD_BUDGET:.0%} "
        f"budget on every attempt: ratios={[f'{r:.3f}' for r in ratios]}"
    )
