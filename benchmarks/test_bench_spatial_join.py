"""J-X3 — spatial join strategy benchmark.

Times the topology join matrix with the spatial join algorithm forced to
INLJ (the seed engine's only strategy), synchronized tree traversal and
PBSM, plus the cost-based default. Run::

    pytest benchmarks/test_bench_spatial_join.py --benchmark-only \
        --benchmark-group-by=param:label --benchmark-columns=median

and read each group as one join: four bars, one per algorithm. Every
parametrisation returns the same COUNT by construction (asserted by the
tier-1 suite); only candidate generation differs.
"""

import pytest

from repro.core.experiments import JOIN_MATRIX, JOIN_STRATEGY_SERIES
from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database

from _bench_utils import BENCH_SCALE, BENCH_SEED, run_query

QUERIES = dict(JOIN_MATRIX)


@pytest.fixture(scope="module")
def join_db():
    """A dedicated database: forcing ``join_strategy`` mutates planner
    state and flushes plan caches, so the session-wide databases shared
    by the other benchmark modules must not be touched."""
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


@pytest.mark.parametrize("strategy", JOIN_STRATEGY_SERIES)
@pytest.mark.parametrize("label", sorted(QUERIES))
def test_join_strategy(benchmark, join_db, label, strategy):
    join_db.join_strategy = strategy
    benchmark.group = label
    benchmark.extra_info["strategy"] = strategy
    conn = connect(database=join_db)
    try:
        run_query(benchmark, conn.cursor(), QUERIES[label])
    finally:
        join_db.join_strategy = "auto"
        conn.close()
