"""J-T4 / J-F3 — macro scenario throughput.

One benchmark per (scenario, engine): a full scenario run through the
DB-API. ``extra_info`` carries the queries-per-minute figure the paper
plots, plus the number of steps the engine had to skip for missing
features."""

import pytest

from repro.core.macro import SCENARIOS_BY_NAME
from repro.dbapi import connect

from _bench_utils import BENCH_SEED

SCENARIOS = sorted(SCENARIOS_BY_NAME)


@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_macro_scenario(benchmark, engine_cursor, loaded_databases,
                        dataset, scenario_name):
    engine, _cursor = engine_cursor
    benchmark.group = f"macro.{scenario_name}"
    benchmark.extra_info["engine"] = engine
    scenario = SCENARIOS_BY_NAME[scenario_name]()
    conn = connect(database=loaded_databases[engine])

    def run_scenario():
        return scenario.run(conn, dataset, seed=BENCH_SEED,
                            engine_name=engine)

    result = benchmark.pedantic(run_scenario, rounds=3, iterations=1,
                                warmup_rounds=1)
    benchmark.extra_info["queries_per_minute"] = round(
        result.queries_per_minute
    )
    benchmark.extra_info["executed"] = result.executed
    benchmark.extra_info["skipped"] = result.skipped
    if result.executed == 0:
        pytest.skip(f"{engine} could not execute any {scenario_name} step")
