"""Observability overhead guard.

The tracing/metrics layer must cost *nothing it can avoid* when it is
off: ``Database.execute`` adds exactly one attribute check
(``self.obs.active``) in front of the seed fast path. This module pins
that contract by timing the full jx3 topology-join matrix through
``db.execute`` with observability disabled against a baseline that runs
the cached plan directly (the pre-observability hot path), and asserting
the guarded medians stay within 5%.

Wall-clock comparisons at single-digit-percent resolution are noisy, so
the guard measures median-of-repeats per query, sums across the matrix
(the joins dominate, amortising per-call jitter), and retries the whole
comparison a few times — it fails only when *every* attempt exceeds the
budget. Run standalone::

    pytest benchmarks/test_bench_obs_overhead.py --benchmark-disable -q
"""

from __future__ import annotations

import time

from repro.core.experiments import JOIN_MATRIX
from repro.datagen import generate
from repro.engines import Database
from repro.sql.executor import ExecContext

from _bench_utils import BENCH_SCALE, BENCH_SEED

#: allowed slowdown of obs-disabled execute over the direct plan path
OVERHEAD_BUDGET = 1.05
REPEATS = 5
ATTEMPTS = 3


def _fresh_db() -> Database:
    db = Database("greenwood")
    generate(seed=BENCH_SEED, scale=BENCH_SCALE).load_into(db)
    db.execute("ANALYZE")
    return db


def _run_plan_directly(db: Database, sql: str):
    """The seed-era fast path: cached plan, no observability branch."""
    statement = db._parse_statement(sql)
    cached = db._plan_cache.get(sql)
    if cached is None:
        cached = db._planner.plan_select(statement)
        db._plan_cache[sql] = cached
    plan, names = cached
    ctx = ExecContext(
        (), db.profile, db.registry, db.catalog, db.stats,
    )
    return [row["__out__"] for row in plan.rows(ctx)]


def _median_seconds(call, repeats: int = REPEATS) -> float:
    call()  # warm caches (parse, plan, index) outside the timed window
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        call()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def test_observability_disabled_by_default():
    db = Database("greenwood")
    assert db.obs.active is False
    assert db.obs.tracing is False
    assert db.obs.metrics_enabled is False


def test_disabled_execute_matches_direct_plan_answers():
    db = _fresh_db()
    for _label, sql in JOIN_MATRIX:
        via_execute = db.execute(sql).scalar()
        direct = _run_plan_directly(db, sql)[0][0]
        assert via_execute == direct


def test_disabled_overhead_within_budget():
    db = _fresh_db()
    assert db.obs.active is False
    ratios = []
    for _ in range(ATTEMPTS):
        guarded = 0.0
        baseline = 0.0
        for _label, sql in JOIN_MATRIX:
            guarded += _median_seconds(lambda s=sql: db.execute(s))
            baseline += _median_seconds(
                lambda s=sql: _run_plan_directly(db, s)
            )
        ratio = guarded / baseline
        ratios.append(ratio)
        if ratio <= OVERHEAD_BUDGET:
            break
    assert min(ratios) <= OVERHEAD_BUDGET, (
        f"obs-disabled execute exceeded the {OVERHEAD_BUDGET:.0%} budget "
        f"on every attempt: ratios={[f'{r:.3f}' for r in ratios]}"
    )
