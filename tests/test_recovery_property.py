"""Property test: random crash points vs the serial-replay oracle.

Hypothesis picks an arbitrary op sequence (autocommit DML, multi-row
transactions, rollbacks, checkpoints) and an arbitrary crash point — a
durable fault site plus a hit count. The ops run against a durable
database while a :class:`SerialReplayOracle` shadows exactly the
statements whose COMMIT returned. Whenever and wherever the crash
lands, the recovered database must equal the oracle's serial history,
value for value.
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import Database
from repro.errors import ReproError, SimulatedCrashError
from repro.faults import FAULTS
from repro.storage.crash import CRASH_SITES, SerialReplayOracle
from repro.storage.durability import recover

OPS = st.lists(
    st.sampled_from(
        ["insert", "txn_commit", "txn_abort", "update", "delete",
         "checkpoint"]
    ),
    min_size=5,
    max_size=30,
)


def _point(n: int) -> str:
    return f"POINT({n % 37} {n % 31})"


@settings(max_examples=25, deadline=None)
@given(ops=OPS, site=st.sampled_from(CRASH_SITES),
       on_call=st.integers(min_value=1, max_value=25))
def test_recovery_equals_serial_replay(ops, site, on_call):
    directory = tempfile.mkdtemp(prefix="jackpine-prop-")
    oracle = SerialReplayOracle()
    recovered = None
    try:
        oracle.ddl("CREATE TABLE t (id INTEGER, g GEOMETRY)")
        oracle.ddl("CREATE SPATIAL INDEX t_g ON t (g)")
        db = Database("greenwood")
        db.execute("CREATE TABLE t (id INTEGER, g GEOMETRY)")
        db.execute("CREATE SPATIAL INDEX t_g ON t (g)")
        db.attach_storage(directory)

        FAULTS.arm(site, on_call=on_call, max_fires=1,
                   error=SimulatedCrashError)
        gid = 0
        known = []  # committed ids, oldest first, for update/delete

        def run(op):
            nonlocal gid
            if op == "insert":
                gid += 1
                sql = "INSERT INTO t VALUES (?, ?)"
                params = (gid, _point(gid))
                db.execute(sql, params)
                oracle.stage(sql, params)
                oracle.commit()
                known.append(gid)
            elif op == "txn_commit":
                first, second = gid + 1, gid + 2
                gid += 2
                db.execute("BEGIN")
                try:
                    for g in (first, second):
                        db.execute("INSERT INTO t VALUES (?, ?)",
                                   (g, _point(g)))
                        oracle.stage("INSERT INTO t VALUES (?, ?)",
                                     (g, _point(g)))
                    db.execute("COMMIT")
                except ReproError:
                    oracle.abort()
                    _try_rollback()
                    raise
                oracle.commit()
                known.extend([first, second])
            elif op == "txn_abort":
                gid += 1
                db.execute("BEGIN")
                try:
                    db.execute("INSERT INTO t VALUES (?, ?)",
                               (gid, _point(gid)))
                finally:
                    _try_rollback()
            elif op == "update" and known:
                target = known[gid % len(known)]
                gid += 1
                sql = "UPDATE t SET g = ? WHERE id = ?"
                params = (_point(gid * 7), target)
                db.execute(sql, params)
                oracle.stage(sql, params)
                oracle.commit()
            elif op == "delete" and known:
                target = known[gid % len(known)]
                sql = "DELETE FROM t WHERE id = ?"
                db.execute(sql, (target,))
                oracle.stage(sql, (target,))
                oracle.commit()
                known.remove(target)
            elif op == "checkpoint":
                # reaches page.write via buffer write-back
                db.checkpoint()

        def _try_rollback():
            try:
                db.execute("ROLLBACK")
            except ReproError:
                pass

        for op in ops:
            try:
                run(op)
            except ReproError:
                oracle.abort()
                if db.durability.crashed:
                    break
                raise  # a non-crash error here is a real bug
        FAULTS.disarm_all()
        if not db.durability.crashed:
            db.durability.crash()  # crash point past the workload's end

        recovered, _report = recover(directory)
        problems = oracle.diff(recovered)
        assert problems == [], (
            f"site={site} on_call={on_call}: {problems}"
        )
    finally:
        FAULTS.disarm_all()
        if recovered is not None:
            try:
                recovered.close()
            except ReproError:
                pass
        shutil.rmtree(directory, ignore_errors=True)
