"""Unit tests for the geometry model: construction, structure, invariants."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    EMPTY,
    GeometryCollection,
    GeometryType,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    signed_ring_area,
)


class TestPoint:
    def test_basic(self):
        p = Point(3, 4)
        assert p.coord == (3.0, 4.0)
        assert p.dimension == 0
        assert p.num_points == 1
        assert not p.is_empty
        assert p.geom_type is GeometryType.POINT

    def test_envelope_degenerate(self):
        env = Point(2, 5).envelope
        assert env.as_tuple() == (2.0, 5.0, 2.0, 5.0)

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0)
        with pytest.raises(GeometryError):
            Point(0, float("inf"))

    def test_structural_equality(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)
        assert hash(Point(1, 2)) == hash(Point(1, 2))

    def test_point_not_equal_to_multipoint_structurally(self):
        assert Point(1, 2) != MultiPoint([(1, 2)])


class TestMultiPoint:
    def test_from_tuples_and_points(self):
        mp = MultiPoint([(0, 0), Point(1, 1)])
        assert len(mp) == 2
        assert mp[1] == Point(1, 1)
        assert [p.coord for p in mp] == [(0.0, 0.0), (1.0, 1.0)]

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            MultiPoint([])

    def test_dimension(self):
        assert MultiPoint([(0, 0)]).dimension == 0


class TestLineString:
    def test_basic(self):
        line = LineString([(0, 0), (3, 4)])
        assert line.dimension == 1
        assert line.length() == 5.0
        assert not line.is_closed

    def test_too_few_points_rejected(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0)])

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            LineString([(1, 1), (1, 1), (1, 1)])

    def test_closed_ring(self):
        ring = LineString([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert ring.is_closed
        assert ring.boundary_points() == ()

    def test_open_boundary(self):
        line = LineString([(0, 0), (5, 0)])
        boundary = line.boundary_points()
        assert {p.coord for p in boundary} == {(0.0, 0.0), (5.0, 0.0)}

    def test_segments_skip_repeats(self):
        line = LineString([(0, 0), (1, 0), (1, 0), (2, 0)])
        assert list(line.segments()) == [
            ((0.0, 0.0), (1.0, 0.0)),
            ((1.0, 0.0), (2.0, 0.0)),
        ]

    def test_interpolate_midpoint(self):
        line = LineString([(0, 0), (10, 0)])
        assert line.interpolate(0.5) == Point(5, 0)

    def test_interpolate_endpoints(self):
        line = LineString([(0, 0), (10, 0)])
        assert line.interpolate(0.0) == Point(0, 0)
        assert line.interpolate(1.0) == Point(10, 0)

    def test_interpolate_multi_segment(self):
        line = LineString([(0, 0), (10, 0), (10, 10)])
        assert line.interpolate(0.75) == Point(10, 5)

    def test_interpolate_out_of_range(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0), (1, 0)]).interpolate(1.5)

    def test_project_inverse_of_interpolate(self):
        line = LineString([(0, 0), (10, 0), (10, 10)])
        for fraction in (0.1, 0.4, 0.8):
            point = line.interpolate(fraction)
            assert line.project(point) == pytest.approx(fraction, abs=1e-9)

    def test_project_clamps_to_segment(self):
        line = LineString([(0, 0), (10, 0)])
        assert line.project(Point(-5, 3)) == 0.0
        assert line.project(Point(99, -1)) == 1.0

    def test_reversed(self):
        line = LineString([(0, 0), (1, 1), (2, 0)])
        assert line.reversed().coords == ((2.0, 0.0), (1.0, 1.0), (0.0, 0.0))


class TestMultiLineString:
    def test_mod2_boundary(self):
        # two segments sharing an endpoint: the shared node vanishes
        ml = MultiLineString([
            [(0, 0), (1, 0)],
            [(1, 0), (2, 0)],
        ])
        assert {p.coord for p in ml.boundary_points()} == {
            (0.0, 0.0), (2.0, 0.0)
        }

    def test_mod2_boundary_three_way(self):
        # a node where three lines end stays in the boundary (odd count)
        ml = MultiLineString([
            [(0, 0), (1, 1)],
            [(2, 0), (1, 1)],
            [(1, 2), (1, 1)],
        ])
        boundary = {p.coord for p in ml.boundary_points()}
        assert (1.0, 1.0) in boundary

    def test_length_sums(self):
        ml = MultiLineString([[(0, 0), (3, 4)], [(0, 0), (0, 2)]])
        assert ml.length() == 7.0


class TestPolygon:
    def test_shell_closed_automatically(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.shell[0] == poly.shell[-1]

    def test_shell_normalised_ccw(self):
        cw = Polygon([(0, 0), (0, 4), (4, 4), (4, 0)])  # given clockwise
        assert signed_ring_area(cw.shell) > 0

    def test_holes_normalised_cw(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],  # given ccw
        )
        assert signed_ring_area(poly.holes[0]) < 0

    def test_area_subtracts_holes(self, donut):
        assert donut.area() == 100.0 - 16.0

    def test_zero_area_ring_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1), (2, 2)])

    def test_too_few_coords_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 0)])

    def test_boundary_simple(self, unit_square):
        boundary = unit_square.boundary()
        assert isinstance(boundary, LineString)
        assert boundary.is_closed

    def test_boundary_with_holes(self, donut):
        boundary = donut.boundary()
        assert isinstance(boundary, MultiLineString)
        assert len(boundary) == 2

    def test_dimension(self, unit_square):
        assert unit_square.dimension == 2


class TestMultiPolygon:
    def test_from_polygons(self, unit_square, far_square):
        mp = MultiPolygon([unit_square, far_square])
        assert len(mp) == 2
        assert mp.area() == 200.0

    def test_from_bare_shells(self):
        mp = MultiPolygon([
            [(0, 0), (1, 0), (1, 1), (0, 1)],
            [(5, 5), (6, 5), (6, 6), (5, 6)],
        ])
        assert len(mp) == 2

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            MultiPolygon([])


class TestGeometryCollection:
    def test_empty_collection(self):
        assert EMPTY.is_empty
        assert EMPTY.dimension == -1
        assert len(EMPTY) == 0

    def test_flattens_nested_collections(self, unit_square, center_point):
        inner = GeometryCollection([center_point])
        outer = GeometryCollection([unit_square, inner])
        assert len(outer) == 2

    def test_dimension_is_max(self, unit_square, center_point):
        gc = GeometryCollection([center_point, unit_square])
        assert gc.dimension == 2


class TestEnvelopeGeometry:
    def test_polygon_envelope_geometry(self, unit_square):
        env_geom = unit_square.envelope_geometry()
        assert isinstance(env_geom, Polygon)
        assert env_geom.area() == 100.0

    def test_point_envelope_geometry_is_point(self, center_point):
        assert isinstance(center_point.envelope_geometry(), Point)

    def test_vertical_line_envelope_geometry_is_line(self):
        line = LineString([(3, 0), (3, 9)])
        env_geom = line.envelope_geometry()
        assert isinstance(env_geom, LineString)


class TestRepr:
    def test_repr_truncates(self):
        poly = Polygon([(i, math.sin(i)) for i in range(50)] + [(49, 10)])
        assert len(repr(poly)) < 120
