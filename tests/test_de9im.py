"""Unit tests for DE-9IM: matrices and every named predicate.

Expected matrices follow the OGC reference semantics (checked against the
standard's worked examples and PostGIS behaviour for the same inputs).
"""

import pytest

from repro.algorithms.de9im import (
    DE9IM,
    contains,
    covered_by,
    covers,
    crosses,
    disjoint,
    equals,
    intersects,
    overlaps,
    relate,
    relate_pattern,
    touches,
    within,
)
from repro.geometry import (
    EMPTY,
    LineString,
    MultiPoint,
    Point,
    Polygon,
    wkt_loads,
)


class TestMatrixClass:
    def test_from_string_roundtrip(self):
        m = DE9IM.from_string("212101212")
        assert str(m) == "212101212"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            DE9IM.from_string("21210121X")

    def test_matches_wildcards(self):
        m = DE9IM.from_string("212101212")
        assert m.matches("T********")
        assert m.matches("2********")
        assert m.matches("*********")
        assert not m.matches("F********")
        assert not m.matches("1********")

    def test_matches_f(self):
        m = DE9IM.from_string("FF2FF1212")
        assert m.matches("FF*FF****")

    def test_matches_length_checked(self):
        with pytest.raises(ValueError):
            DE9IM.from_string("212101212").matches("T*")

    def test_transpose(self):
        m = DE9IM.from_string("01201F012")
        # transpose swaps rows/columns of the 3x3 matrix
        assert str(m.transpose()) == "0001112F2"
        assert m.transpose().transpose() == m

    def test_equality_with_string(self):
        assert DE9IM.from_string("212101212") == "212101212"


class TestPolygonPolygonMatrices:
    def test_overlapping_squares(self, unit_square, shifted_square):
        assert str(relate(unit_square, shifted_square)) == "212101212"

    def test_disjoint_squares(self, unit_square, far_square):
        assert str(relate(unit_square, far_square)) == "FF2FF1212"

    def test_contained_square(self, unit_square, inner_square):
        assert str(relate(inner_square, unit_square)) == "2FF1FF212"

    def test_identical_squares(self, unit_square):
        twin = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert str(relate(unit_square, twin)) == "2FFF1FFF2"

    def test_edge_touching_squares(self, unit_square):
        neighbour = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        assert str(relate(unit_square, neighbour)) == "FF2F11212"

    def test_corner_touching_squares(self, unit_square):
        corner = Polygon([(10, 10), (20, 10), (20, 20), (10, 20)])
        assert str(relate(unit_square, corner)) == "FF2F01212"

    def test_transpose_symmetry(self, unit_square, shifted_square):
        ab = relate(unit_square, shifted_square)
        ba = relate(shifted_square, unit_square)
        assert ab.transpose() == ba

    def test_square_inside_touching_border(self, unit_square):
        snug = Polygon([(0, 0), (5, 0), (5, 5), (0, 5)])
        # within but sharing part of the boundary: covered, not within
        assert str(relate(snug, unit_square)) == "2FF11F212"


class TestLinePolygonMatrices:
    def test_line_crossing_polygon(self, unit_square):
        line = LineString([(-5, 5), (15, 5)])
        assert str(relate(line, unit_square)) == "101FF0212"

    def test_line_inside_polygon(self, unit_square):
        line = LineString([(2, 2), (8, 8)])
        assert str(relate(line, unit_square)) == "1FF0FF212"

    def test_line_on_polygon_boundary(self, unit_square):
        line = LineString([(2, 0), (8, 0)])
        assert str(relate(line, unit_square)) == "F1FF0F212"

    def test_line_entering_and_stopping_inside(self, unit_square):
        line = LineString([(-5, 5), (5, 5)])
        matrix = relate(line, unit_square)
        assert matrix.cell(*_II) == 1
        assert matrix.matches("1010F0212")

    def test_line_touching_polygon_at_endpoint(self, unit_square):
        line = LineString([(10, 5), (20, 5)])
        assert str(relate(line, unit_square)) == "FF1F00212"


class TestLineLineMatrices:
    def test_crossing_lines(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert str(relate(a, b)) == "0F1FF0102"

    def test_collinear_overlapping_lines(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        assert str(relate(a, b)) == "1010F0102"

    def test_touching_at_endpoints(self):
        a = LineString([(0, 0), (5, 5)])
        b = LineString([(5, 5), (10, 0)])
        assert str(relate(a, b)) == "FF1F00102"

    def test_identical_lines(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 0), (10, 0)])
        assert str(relate(a, b)) == "1FFF0FFF2"

    def test_t_junction_interior_boundary(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (5, 10)])
        # b's endpoint lies in a's interior
        matrix = relate(a, b)
        assert matrix.cell(*_IB) == 0


class TestPointMatrices:
    def test_point_in_polygon(self, unit_square, center_point):
        assert str(relate(center_point, unit_square)) == "0FFFFF212"

    def test_point_on_polygon_boundary(self, unit_square):
        assert str(relate(Point(5, 0), unit_square)) == "F0FFFF212"

    def test_point_outside_polygon(self, unit_square):
        assert str(relate(Point(50, 50), unit_square)) == "FF0FFF212"

    def test_point_on_line_interior(self):
        line = LineString([(0, 0), (10, 0)])
        assert str(relate(Point(5, 0), line)) == "0FFFFF102"

    def test_point_on_line_endpoint(self):
        line = LineString([(0, 0), (10, 0)])
        assert str(relate(Point(0, 0), line)) == "F0FFFF102"

    def test_point_point_equal(self):
        assert str(relate(Point(1, 1), Point(1, 1))) == "0FFFFFFF2"

    def test_point_point_distinct(self):
        assert str(relate(Point(1, 1), Point(2, 2))) == "FF0FFF0F2"


class TestEmpty:
    def test_empty_vs_polygon(self, unit_square):
        matrix = relate(EMPTY, unit_square)
        assert matrix.matches("FFFFFF21*")

    def test_empty_vs_empty(self):
        assert str(relate(EMPTY, EMPTY)) == "FFFFFFFF2"


_II = (0, 0)
_IB = (0, 1)


class TestNamedPredicates:
    def test_intersects_vs_disjoint_complement(
        self, unit_square, shifted_square, far_square
    ):
        assert intersects(unit_square, shifted_square)
        assert not disjoint(unit_square, shifted_square)
        assert disjoint(unit_square, far_square)
        assert not intersects(unit_square, far_square)

    def test_touches_edge_and_corner(self, unit_square):
        edge = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        corner = Polygon([(10, 10), (20, 10), (20, 20), (10, 20)])
        assert touches(unit_square, edge)
        assert touches(unit_square, corner)
        assert not touches(unit_square, unit_square)

    def test_points_never_touch(self):
        assert not touches(Point(0, 0), Point(0, 0))
        assert not touches(Point(0, 0), MultiPoint([(0, 0)]))

    def test_point_touches_polygon_boundary(self, unit_square):
        assert touches(Point(5, 0), unit_square)
        assert not touches(Point(5, 5), unit_square)

    def test_crosses_line_polygon(self, unit_square):
        crossing = LineString([(-5, 5), (15, 5)])
        inside = LineString([(2, 2), (8, 8)])
        assert crosses(crossing, unit_square)
        assert crosses(unit_square, crossing)  # symmetric by definition
        assert not crosses(inside, unit_square)

    def test_crosses_line_line_at_point(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert crosses(a, b)

    def test_collinear_overlap_is_not_cross(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        assert not crosses(a, b)
        assert overlaps(a, b)

    def test_within_contains_duality(self, unit_square, inner_square):
        assert within(inner_square, unit_square)
        assert contains(unit_square, inner_square)
        assert not within(unit_square, inner_square)

    def test_within_allows_shared_boundary_for_areas(self, unit_square):
        # OGC: a polygon inside another that touches the container's
        # border is still Within (only interior/exterior entries matter)
        snug = Polygon([(0, 0), (5, 0), (5, 5), (0, 5)])
        assert within(snug, unit_square)
        assert covered_by(snug, unit_square)
        assert covers(unit_square, snug)

    def test_boundary_point_is_covered_but_not_within(self, unit_square):
        boundary_point = Point(5, 0)
        assert not within(boundary_point, unit_square)
        assert covered_by(boundary_point, unit_square)

    def test_covers_implies_intersects(self, unit_square, inner_square):
        assert covers(unit_square, inner_square)
        assert intersects(unit_square, inner_square)

    def test_overlaps_same_dimension_only(self, unit_square, shifted_square):
        assert overlaps(unit_square, shifted_square)
        line = LineString([(-5, 5), (15, 5)])
        assert not overlaps(unit_square, line)

    def test_equals_topological(self):
        a = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        # same shape, extra collinear vertex and different start
        b = Polygon([(10, 0), (10, 10), (0, 10), (0, 0), (5, 0)])
        assert equals(a, b)

    def test_equals_dimension_mismatch(self, unit_square):
        assert not equals(unit_square, unit_square.exterior())

    def test_relate_pattern(self, unit_square, shifted_square):
        assert relate_pattern(unit_square, shifted_square, "T*T***T**")
        assert not relate_pattern(unit_square, shifted_square, "FF*FF****")


class TestPredicateConsistency:
    """Cross-predicate invariants on a mixed bag of pairs."""

    PAIRS = [
        ("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
         "POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))"),
        ("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
         "POLYGON ((10 0, 20 0, 20 10, 10 10, 10 0))"),
        ("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
         "LINESTRING (-5 5, 15 5)"),
        ("LINESTRING (0 0, 10 10)", "LINESTRING (0 10, 10 0)"),
        ("POINT (5 5)", "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"),
        ("POINT (50 50)", "LINESTRING (0 0, 1 1)"),
        ("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
         "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))"),
    ]

    @pytest.mark.parametrize("wkt_a,wkt_b", PAIRS)
    def test_disjoint_is_not_intersects(self, wkt_a, wkt_b):
        a, b = wkt_loads(wkt_a), wkt_loads(wkt_b)
        assert disjoint(a, b) != intersects(a, b)

    @pytest.mark.parametrize("wkt_a,wkt_b", PAIRS)
    def test_within_implies_intersects(self, wkt_a, wkt_b):
        a, b = wkt_loads(wkt_a), wkt_loads(wkt_b)
        if within(a, b):
            assert intersects(a, b)
            assert covered_by(a, b)

    @pytest.mark.parametrize("wkt_a,wkt_b", PAIRS)
    def test_touches_excludes_interior_overlap(self, wkt_a, wkt_b):
        a, b = wkt_loads(wkt_a), wkt_loads(wkt_b)
        if touches(a, b):
            assert relate(a, b).cell(0, 0) == -1

    @pytest.mark.parametrize("wkt_a,wkt_b", PAIRS)
    def test_matrix_transpose_symmetry(self, wkt_a, wkt_b):
        a, b = wkt_loads(wkt_a), wkt_loads(wkt_b)
        assert relate(a, b).transpose() == relate(b, a)
