"""Concurrency stress tests: shared-state thread safety + chaos rounds.

Two regression families the single-threaded suite cannot catch:

- ``test_eight_thread_read_hammer`` — eight threads hammer one
  :class:`Database` through the plan/parse LRU caches, the per-statement
  stats shards and the metrics registry. Before those structures were
  locked this would corrupt cache dicts or drop stats merges.
- ``TestChaosRounds`` — the mixed workload driver runs with every fault
  point armed at low probability (including ``txn.commit``). The
  acceptance bar: no exception other than :class:`ReproError` ever
  escapes, aborted transactions roll back completely, and the engine
  drains to a quiescent state afterwards.
"""

from __future__ import annotations

import threading

import pytest

from repro.datagen.tiger import generate
from repro.engines import Database
from repro.faults import FAULTS
from repro.workload import WorkloadConfig, run_workload

THREADS = 8
ITERATIONS = 40


@pytest.fixture(scope="module")
def dataset():
    return generate(scale=0.05, seed=13)


def test_eight_thread_read_hammer(dataset):
    db = Database("greenwood")
    dataset.load_into(db)
    queries = [
        "SELECT COUNT(*) FROM pointlm WHERE ST_Intersects(geom, "
        "ST_MakeEnvelope(?, ?, ?, ?))",
        "SELECT COUNT(*) FROM counties WHERE ST_Contains(geom, "
        "ST_Point(?, ?))",
        "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
        "ST_MakeEnvelope(?, ?, ?, ?))",
    ]
    world = dataset.world_size
    # single-threaded reference answers, computed up front
    args = [
        (queries[0], (0.1 * world, 0.1 * world, 0.4 * world, 0.4 * world)),
        (queries[1], (0.5 * world, 0.5 * world)),
        (queries[2], (0.2 * world, 0.6 * world, 0.5 * world, 0.9 * world)),
    ]
    expected = [db.execute(sql, params).rows for sql, params in args]

    failures = []
    barrier = threading.Barrier(THREADS)

    def hammer(thread_id: int) -> None:
        try:
            barrier.wait()
            for i in range(ITERATIONS):
                pick = (thread_id + i) % len(args)
                sql, params = args[pick]
                rows = db.execute(sql, params).rows
                if rows != expected[pick]:
                    failures.append(
                        (thread_id, pick, rows, expected[pick])
                    )
        except BaseException as exc:  # noqa: BLE001 - report, don't hang
            failures.append((thread_id, exc))

    threads = [
        threading.Thread(target=hammer, args=(t,), daemon=True)
        for t in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures
    # the stats merge under load kept counters coherent: every execute
    # records exactly one plan-cache lookup (hit or miss)
    snap = db.stats.snapshot()
    lookups = snap["plan_cache_hits"] + snap["plan_cache_misses"]
    assert lookups >= THREADS * ITERATIONS


class TestChaosRounds:
    ROUNDS = 2
    CLIENTS = 4

    def test_mixed_workload_survives_fault_injection(self, dataset):
        db = Database("greenwood")
        dataset.load_into(db)
        baseline = db.execute("SELECT COUNT(*) FROM pointlm").rows[0][0]
        try:
            for round_no in range(self.ROUNDS):
                # arm AFTER loading so faults only hit workload traffic
                FAULTS.arm_all(probability=0.01, seed=round_no + 1)
                config = WorkloadConfig(
                    clients=self.CLIENTS,
                    duration=0.6,
                    mix="mixed",
                    seed=100 + round_no,
                    lock_timeout=0.05,
                )
                report = run_workload(config, database=db, dataset=dataset)
                # ReproError subclasses are contained by the driver as
                # aborts/errors; anything else would have propagated out
                # of run_workload and failed this test
                assert len(report.clients) == self.CLIENTS
                assert report.total_ops > 0
        finally:
            FAULTS.disarm_all()

        # quiescent afterwards: no dangling txns, garbage drained, and
        # the heap agrees with the index-backed count
        assert db.txn.active_count == 0
        assert db.txn.pending_garbage == 0
        count = db.execute("SELECT COUNT(*) FROM pointlm").rows[0][0]
        assert count >= baseline
        table = db.catalog.table("pointlm")
        assert count == table.live_count
