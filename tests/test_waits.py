"""Wait-event taxonomy: every member is emitted by its site, the ring
buffer overwrites oldest-first, the disabled path records nothing, and
the row-lock histogram is fed from the same measurement as the
``LockManager:RowLock`` records (single recording point)."""

from __future__ import annotations

import io
import random
import threading

import pytest

from repro.datagen import generate
from repro.engines import Database
from repro.errors import SerializationError
from repro.guard import ExecutionGuard
from repro.obs.waits import (
    CLIENT_BACKOFF,
    CLIENT_RETRY,
    CPU_INDEX_PROBE,
    CPU_REFINE,
    CPU_SORT,
    GUARD_TICK,
    IO_DUMP_READ,
    IO_DUMP_WRITE,
    IO_PAGE_READ,
    IO_PAGE_WRITE,
    IO_WAL_FSYNC,
    IO_WAL_WRITE,
    LATCH_EXCLUSIVE,
    LATCH_SHARED,
    LOCK_ROW,
    WAIT_CLASSES,
    WAIT_EVENTS,
    WAITS,
    WaitRecord,
    WaitRing,
)
from repro.storage.dump import dump_database, restore_database
from repro.txn.locks import RowLockTable, SharedExclusiveLock
from repro.workload.driver import ClientReport, WorkloadConfig, _run_operation
from repro.workload.mixes import Operation


@pytest.fixture
def waits():
    WAITS.enable()
    WAITS.reset()
    yield WAITS
    WAITS.disable()
    WAITS.reset()


def _events_recorded(monitor) -> set:
    return set(monitor.summary())


# -- the taxonomy itself ----------------------------------------------------


def test_taxonomy_is_closed_and_classful():
    from repro.obs.waits import NET_RECV, NET_SEND, SERVICE_QUEUE

    expected = {
        LOCK_ROW, LATCH_SHARED, LATCH_EXCLUSIVE, IO_DUMP_READ,
        IO_DUMP_WRITE, IO_WAL_WRITE, IO_WAL_FSYNC, IO_PAGE_READ,
        IO_PAGE_WRITE, CPU_REFINE, CPU_INDEX_PROBE, CPU_SORT,
        CLIENT_RETRY, CLIENT_BACKOFF, GUARD_TICK,
        NET_RECV, NET_SEND, SERVICE_QUEUE,
    }
    assert set(WAIT_EVENTS) == expected
    for event in WAIT_EVENTS:
        assert event.split(":", 1)[0] in WAIT_CLASSES


def test_unknown_event_rejected(waits):
    with pytest.raises(KeyError):
        waits.record("Bogus:Event", 0.001)


# -- ring buffer ------------------------------------------------------------


def test_ring_overflow_keeps_newest():
    ring = WaitRing(capacity=4)
    for i in range(10):
        ring.append(WaitRecord(GUARD_TICK, float(i), None, 0, 0.0))
    assert len(ring) == 4
    assert ring.appended == 10
    assert ring.dropped == 6
    assert [r.seconds for r in ring.snapshot()] == [6.0, 7.0, 8.0, 9.0]


def test_ring_partial_fill_in_order():
    ring = WaitRing(capacity=8)
    for i in range(3):
        ring.append(WaitRecord(GUARD_TICK, float(i), None, 0, 0.0))
    assert len(ring) == 3
    assert ring.dropped == 0
    assert [r.seconds for r in ring.snapshot()] == [0.0, 1.0, 2.0]


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        WaitRing(capacity=0)


# -- disabled path ----------------------------------------------------------


def test_disabled_sites_record_nothing():
    WAITS.disable()
    WAITS.reset()
    locks = RowLockTable()
    locks.acquire(("t", 1), 1, timeout=0.1)
    locks.release_all(1)
    latch = SharedExclusiveLock()
    latch.acquire_shared()
    latch.release_shared()
    guard = ExecutionGuard(timeout=10.0)
    guard.tick()
    assert WAITS.summary() == {}
    assert WAITS.records() == []


# -- lock and latch sites ---------------------------------------------------


def test_row_lock_conflict_emits_lock_row_and_hottest(waits):
    locks = RowLockTable()
    key = ("pointlm", 7)
    locks.acquire(key, 1, timeout=0.5)
    blocked = threading.Event()

    def contender():
        blocked.set()
        locks.acquire(key, 2, timeout=2.0)
        locks.release_all(2)

    thread = threading.Thread(target=contender)
    thread.start()
    blocked.wait()
    # hold long enough for the contender to actually block
    import time
    time.sleep(0.05)
    locks.release_all(1)
    thread.join()
    summary = waits.summary()
    assert LOCK_ROW in summary
    hottest = waits.hottest_rows()
    assert hottest and hottest[0]["table"] == "pointlm"
    assert hottest[0]["row_id"] == 7


def test_row_lock_timeout_still_recorded(waits):
    locks = RowLockTable()
    key = ("t", 1)
    locks.acquire(key, 1, timeout=0.1)

    def loser():
        with pytest.raises(SerializationError):
            locks.acquire(key, 2, timeout=0.05)

    thread = threading.Thread(target=loser)
    thread.start()
    thread.join()
    locks.release_all(1)
    summary = waits.summary()
    assert summary[LOCK_ROW]["count"] >= 1
    assert summary[LOCK_ROW]["seconds"] >= 0.04


def test_latch_shared_and_exclusive_waits(waits):
    latch = SharedExclusiveLock()
    latch.acquire_exclusive()
    entered = threading.Event()

    def reader():
        entered.set()
        latch.acquire_shared()
        latch.release_shared()

    thread = threading.Thread(target=reader)
    thread.start()
    entered.wait()
    import time
    time.sleep(0.03)
    latch.release_exclusive()
    thread.join()
    assert LATCH_SHARED in waits.summary()

    latch2 = SharedExclusiveLock()
    latch2.acquire_shared()
    entered2 = threading.Event()

    def writer():
        entered2.set()
        latch2.acquire_exclusive()
        latch2.release_exclusive()

    thread2 = threading.Thread(target=writer)
    thread2.start()
    entered2.wait()
    time.sleep(0.03)
    latch2.release_shared()
    thread2.join()
    assert LATCH_EXCLUSIVE in waits.summary()


def test_histogram_fed_from_wait_records(waits):
    """Single recording point: every blocking ``acquire`` feeds both the
    transaction manager's lock-wait histogram and the
    ``LockManager:RowLock`` records — the counts cannot drift.
    (Uncontended writes go through ``try_acquire`` and touch neither.)"""
    db = Database("greenwood")
    hist = db.txn.lock_wait_histogram()
    before_hist = hist.count
    locks = db.txn.locks
    for row_id in (1, 2, 3):
        locks.acquire(("t", row_id), 99, timeout=0.1)
    locks.release_all(99)
    grew_hist = hist.count - before_hist
    grew_waits = waits.summary().get(LOCK_ROW, {"count": 0})["count"]
    assert grew_hist == 3
    assert grew_hist == grew_waits


# -- engine CPU and IO sites ------------------------------------------------


@pytest.fixture(scope="module")
def waits_db():
    db = Database("greenwood")
    generate(seed=7, scale=0.1).load_into(db, create_indexes=True)
    return db


def test_cpu_sites_emitted_by_query(waits, waits_db):
    waits_db.execute(
        "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
        "ST_MakeEnvelope(0, 0, 50000, 50000))"
    )
    waits_db.execute(
        "SELECT COUNT(*) FROM arealm a, areawater w "
        "WHERE ST_Overlaps(a.geom, w.geom)"
    )
    waits_db.execute(
        "SELECT gid FROM pointlm ORDER BY gid LIMIT 5"
    )
    events = _events_recorded(waits)
    assert CPU_REFINE in events
    assert CPU_INDEX_PROBE in events
    assert CPU_SORT in events


def test_guard_tick_emitted(waits):
    guard = ExecutionGuard(timeout=10.0)
    guard.tick()  # the first tick always runs the full check
    assert GUARD_TICK in _events_recorded(waits)


def test_dump_io_events(waits, waits_db):
    buffer = io.StringIO()
    dump_database(waits_db, buffer)
    assert IO_DUMP_WRITE in _events_recorded(waits)
    buffer.seek(0)
    restore_database(buffer)
    assert IO_DUMP_READ in _events_recorded(waits)


# -- client-side sites ------------------------------------------------------


class _AbortingCursor:
    """Raises SerializationError on the first COMMIT-bound statement."""

    def __init__(self, failures: int = 1):
        self.failures = failures

    def execute(self, sql, params=()):
        if sql != "BEGIN" and self.failures > 0:
            self.failures -= 1
            raise SerializationError("synthetic conflict")

    def fetchall(self):
        return []


class _StubConnection:
    def __init__(self):
        self.rollbacks = 0

    def commit(self):
        pass

    def rollback(self):
        self.rollbacks += 1


def test_client_retry_and_backoff_events(waits):
    op = Operation(
        kind="write", label="stub", statements=(("UPDATE t", ()),)
    )
    config = WorkloadConfig(max_retries=2)
    report = ClientReport(client_id=0)
    connection = _StubConnection()
    _run_operation(
        _AbortingCursor(failures=1), connection, op, report, config,
        random.Random(1),
    )
    events = _events_recorded(waits)
    assert CLIENT_RETRY in events
    assert CLIENT_BACKOFF in events
    assert connection.rollbacks == 1
    assert report.aborts == 1
    assert report.retries == 1
    assert report.commits == 1


def test_client_sites_silent_when_disabled():
    WAITS.disable()
    WAITS.reset()
    op = Operation(
        kind="write", label="stub", statements=(("UPDATE t", ()),)
    )
    report = ClientReport(client_id=0)
    _run_operation(
        _AbortingCursor(failures=1), _StubConnection(), op, report,
        WorkloadConfig(max_retries=2), random.Random(1),
    )
    assert WAITS.summary() == {}
    assert report.commits == 1
