"""Unit tests for WKT parsing and serialisation."""

import pytest

from repro.errors import WktParseError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkt_dumps,
    wkt_loads,
)


class TestParsing:
    def test_point(self):
        assert wkt_loads("POINT (1 2)") == Point(1, 2)

    def test_point_case_insensitive(self):
        assert wkt_loads("point(1 2)") == Point(1, 2)

    def test_point_negative_and_scientific(self):
        p = wkt_loads("POINT (-1.5e2 2.25)")
        assert p == Point(-150.0, 2.25)

    def test_point_z_ordinate_dropped(self):
        assert wkt_loads("POINT Z (1 2 3)") == Point(1, 2)

    def test_linestring(self):
        line = wkt_loads("LINESTRING (0 0, 1 1, 2 0)")
        assert isinstance(line, LineString)
        assert line.coords == ((0.0, 0.0), (1.0, 1.0), (2.0, 0.0))

    def test_polygon_with_hole(self):
        poly = wkt_loads(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(2 2, 4 2, 4 4, 2 4, 2 2))"
        )
        assert isinstance(poly, Polygon)
        assert len(poly.holes) == 1

    def test_multipoint_both_syntaxes(self):
        a = wkt_loads("MULTIPOINT ((1 2), (3 4))")
        b = wkt_loads("MULTIPOINT (1 2, 3 4)")
        assert a == b
        assert isinstance(a, MultiPoint)

    def test_multilinestring(self):
        ml = wkt_loads("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))")
        assert isinstance(ml, MultiLineString)
        assert len(ml) == 2

    def test_multipolygon(self):
        mp = wkt_loads(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
            "((5 5, 6 5, 6 6, 5 6, 5 5)))"
        )
        assert isinstance(mp, MultiPolygon)
        assert len(mp) == 2

    def test_geometrycollection(self):
        gc = wkt_loads(
            "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))"
        )
        assert isinstance(gc, GeometryCollection)
        assert len(gc) == 2

    def test_empty_collection(self):
        gc = wkt_loads("GEOMETRYCOLLECTION EMPTY")
        assert gc.is_empty

    def test_whitespace_tolerant(self):
        assert wkt_loads("  POINT  (  1   2  )  ") == Point(1, 2)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "POINT",
            "POINT ()",
            "POINT (1)",
            "POINT (1 2",
            "POINT (1 2)x",
            "CIRCLE (0 0, 5)",
            "POINT EMPTY",
            "POINT (a b)",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(WktParseError):
            wkt_loads(text)

    @pytest.mark.parametrize(
        "text",
        [
            "LINESTRING (0 0)",       # syntactically fine, too few points
            "POLYGON ((0 0, 1 0))",   # ring below a triangle
        ],
    )
    def test_semantically_invalid_rejected(self, text):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            wkt_loads(text)

    def test_error_carries_position(self):
        try:
            wkt_loads("POINT (1 2) trailing")
        except WktParseError as exc:
            assert exc.position >= 0
        else:
            pytest.fail("expected WktParseError")


class TestSerialisation:
    def test_point(self):
        assert wkt_dumps(Point(1, 2)) == "POINT (1 2)"

    def test_precision(self):
        assert wkt_dumps(Point(1.23456789, 0), precision=3) == "POINT (1.235 0)"

    def test_negative_zero_normalised(self):
        assert wkt_dumps(Point(-0.0, 0.0)) == "POINT (0 0)"

    def test_empty_collection(self):
        from repro.geometry import EMPTY

        assert wkt_dumps(EMPTY) == "GEOMETRYCOLLECTION EMPTY"

    @pytest.mark.parametrize(
        "wkt",
        [
            "POINT (1 2)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(2 2, 2 4, 4 4, 4 2, 2 2))",
            "MULTIPOINT ((1 2), (3 4))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 2))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
            "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))",
        ],
    )
    def test_roundtrip(self, wkt):
        geom = wkt_loads(wkt)
        assert wkt_loads(wkt_dumps(geom)) == geom
