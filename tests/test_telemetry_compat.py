"""Backward compatibility of the ``jackpine-telemetry/1`` document.

The waits / ash / statements / storage / service / cache sections are
*additive*: a document from a round that recorded none of them is
byte-compatible with the original schema, and a reader written against
that original schema can consume a document that carries any of them
without changes.
"""

from __future__ import annotations

import json

import pytest

from repro.datagen.tiger import generate
from repro.engines import Database
from repro.obs.telemetry import SCHEMA
from repro.workload import WorkloadConfig, run_workload

#: the envelope a jackpine-telemetry/1 reader was written against before
#: any additive section existed
V1_BASE_KEYS = {
    "schema", "engine", "config", "wall_seconds", "totals", "records",
}


def _v1_reader(document):
    """A minimal reader written against the original schema: it touches
    only the base keys and must work on every document vintage."""
    assert document["schema"] == SCHEMA
    totals = document["totals"]
    return {
        "engine": document["engine"],
        "ops": totals["ops"],
        "commits": totals["commits"],
        "clients": [record["query_id"] for record in document["records"]],
    }


@pytest.fixture(scope="module")
def database():
    db = Database("greenwood")
    generate(scale=0.05, seed=7).load_into(db)
    return db


@pytest.fixture(scope="module")
def plain_document(database):
    config = WorkloadConfig(clients=1, duration=0.2, mix="read_only",
                            seed=11, scale=0.05)
    return run_workload(config, database=database).telemetry_document()


@pytest.fixture(scope="module")
def full_document(database):
    config = WorkloadConfig(clients=1, duration=0.2, mix="read_only",
                            seed=11, scale=0.05, waits=True,
                            statements=True)
    return run_workload(config, database=database).telemetry_document()


def test_plain_document_has_no_additive_sections(plain_document):
    assert set(plain_document) == V1_BASE_KEYS


def test_full_document_only_adds_sections(full_document):
    assert V1_BASE_KEYS <= set(full_document)
    assert set(full_document) - V1_BASE_KEYS == {
        "waits", "ash", "statements"
    }


def test_v1_reader_parses_both_vintages(plain_document, full_document):
    old = _v1_reader(plain_document)
    new = _v1_reader(full_document)
    assert old["engine"] == new["engine"] == "greenwood"
    assert old["clients"] == new["clients"] == ["workload.client_0"]
    assert old["ops"] >= 1 and new["ops"] >= 1


def test_documents_are_json_round_trippable(full_document):
    assert json.loads(json.dumps(full_document)) == json.loads(
        json.dumps(full_document)
    )


@pytest.fixture(scope="module")
def server_document(database):
    from repro.service import JackpineServer, ServerConfig

    server = JackpineServer(database, ServerConfig(pool_size=2))
    server.start()
    try:
        config = WorkloadConfig(clients=2, duration=0.3, mix="browse",
                                mode="open", rate=10.0, seed=11,
                                scale=0.05, server=server.address)
        return run_workload(config).telemetry_document()
    finally:
        server.stop()


def test_server_document_only_adds_service_sections(server_document):
    assert V1_BASE_KEYS <= set(server_document)
    assert set(server_document) - V1_BASE_KEYS == {"service", "cache"}


def test_v1_reader_parses_server_documents(server_document):
    parsed = _v1_reader(server_document)
    assert parsed["engine"] == "greenwood"
    assert parsed["ops"] >= 1
    assert parsed["clients"] == [
        "workload.client_0", "workload.client_1"
    ]


def test_server_document_service_section_shape(server_document):
    service = server_document["service"]
    assert {"pool", "admission", "shed_total", "timeouts_total"} <= \
        set(service)
    assert service["pool"]["size"] == 2
    assert service["admission"]["queue_limit"] >= 1
    cache = server_document["cache"]
    assert {"hits", "misses", "hit_ratio", "client_observed_hits"} <= \
        set(cache)
    assert 0.0 <= cache["hit_ratio"] <= 1.0


@pytest.fixture(scope="module")
def traced_server_document(database):
    from repro.service import JackpineServer, ServerConfig

    server = JackpineServer(database, ServerConfig(pool_size=2, trace=True))
    server.start()
    try:
        config = WorkloadConfig(clients=2, duration=0.3, mix="browse",
                                mode="open", rate=10.0, seed=11,
                                scale=0.05, server=server.address)
        return run_workload(config).telemetry_document()
    finally:
        server.stop()


def test_traced_server_document_adds_only_requests(traced_server_document):
    assert V1_BASE_KEYS <= set(traced_server_document)
    assert set(traced_server_document) - V1_BASE_KEYS == {
        "service", "cache", "requests"
    }


def test_requests_section_absent_without_tracing(server_document):
    # the untraced server's document must not grow the section —
    # "requests" is strictly additive and opt-in
    assert "requests" not in server_document


def test_requests_section_shape(traced_server_document):
    requests = traced_server_document["requests"]
    assert {"enabled", "total", "retained", "outcomes",
            "slow_threshold_ms", "capacity", "buffered"} <= set(requests)
    assert requests["total"] >= 1
    assert 0 <= requests["retained"] <= requests["total"]
    assert sum(requests["outcomes"].values()) == requests["total"]


def test_v1_reader_parses_traced_server_documents(traced_server_document):
    parsed = _v1_reader(traced_server_document)
    assert parsed["engine"] == "greenwood"
    assert parsed["ops"] >= 1


def test_statements_section_shape(full_document):
    section = full_document["statements"]
    assert set(section) == {
        "by_total_time", "plans", "plan_flips", "plan_flips_total"
    }
    assert section["by_total_time"], "read-only round must record reads"
    entry = section["by_total_time"][0]
    assert entry["calls"] >= 1
    assert "wait_class_seconds" in entry
