"""Tests for EXPLAIN and EXPLAIN ANALYZE plan reporting."""

import pytest

from repro.engines import Database
from repro.errors import SqlPlanError


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute("CREATE TABLE pts (id INTEGER, geom GEOMETRY)")
    rows = ", ".join(f"({i}, ST_Point({i}, {i}))" for i in range(50))
    database.execute(f"INSERT INTO pts VALUES {rows}")
    database.execute("CREATE SPATIAL INDEX pix ON pts (geom)")
    return database


class TestExplainAnalyze:
    def test_reports_row_counts(self, db):
        text = db.explain_analyze(
            "SELECT id FROM pts "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(0, 0, 10, 10))"
        )
        assert "IndexScan" in text
        assert "Total output rows: 11" in text
        assert "rows=11" in text  # the Project node emitted 11

    def test_reports_filtering(self, db):
        text = db.explain_analyze("SELECT id FROM pts WHERE id < 5")
        # SeqScan emits 50, Filter narrows to 5
        assert "rows=50" in text
        assert "rows=5" in text

    def test_timing_present(self, db):
        text = db.explain_analyze("SELECT COUNT(*) FROM pts")
        assert "time=" in text
        assert "ms" in text

    def test_params_supported(self, db):
        text = db.explain_analyze(
            "SELECT id FROM pts WHERE id = ?", (7,)
        )
        assert "Total output rows: 1" in text

    def test_rejects_non_select(self, db):
        with pytest.raises(SqlPlanError):
            db.explain_analyze("INSERT INTO pts VALUES (99, NULL)")

    def test_does_not_poison_plan_cache(self, db):
        query = "SELECT COUNT(*) FROM pts"
        first = db.execute(query).scalar()
        db.explain_analyze(query)
        assert db.execute(query).scalar() == first

    def test_join_operators_instrumented(self, db):
        db.execute("CREATE TABLE zones (z INTEGER, geom GEOMETRY)")
        db.execute(
            "INSERT INTO zones VALUES "
            "(1, ST_MakeEnvelope(0, 0, 10, 10)), "
            "(2, ST_MakeEnvelope(40, 40, 49, 49))"
        )
        text = db.explain_analyze(
            "SELECT COUNT(*) FROM zones z JOIN pts p "
            "ON ST_Contains(z.geom, p.geom)"
        )
        assert "IndexNestedLoopJoin" in text
        assert "Aggregate" in text
        assert "Total output rows: 1" in text
