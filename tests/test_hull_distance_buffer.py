"""Unit tests for convex hull, distance/dwithin, and buffer."""

import math

import pytest

from repro.algorithms import (
    area,
    buffer,
    contains,
    convex_hull,
    covers,
    distance,
    dwithin,
)
from repro.algorithms.buffer import circle, segment_capsule
from repro.algorithms.convexhull import convex_hull_coords
from repro.geometry import (
    LineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestConvexHull:
    def test_square_plus_interior_point(self):
        hull = convex_hull_coords([(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)])
        assert set(hull) == {(0, 0), (4, 0), (4, 4), (0, 4)}

    def test_hull_is_ccw(self):
        hull = convex_hull_coords([(0, 0), (4, 0), (4, 4), (0, 4)])
        from repro.geometry import signed_ring_area

        assert signed_ring_area(tuple(hull) + (hull[0],)) > 0

    def test_collinear_degenerates_to_line(self):
        geom = convex_hull(LineString([(0, 0), (5, 5), (10, 10)]))
        assert isinstance(geom, LineString)

    def test_single_point(self):
        assert isinstance(convex_hull(Point(3, 3)), Point)

    def test_hull_covers_input(self, donut):
        hull = convex_hull(donut)
        assert covers(hull, donut.envelope_geometry()) or contains(
            hull, Point(5, 5)
        )
        assert area(hull) >= area(donut)

    def test_concave_polygon_hull(self):
        concave = Polygon([(0, 0), (10, 0), (10, 10), (5, 2), (0, 10)])
        hull = convex_hull(concave)
        assert area(hull) == 100.0


class TestDistance:
    def test_point_point(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_point_polygon_outside(self, unit_square):
        assert distance(Point(13, 14), unit_square) == 5.0

    def test_point_inside_polygon_zero(self, unit_square, center_point):
        assert distance(center_point, unit_square) == 0.0

    def test_point_in_hole_positive(self, donut):
        assert distance(Point(5, 5), donut) == 2.0

    def test_polygon_polygon(self, unit_square, far_square):
        assert distance(unit_square, far_square) == pytest.approx(
            math.hypot(90, 90)
        )

    def test_overlapping_zero(self, unit_square, shifted_square):
        assert distance(unit_square, shifted_square) == 0.0

    def test_polygon_containing_polygon_zero(self, unit_square, inner_square):
        assert distance(unit_square, inner_square) == 0.0

    def test_line_line(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 3), (10, 3)])
        assert distance(a, b) == 3.0

    def test_symmetry(self, unit_square, far_square, diagonal_line):
        for g1, g2 in [(unit_square, far_square), (unit_square, diagonal_line)]:
            assert distance(g1, g2) == pytest.approx(distance(g2, g1))

    def test_dwithin(self, unit_square):
        probe = Point(13, 10)
        assert dwithin(probe, unit_square, 3.0)
        assert not dwithin(probe, unit_square, 2.9)


class TestBufferPrimitives:
    def test_circle_area_converges(self):
        coarse = area(circle((0, 0), 10, quad_segs=4))
        fine = area(circle((0, 0), 10, quad_segs=32))
        exact = math.pi * 100
        assert coarse < fine < exact
        assert fine == pytest.approx(exact, rel=1e-3)

    def test_circle_rejects_nonpositive_radius(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            circle((0, 0), 0.0)

    def test_capsule_area(self):
        got = area(segment_capsule((0, 0), (10, 0), 2, quad_segs=16))
        exact = 10 * 4 + math.pi * 4
        assert got == pytest.approx(exact, rel=1e-2)

    def test_capsule_degenerate_is_circle(self):
        got = segment_capsule((3, 3), (3, 3), 1.0)
        assert area(got) == pytest.approx(math.pi, rel=1e-2)


class TestBuffer:
    def test_point_buffer(self):
        got = buffer(Point(0, 0), 5)
        assert area(got) == pytest.approx(math.pi * 25, rel=1e-2)

    def test_line_buffer_area(self):
        got = buffer(LineString([(0, 0), (10, 0)]), 1, quad_segs=16)
        assert area(got) == pytest.approx(20 + math.pi, rel=1e-2)

    def test_bent_line_buffer_contains_vertices(self):
        line = LineString([(0, 0), (10, 0), (10, 10)])
        got = buffer(line, 2)
        for x, y in line.coords:
            assert contains(got, Point(x, y))

    def test_polygon_buffer_grows(self, unit_square):
        got = buffer(unit_square, 2, quad_segs=8)
        assert area(got) > area(unit_square)
        # rough analytic bound: area + perimeter*r + pi*r^2
        expected = 100 + 40 * 2 + math.pi * 4
        assert area(got) == pytest.approx(expected, rel=5e-2)

    def test_buffer_covers_original(self, unit_square):
        got = buffer(unit_square, 1)
        assert covers(got, unit_square)

    def test_zero_radius_identity(self, unit_square):
        assert buffer(unit_square, 0.0) == unit_square

    def test_negative_buffer_erodes(self, unit_square):
        got = buffer(unit_square, -1, quad_segs=8)
        assert 0.0 < area(got) < area(unit_square)
        assert area(got) == pytest.approx(64.0, rel=5e-2)

    def test_negative_buffer_eliminates_small(self):
        tiny = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        got = buffer(tiny, -2)
        assert got.is_empty or area(got) < 1e-9

    def test_negative_buffer_of_line_is_empty(self, diagonal_line):
        assert buffer(diagonal_line, -1).is_empty

    def test_multipoint_buffer_merges_close_points(self):
        mp = MultiPoint([(0, 0), (1, 0)])
        got = buffer(mp, 2)
        assert isinstance(got, Polygon)  # discs overlap into one blob

    def test_multipolygon_buffer(self, unit_square, far_square):
        got = buffer(MultiPolygon([unit_square, far_square]), 1)
        assert area(got) > 200.0
