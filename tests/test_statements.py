"""Statement fingerprinting, aggregation, and plan-flip detection."""

import pytest

from repro.engines import Database
from repro.obs.statements import (
    StatementStore,
    fingerprint,
    normalize,
    plan_fingerprint,
    plan_shape,
)


def _tiny_db(profile: str = "greenwood") -> Database:
    db = Database(profile)
    db.execute("CREATE TABLE a (id INTEGER, g GEOMETRY)")
    db.execute("CREATE TABLE b (id INTEGER, g GEOMETRY)")
    db.execute("INSERT INTO a VALUES (1, ST_GeomFromText('POINT(1 2)'))")
    db.execute("INSERT INTO a VALUES (2, ST_GeomFromText('POINT(3 4)'))")
    db.execute("INSERT INTO b VALUES (1, ST_GeomFromText('POINT(1 2)'))")
    return db


class TestNormalize:
    def test_literals_become_placeholders(self):
        assert normalize("SELECT id FROM t WHERE id = 42") == \
            "select id from t where id = ?"

    def test_strings_and_params_become_placeholders(self):
        out = normalize("SELECT * FROM t WHERE name = 'x' AND id = ?")
        assert "'x'" not in out
        assert out.count("?") == 2

    def test_case_folding(self):
        assert normalize("SELECT ID FROM T") == normalize("select id from t")

    def test_in_list_collapses(self):
        short = normalize("SELECT id FROM t WHERE id IN (1)")
        long = normalize("SELECT id FROM t WHERE id IN (1, 2, 3, 4, 5)")
        assert short == long
        assert "in ( ? )" in long

    def test_structure_still_distinguishes(self):
        assert normalize("SELECT a FROM t") != normalize("SELECT b FROM t")

    def test_fingerprint_equivalence(self):
        assert fingerprint("SELECT id FROM t WHERE id IN (1,2,3)") == \
            fingerprint("select id from t where id in (9)")


class TestStatementStore:
    def test_disabled_by_default(self):
        db = Database("greenwood")
        assert db.obs.statements.enabled is False
        assert db.obs.active is False

    def test_enabling_flips_obs_active(self):
        db = Database("greenwood")
        db.obs.enable_statements()
        assert db.obs.active is True
        db.obs.disable_statements()
        assert db.obs.active is False

    def test_equivalent_statements_aggregate_into_one_entry(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.execute("SELECT id FROM a WHERE id IN (1, 2, 3)")
        db.execute("select id from a where id in (9)")
        entries = db.obs.statements.statements()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.calls == 2
        assert entry.statement == "select id from a where id in ( ? )"
        assert entry.total_seconds > 0.0
        # IN (1,2,3) matches ids 1 and 2; IN (9) matches none
        assert entry.rows_returned == 2

    def test_counters_fold_into_entry(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.execute("SELECT id FROM a")
        (entry,) = db.obs.statements.statements()
        assert entry.counters["rows_scanned"] >= 2

    def test_error_outcomes_counted(self):
        store = StatementStore()
        store.enable()
        store.record("SELECT 1", 0.01, 0, outcome="abort")
        store.record("SELECT 1", 0.01, 0, outcome="timeout")
        store.record("SELECT 1", 0.01, 1, outcome="ok")
        (entry,) = store.statements()
        assert entry.calls == 3
        assert entry.errors == 2
        assert entry.aborts == 1
        assert entry.timeouts == 1

    def test_failed_statement_recorded_as_error(self):
        db = _tiny_db()
        db.obs.enable_statements()
        with pytest.raises(Exception):
            db.execute("SELECT nope FROM a")
        entries = db.obs.statements.statements()
        assert entries and entries[0].errors == 1

    def test_retries_attributed_to_fingerprint(self):
        store = StatementStore()
        store.enable()
        store.record_retry("UPDATE t SET x = 1 WHERE id = 5")
        store.record_retry("update t set x = 2 where id = 7")
        (entry,) = store.statements()
        assert entry.retries == 2

    def test_wait_class_seconds_fold(self):
        store = StatementStore()
        store.enable()
        store.record("SELECT 1", 0.02, 1,
                     wait_class_seconds={"LockManager": 0.01})
        (entry,) = store.statements()
        assert entry.wait_class_seconds["LockManager"] == pytest.approx(0.01)

    def test_reset_clears_everything(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.execute("SELECT id FROM a")
        db.obs.statements.reset()
        assert db.obs.statements.statements() == []
        assert db.obs.statements.plans() == []
        assert db.obs.statements.plan_flips_total == 0

    def test_capacity_evicts_lru(self):
        store = StatementStore(capacity=2)
        store.enable()
        store.record("SELECT a FROM t", 0.01, 0)
        store.record("SELECT b FROM t", 0.01, 0)
        store.record("SELECT c FROM t", 0.01, 0)
        assert len(store.statements()) == 2

    def test_export_shape(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.execute("SELECT id FROM a")
        export = db.obs.statements.export()
        assert set(export) == {
            "by_total_time", "plans", "plan_flips", "plan_flips_total"
        }
        assert export["by_total_time"][0]["calls"] == 1

    def test_render_mentions_statement(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.execute("SELECT id FROM a")
        assert "select id from a" in db.obs.statements.render()


class TestPlanFlips:
    JOIN = "SELECT a.id FROM a, b WHERE ST_Intersects(a.g, b.g)"

    def test_stable_plan_records_no_flip(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.execute(self.JOIN)
        db.execute(self.JOIN)
        assert db.obs.statements.plan_flips_total == 0

    def test_forced_strategy_change_yields_exactly_one_flip(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.join_strategy = "nlj"
        db.execute(self.JOIN)
        db.join_strategy = "pbsm"
        db.execute(self.JOIN)
        store = db.obs.statements
        assert store.plan_flips_total == 1
        (flip,) = store.flips()
        assert flip["from_plan"] != flip["to_plan"]
        assert "NestedLoopJoin" in flip["from_shape"]
        assert "PBSMJoin" in flip["to_shape"]
        # repeat executions with the new plan do not flip again
        db.execute(self.JOIN)
        assert store.plan_flips_total == 1

    def test_flip_bumps_metrics_counter(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.join_strategy = "nlj"
        db.execute(self.JOIN)
        db.join_strategy = "pbsm"
        db.execute(self.JOIN)
        counter = db.obs.metrics.counter(
            "plan_flips_total", "statements whose captured plan shape changed"
        )
        assert counter.value == 1

    def test_current_plan_tracks_latest_shape(self):
        db = _tiny_db()
        db.obs.enable_statements()
        db.join_strategy = "nlj"
        db.execute(self.JOIN)
        db.join_strategy = "pbsm"
        db.execute(self.JOIN)
        current = db.obs.statements.current_plan(self.JOIN)
        assert "PBSMJoin" in current.shape
        plans = db.obs.statements.plans()
        assert len(plans) == 2
        assert sum(1 for p in plans if p.current) == 1

    def test_plan_shape_ignores_span_wrapping(self):
        db = _tiny_db()
        plan, _names = db._planner.plan_select(
            db._parse_statement("SELECT id FROM a")
        )
        from repro.sql.executor import SpanNode

        assert plan_shape(SpanNode(plan)) == plan_shape(plan)
        assert plan_fingerprint(plan_shape(plan)) == \
            plan_fingerprint(plan_shape(SpanNode(plan)))
