"""Unit tests for report rendering edge cases."""

import pytest

from repro.core.benchmark import BenchmarkConfig, BenchmarkResult, EngineRun
from repro.core.micro import topology_queries
from repro.core.micro.loading import LayerLoadTiming, LoadResult
from repro.core.macro.scenario import ScenarioResult, StepResult
from repro.core.report import (
    _fmt_time,
    render_loading,
    render_macro,
    render_micro_topology,
)
from repro.core.stats import QueryTiming


class TestFormatting:
    def test_fmt_time_units(self):
        assert _fmt_time(5e-7).endswith("us")
        assert _fmt_time(5e-3).endswith("ms")
        assert _fmt_time(2.0).endswith("s")

    def test_fmt_time_nan(self):
        assert _fmt_time(float("nan")) == "-"


def _result_with(engines):
    config = BenchmarkConfig(engines=engines, repeats=1)
    result = BenchmarkResult(config=config, dataset_rows=100)
    for engine in engines:
        result.runs[engine] = EngineRun(engine=engine)
    return result


class TestMicroRendering:
    def test_missing_timings_render_dashes(self):
        result = _result_with(["greenwood"])
        text = render_micro_topology(result)
        assert "-" in text
        assert "Polygon Touches Polygon" in text

    def test_unsupported_rendered_as_ns(self):
        result = _result_with(["bluestem"])
        qid = topology_queries()[0].query_id
        timing = QueryTiming(qid)
        timing.supported = False
        result.runs["bluestem"].micro[qid] = timing
        assert "n/s" in render_micro_topology(result)

    def test_supported_timing_rendered(self):
        result = _result_with(["greenwood"])
        qid = topology_queries()[0].query_id
        timing = QueryTiming(qid)
        timing.record(0.0123)
        timing.result_value = 7
        result.runs["greenwood"].micro[qid] = timing
        text = render_micro_topology(result)
        assert "12.3ms" in text
        assert "7" in text


class TestMacroRendering:
    def test_throughput_and_skips(self):
        result = _result_with(["greenwood", "bluestem"])
        ok = ScenarioResult("geocoding", "greenwood")
        ok.steps.append(StepResult("q0", 0.5, 1))
        ok.steps.append(StepResult("q1", 0.5, 1))
        result.runs["greenwood"].macro["geocoding"] = ok
        gappy = ScenarioResult("geocoding", "bluestem")
        gappy.steps.append(StepResult("q0", 0.25, 1))
        gappy.steps.append(StepResult("q1", 0.0, 0, skipped=True, error="n/s"))
        result.runs["bluestem"].macro["geocoding"] = gappy
        text = render_macro(result)
        assert "geocoding" in text
        assert "120" in text  # 2 queries in 1s = 120/min
        assert "bluestem:1" in text

    def test_scenario_math(self):
        scenario = ScenarioResult("s", "e")
        scenario.steps.append(StepResult("a", 1.0, 3))
        scenario.steps.append(StepResult("b", 0.0, 0, skipped=True))
        assert scenario.executed == 1
        assert scenario.skipped == 1
        assert scenario.queries_per_minute == pytest.approx(60.0)

    def test_empty_scenario_has_zero_throughput(self):
        scenario = ScenarioResult("s", "e")
        assert scenario.queries_per_minute == 0.0


class TestLoadingRendering:
    def test_layers_across_engines(self):
        result = _result_with(["greenwood", "ironbark"])
        for engine in ("greenwood", "ironbark"):
            loading = LoadResult(engine=engine)
            loading.layers.append(LayerLoadTiming("edges", 100, 0.5, 0.1))
            result.runs[engine].loading = loading
        text = render_loading(result)
        assert "edges" in text
        assert text.count("500.0ms") == 2

    def test_rows_per_second(self):
        timing = LayerLoadTiming("edges", 200, 2.0, 0.1)
        assert timing.rows_per_second == 100.0
