"""Unit tests for point location against all geometry types."""

from repro.algorithms.location import (
    Location,
    locate,
    locate_in_polygon,
    locate_in_ring,
    locate_on_line,
)
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

INT, BND, EXT = Location.INTERIOR, Location.BOUNDARY, Location.EXTERIOR

SQUARE_RING = ((0, 0), (10, 0), (10, 10), (0, 10), (0, 0))


class TestRing:
    def test_inside(self):
        assert locate_in_ring((5, 5), SQUARE_RING) is INT

    def test_outside(self):
        assert locate_in_ring((15, 5), SQUARE_RING) is EXT

    def test_on_edge(self):
        assert locate_in_ring((5, 0), SQUARE_RING) is BND

    def test_on_vertex(self):
        assert locate_in_ring((10, 10), SQUARE_RING) is BND

    def test_ray_through_vertex(self):
        # point horizontally aligned with vertices must not double-count
        ring = ((0, 0), (4, 4), (8, 0), (8, 8), (0, 8), (0, 0))
        assert locate_in_ring((1, 4), ring) is INT

    def test_concave_ring(self):
        ring = ((0, 0), (10, 0), (10, 10), (5, 5), (0, 10), (0, 0))
        assert locate_in_ring((5, 8), ring) is EXT  # inside the notch
        assert locate_in_ring((2, 2), ring) is INT


class TestPolygon:
    def test_hole_is_exterior(self, donut):
        assert locate_in_polygon((5, 5), donut) is EXT

    def test_hole_boundary_is_boundary(self, donut):
        assert locate_in_polygon((5, 3), donut) is BND

    def test_between_shell_and_hole(self, donut):
        assert locate_in_polygon((1, 1), donut) is INT

    def test_envelope_shortcut(self, unit_square):
        assert locate_in_polygon((99, 99), unit_square) is EXT


class TestLine:
    def test_interior_point(self):
        line = LineString([(0, 0), (10, 0)])
        assert locate_on_line((5, 0), line) is INT

    def test_endpoints_are_boundary(self):
        line = LineString([(0, 0), (10, 0)])
        assert locate_on_line((0, 0), line) is BND
        assert locate_on_line((10, 0), line) is BND

    def test_closed_line_endpoint_is_interior(self):
        ring = LineString([(0, 0), (5, 0), (5, 5), (0, 0)])
        assert locate_on_line((0, 0), ring) is INT

    def test_off_line(self):
        line = LineString([(0, 0), (10, 0)])
        assert locate_on_line((5, 1), line) is EXT

    def test_vertex_of_polyline_is_interior(self):
        line = LineString([(0, 0), (5, 5), (10, 0)])
        assert locate_on_line((5, 5), line) is INT


class TestDispatch:
    def test_point_geometry(self):
        assert locate((1, 2), Point(1, 2)) is INT
        assert locate((1, 3), Point(1, 2)) is EXT

    def test_multipoint(self):
        mp = MultiPoint([(0, 0), (5, 5)])
        assert locate((5, 5), mp) is INT
        assert locate((1, 1), mp) is EXT

    def test_multiline_shared_node_interior(self):
        ml = MultiLineString([[(0, 0), (1, 0)], [(1, 0), (2, 0)]])
        # the shared endpoint cancels under the mod-2 rule
        assert locate((1, 0), ml) is INT
        assert locate((0, 0), ml) is BND

    def test_multipolygon(self, unit_square, far_square):
        mp = MultiPolygon([unit_square, far_square])
        assert locate((5, 5), mp) is INT
        assert locate((105, 105), mp) is INT
        assert locate((50, 50), mp) is EXT
        assert locate((0, 5), mp) is BND

    def test_collection_interior_wins(self, unit_square):
        gc = GeometryCollection([LineString([(20, 20), (30, 30)]), unit_square])
        assert locate((5, 5), gc) is INT
        assert locate((25, 25), gc) is INT
        assert locate((20, 20), gc) is BND
