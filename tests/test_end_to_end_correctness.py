"""End-to-end answer validation: SQL results against brute-force
recomputation with direct geometry-API calls over the same dataset.

This closes the loop between the two halves of the stack — if the
planner, executor, indexes or profiles ever corrupt an answer, these
tests catch it with an independently computed ground truth.
"""

import pytest

from repro.algorithms import contains, crosses, intersects, touches, within
from repro.dbapi import connect


def _rows(dataset, layer):
    lay = dataset.layer(layer)
    gidx = lay.columns.index("geom")
    return [(row, row[gidx]) for row in lay.rows]


class TestJoinAnswers:
    def test_point_in_polygon_join(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute(
            "SELECT COUNT(*) FROM counties c JOIN pointlm p "
            "ON ST_Contains(c.geom, p.geom)"
        )
        got = cur.fetchone()[0]
        counties = [g for _r, g in _rows(small_dataset, "counties")]
        points = [g for _r, g in _rows(small_dataset, "pointlm")]
        expected = sum(
            1 for c in counties for p in points if contains(c, p)
        )
        assert got == expected

    def test_line_polygon_intersects_join(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute(
            "SELECT COUNT(*) FROM rivers r JOIN counties c "
            "ON ST_Intersects(r.geom, c.geom)"
        )
        got = cur.fetchone()[0]
        rivers = [g for _r, g in _rows(small_dataset, "rivers")]
        counties = [g for _r, g in _rows(small_dataset, "counties")]
        expected = sum(
            1 for r in rivers for c in counties if intersects(r, c)
        )
        assert got == expected

    def test_touches_join(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute(
            "SELECT COUNT(*) FROM counties a JOIN counties b "
            "ON ST_Touches(a.geom, b.geom) WHERE a.gid < b.gid"
        )
        got = cur.fetchone()[0]
        counties = [g for _r, g in _rows(small_dataset, "counties")]
        expected = sum(
            1
            for i in range(len(counties))
            for j in range(i + 1, len(counties))
            if touches(counties[i], counties[j])
        )
        assert got == expected

    def test_crosses_join(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute(
            "SELECT COUNT(*) FROM rivers r JOIN counties c "
            "ON ST_Crosses(r.geom, c.geom)"
        )
        got = cur.fetchone()[0]
        rivers = [g for _r, g in _rows(small_dataset, "rivers")]
        counties = [g for _r, g in _rows(small_dataset, "counties")]
        expected = sum(
            1 for r in rivers for c in counties if crosses(r, c)
        )
        assert got == expected


class TestWindowAnswers:
    WINDOW = (20000.0, 20000.0, 40000.0, 40000.0)

    def test_window_query(self, greenwood_conn, small_dataset):
        from repro.geometry import Polygon

        x1, y1, x2, y2 = self.WINDOW
        window = Polygon([(x1, y1), (x2, y1), (x2, y2), (x1, y2)])
        cur = greenwood_conn.cursor()
        cur.execute(
            f"SELECT COUNT(*) FROM edges "
            f"WHERE ST_Intersects(geom, ST_MakeEnvelope({x1}, {y1}, {x2}, {y2}))"
        )
        got = cur.fetchone()[0]
        edges = [g for _r, g in _rows(small_dataset, "edges")]
        expected = sum(1 for e in edges if intersects(e, window))
        assert got == expected

    def test_within_window(self, greenwood_conn, small_dataset):
        from repro.geometry import Polygon

        x1, y1, x2, y2 = self.WINDOW
        window = Polygon([(x1, y1), (x2, y1), (x2, y2), (x1, y2)])
        cur = greenwood_conn.cursor()
        cur.execute(
            f"SELECT COUNT(*) FROM arealm "
            f"WHERE ST_Within(geom, ST_MakeEnvelope({x1}, {y1}, {x2}, {y2}))"
        )
        got = cur.fetchone()[0]
        landmarks = [g for _r, g in _rows(small_dataset, "arealm")]
        expected = sum(1 for a in landmarks if within(a, window))
        assert got == expected


class TestAggregateAnswers:
    def test_total_area(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute("SELECT SUM(ST_Area(geom)) FROM arealm")
        got = cur.fetchone()[0]
        expected = sum(g.area() for _r, g in _rows(small_dataset, "arealm"))
        assert got == pytest.approx(expected, rel=1e-12)

    def test_total_length(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute("SELECT SUM(ST_Length(geom)) FROM edges")
        got = cur.fetchone()[0]
        expected = sum(g.length() for _r, g in _rows(small_dataset, "edges"))
        assert got == pytest.approx(expected, rel=1e-12)

    def test_group_by_county(self, greenwood_conn, small_dataset):
        cur = greenwood_conn.cursor()
        cur.execute(
            "SELECT county_fips, COUNT(*) FROM pointlm "
            "GROUP BY county_fips ORDER BY county_fips"
        )
        got = dict(cur.fetchall())
        lay = small_dataset.layer("pointlm")
        fips_i = lay.columns.index("county_fips")
        expected = {}
        for row in lay.rows:
            expected[row[fips_i]] = expected.get(row[fips_i], 0) + 1
        assert got == expected
