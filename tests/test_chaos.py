"""Chaos suite: every fault point armed at low probability, fixed seed.

This is the CI chaos job: run a representative workload (DDL, loads,
index builds, probes, joins, dump/restore) with the whole fault registry
armed and assert that *nothing escapes the error hierarchy* — every
failure surfaces as a :class:`ReproError` (or a harness outcome), never
a bare ``KeyError``/``AttributeError``/state corruption — and that the
database still answers consistently afterwards.

Reproducible by construction: triggers draw from seeded streams, so a
CI failure replays locally with the same seed. Knobs::

    JACKPINE_CHAOS_PROBABILITY=0.05 JACKPINE_CHAOS_SEED=7 \
        pytest tests/test_chaos.py -q
"""

from __future__ import annotations

import io
import os

import pytest

from repro.core.benchmark import BenchmarkConfig, Jackpine
from repro.datagen import generate
from repro.engines import Database
from repro.errors import ReproError
from repro.faults import FAULTS
from repro.storage.dump import dump_database, restore_database

CHAOS_PROBABILITY = float(os.environ.get("JACKPINE_CHAOS_PROBABILITY", "0.02"))
CHAOS_SEED = int(os.environ.get("JACKPINE_CHAOS_SEED", "1729"))
PROFILES = ("greenwood", "bluestem", "ironbark")


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def _chaos_workload(db: Database) -> int:
    """Exercise every fault site repeatedly; returns faults caught."""
    caught = 0

    def attempt(fn) -> None:
        nonlocal caught
        try:
            fn()
        except ReproError:
            caught += 1

    for i in range(60):
        attempt(lambda i=i: db.execute(
            "INSERT INTO pts VALUES (?, ?)",
            (i, f"POINT({i % 17} {i % 13})"),
        ))
    for i in range(20):
        attempt(lambda i=i: db.execute(
            "SELECT COUNT(*) FROM pts WHERE ST_Intersects("
            f"g, ST_MakeEnvelope({i}, 0, {i + 5}, 13))"
        ))
        attempt(lambda i=i: db.execute(
            "SELECT COUNT(*) FROM pts WHERE ST_Contains("
            f"ST_MakeEnvelope(-1, -1, {i + 1}, {i + 1}), g)"
        ))
    attempt(lambda: db.execute(
        "SELECT COUNT(*) FROM pts a, pts b WHERE ST_Intersects(a.g, b.g)"
    ))
    for _ in range(5):
        buf = io.StringIO()
        try:
            dump_database(db, buf)
        except ReproError:
            caught += 1
            continue
        attempt(lambda b=buf: restore_database(io.StringIO(b.getvalue())))
    return caught


@pytest.mark.parametrize("profile", PROFILES)
def test_chaos_nothing_escapes_the_error_hierarchy(profile):
    db = Database(profile)
    db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
    db.execute("CREATE SPATIAL INDEX idx_pts ON pts (g)")
    FAULTS.arm_all(probability=CHAOS_PROBABILITY, seed=CHAOS_SEED)
    try:
        caught = _chaos_workload(db)
        fired = sum(FAULTS.fire_counts().values())
    finally:
        FAULTS.disarm_all()
    # every fired fault was caught as a ReproError somewhere above — if
    # one escaped as a bare exception, the workload would have crashed
    assert caught >= 0 and fired >= 0
    # the surviving database is consistent: heap and index agree
    count = db.execute("SELECT COUNT(*) FROM pts").scalar()
    via_index = db.execute(
        "SELECT COUNT(*) FROM pts WHERE ST_Intersects("
        "g, ST_MakeEnvelope(-100, -100, 100, 100))"
    ).scalar()
    assert via_index == count


def test_chaos_is_reproducible():
    """Same seed -> identical fire pattern across the whole workload."""

    def run_once() -> tuple:
        FAULTS.disarm_all()
        db = Database("greenwood")
        db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
        db.execute("CREATE SPATIAL INDEX idx_pts ON pts (g)")
        FAULTS.arm_all(probability=0.1, seed=CHAOS_SEED)
        try:
            caught = _chaos_workload(db)
            counts = tuple(sorted(FAULTS.fire_counts().items()))
        finally:
            FAULTS.disarm_all()
        return caught, counts

    assert run_once() == run_once()


def test_chaos_through_the_full_harness():
    """The benchmark harness absorbs chaos into outcomes, never raises."""
    dataset = generate(seed=7, scale=0.05)
    config = BenchmarkConfig(
        engines=["greenwood"], repeats=1, warmups=0, retries=2,
        scenarios=["geocoding"], collect_traces=False,
    )
    bench = Jackpine(config, dataset=dataset)
    bench.database("greenwood")  # load BEFORE arming: loads aren't the target
    FAULTS.arm_all(probability=CHAOS_PROBABILITY, seed=CHAOS_SEED)
    try:
        micro = bench.run_micro("greenwood")
        macro = bench.run_macro("greenwood")
    finally:
        FAULTS.disarm_all()
    for timing in micro.values():
        assert timing.outcome in (
            "ok", "degraded", "not supported", "timeout", "error"
        )
    for scenario in macro.values():
        for step in scenario.steps:
            assert step.outcome in (
                "ok", "degraded", "not supported", "timeout", "error"
            )
