"""DE-9IM over multi-part geometries and collections."""

import pytest

from repro.algorithms.de9im import (
    contains,
    crosses,
    disjoint,
    intersects,
    overlaps,
    relate,
    touches,
    within,
)
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


@pytest.fixture
def two_squares():
    return MultiPolygon([
        Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]),
        Polygon([(20, 0), (30, 0), (30, 10), (20, 10)]),
    ])


class TestMultiPolygon:
    def test_point_in_second_member(self, two_squares):
        assert contains(two_squares, Point(25, 5))
        assert within(Point(25, 5), two_squares)

    def test_point_between_members(self, two_squares):
        assert disjoint(two_squares, Point(15, 5))

    def test_line_crossing_both_members(self, two_squares):
        line = LineString([(-5, 5), (35, 5)])
        assert crosses(line, two_squares)
        matrix = relate(line, two_squares)
        assert matrix.cell(0, 0) == 1  # 1-D interior overlap
        assert matrix.cell(0, 2) == 1  # line escapes between the squares

    def test_polygon_overlapping_one_member(self, two_squares):
        probe = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert overlaps(two_squares, probe)

    def test_multipolygon_within_bigger_polygon(self, two_squares):
        world = Polygon([(-5, -5), (40, -5), (40, 20), (-5, 20)])
        assert within(two_squares, world)
        assert contains(world, two_squares)

    def test_member_touching_other_geometry(self, two_squares):
        neighbour = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        # the neighbour bridges the gap: shares an edge with EACH member
        assert touches(two_squares, neighbour)


class TestMultiLineString:
    def test_chain_acts_as_one_curve(self):
        chain = MultiLineString([
            [(0, 0), (10, 0)],
            [(10, 0), (20, 0)],
        ])
        # the shared node is interior under the mod-2 rule
        assert str(relate(Point(10, 0), chain)) == "0FFFFF102"

    def test_crossing_multiline(self):
        cross = MultiLineString([
            [(0, -5), (0, 5)],
            [(10, -5), (10, 5)],
        ])
        horizontal = LineString([(-5, 0), (15, 0)])
        assert crosses(horizontal, cross)

    def test_multiline_within_polygon(self, unit_square):
        inside = MultiLineString([
            [(1, 1), (4, 4)],
            [(5, 5), (8, 8)],
        ])
        assert within(inside, unit_square)


class TestMultiPoint:
    def test_all_inside(self, unit_square):
        mp = MultiPoint([(1, 1), (5, 5), (9, 9)])
        assert within(mp, unit_square)

    def test_some_outside(self, unit_square):
        mp = MultiPoint([(1, 1), (50, 50)])
        assert not within(mp, unit_square)
        assert intersects(mp, unit_square)

    def test_all_on_boundary_not_within(self, unit_square):
        mp = MultiPoint([(0, 5), (5, 0)])
        assert not within(mp, unit_square)
        assert touches(mp, unit_square)

    def test_multipoint_vs_multipoint(self):
        a = MultiPoint([(0, 0), (1, 1)])
        b = MultiPoint([(1, 1), (2, 2)])
        assert intersects(a, b)
        assert str(relate(a, b)) == "0F0FFF0F2"


class TestCollections:
    def test_mixed_collection_vs_polygon(self, unit_square):
        gc = GeometryCollection([
            Point(5, 5),
            LineString([(20, 20), (30, 30)]),
        ])
        assert intersects(gc, unit_square)
        matrix = relate(gc, unit_square)
        assert matrix.cell(0, 0) == 0  # the point hits the interior
        assert matrix.cell(0, 2) == 1  # the line lies fully outside

    def test_collection_transpose_symmetry(self, unit_square):
        gc = GeometryCollection([
            Point(5, 5),
            Polygon([(100, 100), (110, 100), (110, 110), (100, 110)]),
        ])
        assert relate(gc, unit_square).transpose() == relate(unit_square, gc)
