"""The ``jackpine_*`` system views, scanned through the normal SQL path."""

import pytest

from repro.dbapi import connect
from repro.engines import Database
from repro.engines.sysviews import SYSTEM_VIEW_NAMES
from repro.errors import SqlPlanError, SqlProgrammingError
from repro.obs.ash import AshSampler
from repro.obs.waits import GUARD_TICK, WAITS

PROFILES = ("greenwood", "bluestem", "ironbark")


def _seed(cur) -> None:
    cur.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
    cur.execute("INSERT INTO pts VALUES (1, ST_GeomFromText('POINT(1 2)'))")
    cur.execute("INSERT INTO pts VALUES (2, ST_GeomFromText('POINT(3 4)'))")
    cur.execute("CREATE SPATIAL INDEX pts_g ON pts (g)")


@pytest.fixture
def monitored():
    WAITS.enable()
    WAITS.reset()
    sampler = AshSampler(monitor=WAITS, interval=0.005)
    sampler.start()
    yield sampler
    sampler.stop()
    WAITS.disable()


@pytest.mark.parametrize("profile", PROFILES)
def test_all_views_return_live_data_over_dbapi(profile, monitored):
    """The acceptance query: every view yields rows through
    lexer -> parser -> planner -> executor over the DB-API, on every
    engine profile."""
    conn = connect(profile)
    conn.database.obs.enable_statements()
    cur = conn.cursor()
    _seed(cur)
    cur.execute("SELECT COUNT(*) FROM pts")
    cur.fetchall()
    # one deterministic wait record + one deterministic ASH sample
    WAITS.record(GUARD_TICK, 0.001)
    WAITS.begin_statement("SELECT 1", profile, None, 99)
    monitored.sample_once()
    WAITS.end_statement()

    cur.execute(
        "SELECT fingerprint, statement, calls, total_time "
        "FROM jackpine_statements ORDER BY total_time DESC LIMIT 5"
    )
    statements = cur.fetchall()
    assert statements
    assert any("from pts" in row[1] for row in statements)
    assert all(row[2] >= 1 for row in statements)

    cur.execute(
        "SELECT statement_fingerprint, plan_fingerprint, is_current "
        "FROM jackpine_plans"
    )
    plans = cur.fetchall()
    assert plans
    assert any(row[2] == 1 for row in plans)

    cur.execute("SELECT wait_event, count, total_seconds FROM jackpine_waits")
    waits = cur.fetchall()
    assert any(row[0] == GUARD_TICK and row[1] >= 1 for row in waits)

    cur.execute("SELECT sql, wait_event FROM jackpine_ash")
    ash = cur.fetchall()
    assert any(row[0] == "SELECT 1" for row in ash)

    cur.execute(
        "SELECT name, kind, live_rows, seq_scans FROM jackpine_tables"
    )
    tables = cur.fetchall()
    by_name = {(row[0], row[1]): row for row in tables}
    assert by_name[("pts", "table")][2] == 2
    assert by_name[("pts", "table")][3] >= 1
    assert ("pts_g", "index") in by_name

    # the querying statement itself is in flight, so it shows as progress
    cur.execute("SELECT session_id, sql, phase FROM jackpine_progress")
    progress = cur.fetchall()
    assert any("jackpine_progress" in (row[1] or "") for row in progress)
    conn.close()


def test_statements_view_reflects_aggregation():
    db = Database("greenwood")
    db.execute("CREATE TABLE t (id INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    db.obs.enable_statements()
    db.execute("SELECT id FROM t WHERE id IN (1, 2)")
    db.execute("select id from t where id in (3)")
    rows = db.execute(
        "SELECT statement, calls FROM jackpine_statements"
    ).rows
    matching = [r for r in rows if "from t where id in" in r[0]]
    assert len(matching) == 1
    assert matching[0][1] == 2


def test_views_exist_without_observability():
    """Views are queryable on a fresh database; stats views are empty,
    the tables view still reflects the catalog."""
    WAITS.reset()  # the wait monitor is process-global
    db = Database("greenwood")
    db.execute("CREATE TABLE t (id INTEGER)")
    db.execute("INSERT INTO t VALUES (7)")
    assert db.execute("SELECT * FROM jackpine_statements").rows == []
    assert db.execute("SELECT * FROM jackpine_waits").rows == []
    assert db.execute("SELECT * FROM jackpine_ash").rows == []
    rows = db.execute(
        "SELECT name, live_rows FROM jackpine_tables"
    ).rows
    assert ("t", 1) in rows


def test_views_are_read_only():
    db = Database("greenwood")
    db.execute("CREATE TABLE t (id INTEGER)")  # gives jackpine_tables rows
    for name in ("jackpine_statements", "jackpine_tables"):
        with pytest.raises(SqlProgrammingError):
            db.execute(f"INSERT INTO {name} VALUES (1)")
    # DELETE has live view rows to target, so the mutator must refuse
    with pytest.raises((SqlPlanError, SqlProgrammingError)):
        db.execute("DELETE FROM jackpine_tables")


def test_view_names_are_reserved():
    db = Database("greenwood")
    with pytest.raises(SqlPlanError):
        db.execute("CREATE TABLE jackpine_statements (id INTEGER)")
    with pytest.raises(SqlPlanError):
        db.execute("DROP TABLE jackpine_waits")


def test_views_absent_from_analyze_and_user_catalog():
    db = Database("greenwood")
    db.execute("CREATE TABLE t (id INTEGER)")
    names = {table.name for table in db.catalog.tables()}
    assert names == {"t"}
    db.execute("ANALYZE")  # must not trip over read-only views
    assert set(SYSTEM_VIEW_NAMES) == {
        view.name for view in db.catalog.system_views()
    }


def test_view_reads_are_fresh_not_plan_cached():
    db = Database("greenwood")
    db.execute("CREATE TABLE t (id INTEGER)")
    db.obs.enable_statements()
    sql = "SELECT calls FROM jackpine_statements"
    first = db.execute(sql).rows
    db.execute("SELECT id FROM t")
    second = db.execute(sql).rows
    # the second read sees both earlier statements' entries
    assert len(second) > len(first)


def test_bufferpool_row_and_checkpoint_lsn_when_durable(tmp_path):
    db = Database("greenwood")
    db.execute("CREATE TABLE t (id INTEGER, g GEOMETRY)")
    db.insert_rows("t", [(i, f"POINT({i} {i})") for i in range(20)])

    # without storage: no bufferpool row, checkpoint column exists but
    # is part of the progress schema either way
    kinds = {row[0] for row in db.execute(
        "SELECT kind FROM jackpine_tables").rows}
    assert "bufferpool" not in kinds

    db.attach_storage(str(tmp_path / "storage"))
    db.execute("INSERT INTO t VALUES (100, ST_GeomFromText('POINT(9 9)'))")
    db.checkpoint()

    rows = db.execute(
        "SELECT name, kind, pages, pages_written, buffer_hit_ratio "
        "FROM jackpine_tables WHERE kind = 'bufferpool'"
    ).rows
    assert len(rows) == 1
    name, kind, pages, written, ratio = rows[0]
    assert name == "buffer_pool"
    assert pages >= 1 and written >= 1
    assert 0.0 <= ratio <= 1.0

    WAITS.enable()
    try:
        progress = db.execute(
            "SELECT sql, checkpoint_lsn FROM jackpine_progress"
        ).rows
    finally:
        WAITS.disable()
    ours = [r for r in progress if "jackpine_progress" in (r[0] or "")]
    assert ours and ours[0][1] == db.durability.last_checkpoint_lsn
    assert ours[0][1] > 0
    db.close()
