"""Correctness of the watermark result cache under write interleavings.

The cache's one contract: **a cache-enabled read never returns a result
a plain uncached connection would not return at that moment**. The
property test below throws randomized DML interleavings (auto-commit
writes, multi-statement transactions, rollbacks, DDL-free churn) at a
shared database and, after *every* cached read, replays the same SELECT
on a plain connection — the two must agree, always. The threaded test
checks the same contract against a genuinely concurrent writer: reads
served through the cache must never travel back in time.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbapi import connect
from repro.engines import Database
from repro.service import CachedExecutor, ResultCache

KEYS = list(range(1, 7))

_READS = [
    "SELECT name FROM cachetest WHERE k = ?",
    "SELECT COUNT(*) FROM cachetest",
    "SELECT k, name FROM cachetest WHERE k = ?",
]


@pytest.fixture(scope="module")
def database():
    db = Database("greenwood")
    db.execute("CREATE TABLE cachetest (k INTEGER, name TEXT)")
    for key in KEYS:
        db.execute("INSERT INTO cachetest VALUES (?, ?)",
                   (key, f"seed-{key}"))
    return db


# one op = (kind, key, value-ish int)
_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["read0", "read1", "read2", "write", "txn_write",
             "txn_rollback", "insert_delete"]
        ),
        st.sampled_from(KEYS),
        st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=24,
)


@given(ops=_ops)
@settings(max_examples=60, deadline=None)
def test_cached_reads_always_match_uncached(database, ops):
    cache = ResultCache(capacity=8)  # tiny: eviction in play too
    executor = CachedExecutor(database, cache)
    reader = connect(database=database)
    writer = connect(database=database)
    plain = connect(database=database)
    wcur = writer.cursor()
    try:
        for kind, key, value in ops:
            if kind.startswith("read"):
                sql = _READS[int(kind[-1])]
                params = () if "?" not in sql else (key,)
                _, cached_rows, _, _ = executor.execute(
                    reader, sql, params
                )
                plain_rows = plain.cursor().execute(sql, params).fetchall()
                assert sorted(cached_rows) == sorted(plain_rows), (
                    f"cache diverged on {sql!r} {params} after {kind}"
                )
            elif kind == "write":
                wcur.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                             (f"v{value}", key))
            elif kind == "txn_write":
                wcur.execute("BEGIN")
                wcur.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                             (f"t{value}", key))
                wcur.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                             (f"t{value}b", (key % len(KEYS)) + 1))
                writer.commit()
            elif kind == "txn_rollback":
                wcur.execute("BEGIN")
                wcur.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                             (f"ghost{value}", key))
                writer.rollback()
            else:  # insert_delete: cardinality-changing churn
                gid = 1000 + value
                wcur.execute("INSERT INTO cachetest VALUES (?, ?)",
                             (gid, f"tmp{value}"))
                wcur.execute("DELETE FROM cachetest WHERE k = ?", (gid,))
    finally:
        reader.close()
        writer.close()
        plain.close()


@given(ops=_ops)
@settings(max_examples=30, deadline=None)
def test_reader_in_transaction_never_hits_cache(database, ops):
    """A snapshot reader must bypass the cache both ways: its reads are
    pinned to its snapshot, which the shared cache knows nothing about."""
    cache = ResultCache()
    executor = CachedExecutor(database, cache)
    reader = connect(database=database)
    writer = connect(database=database)
    rcur = reader.cursor()
    wcur = writer.cursor()
    try:
        rcur.execute("BEGIN")
        snapshot = executor.execute(
            reader, "SELECT name FROM cachetest WHERE k = ?", (KEYS[0],)
        )[1]
        for kind, key, value in ops:
            if kind == "write":
                wcur.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                             (f"w{value}", key))
        again = executor.execute(
            reader, "SELECT name FROM cachetest WHERE k = ?", (KEYS[0],)
        )[1]
        assert again == snapshot, "snapshot reads must stay stable"
        assert cache.stats()["hits"] == 0
        reader.rollback()
    finally:
        reader.close()
        writer.close()


def test_cached_reads_never_go_back_in_time(database):
    """Concurrent writer commits a monotonically increasing version; a
    reader going through the cache must observe a non-decreasing
    sequence — any decrease would be a stale cache serve."""
    cache = ResultCache()
    executor = CachedExecutor(database, cache)
    database.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                     ("0", KEYS[0]))
    stop = threading.Event()
    versions = 400

    def write_versions():
        conn = connect(database=database)
        cur = conn.cursor()
        try:
            for version in range(1, versions + 1):
                cur.execute("UPDATE cachetest SET name = ? WHERE k = ?",
                            (str(version), KEYS[0]))
        finally:
            stop.set()
            conn.close()

    observed = []
    writer = threading.Thread(target=write_versions)
    reader = connect(database=database)
    writer.start()
    try:
        while not stop.is_set():
            _, rows, _, _ = executor.execute(
                reader, "SELECT name FROM cachetest WHERE k = ?",
                (KEYS[0],)
            )
            observed.append(int(rows[0][0]))
        writer.join()
        assert observed, "reader never got a read in"
        for earlier, later in zip(observed, observed[1:]):
            assert later >= earlier, (
                f"cache served a stale result: saw {later} after {earlier}"
            )
        # and the final state is visible once the writer is done
        _, rows, _, _ = executor.execute(
            reader, "SELECT name FROM cachetest WHERE k = ?", (KEYS[0],)
        )
        assert int(rows[0][0]) == versions
    finally:
        writer.join()
        reader.close()
