"""Property-based tests (hypothesis) on geometry invariants.

Strategies generate valid-by-construction geometries (convex polygons via
hulls, star-shaped polygons via radial sampling, snapped coordinates) so
every failure is a genuine library bug rather than degenerate input.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    area,
    buffer,
    contains,
    convex_hull,
    covers,
    difference,
    disjoint,
    distance,
    intersection,
    intersects,
    relate,
    sym_difference,
    union,
    within,
)
from repro.algorithms.validation import is_valid
from repro.geometry import (
    LineString,
    MultiPoint,
    Point,
    Polygon,
    wkb_dumps,
    wkb_loads,
    wkt_dumps,
    wkt_loads,
)

# -- strategies ---------------------------------------------------------------

coord_value = st.integers(min_value=-50, max_value=50).map(float)
coords = st.tuples(coord_value, coord_value)


@st.composite
def points(draw):
    x, y = draw(coords)
    return Point(x, y)


@st.composite
def linestrings(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    pts = draw(
        st.lists(coords, min_size=n, max_size=n, unique=True)
    )
    assume(any(p != pts[0] for p in pts))
    return LineString(pts)


@st.composite
def convex_polygons(draw):
    pts = draw(st.lists(coords, min_size=5, max_size=12, unique=True))
    from repro.algorithms.convexhull import convex_hull_coords

    hull = convex_hull_coords(pts)
    assume(len(hull) >= 3)
    poly = Polygon(hull)
    assume(area(poly) > 1.0)
    return poly


@st.composite
def star_polygons(draw):
    cx = draw(st.integers(min_value=-20, max_value=20))
    cy = draw(st.integers(min_value=-20, max_value=20))
    n = draw(st.integers(min_value=3, max_value=10))
    radii = draw(
        st.lists(
            st.integers(min_value=2, max_value=15),
            min_size=n,
            max_size=n,
        )
    )
    pts = [
        (
            cx + r * math.cos(2 * math.pi * i / n),
            cy + r * math.sin(2 * math.pi * i / n),
        )
        for i, r in enumerate(radii)
    ]
    return Polygon(pts)


any_polygon = st.one_of(convex_polygons(), star_polygons())
any_geometry = st.one_of(points(), linestrings(), any_polygon)


# -- serialisation round-trips ---------------------------------------------------


@given(any_geometry)
@settings(max_examples=80, deadline=None)
def test_wkt_roundtrip(geom):
    # precision >= 17 switches the writer to exact repr formatting
    assert wkt_loads(wkt_dumps(geom, precision=17)) == geom


@given(any_geometry)
@settings(max_examples=80, deadline=None)
def test_wkb_roundtrip(geom):
    assert wkb_loads(wkb_dumps(geom)) == geom


# -- generated polygons are valid --------------------------------------------------


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_star_polygons_valid(poly):
    assert is_valid(poly)


# -- DE-9IM invariants ---------------------------------------------------------------


@given(any_geometry, any_geometry)
@settings(max_examples=60, deadline=None)
def test_relate_transpose_symmetry(a, b):
    assert relate(a, b).transpose() == relate(b, a)


@given(any_geometry, any_geometry)
@settings(max_examples=60, deadline=None)
def test_intersects_is_not_disjoint(a, b):
    assert intersects(a, b) != disjoint(a, b)


@given(any_polygon, any_polygon)
@settings(max_examples=40, deadline=None)
def test_within_implies_contains_inverse(a, b):
    if within(a, b):
        assert contains(b, a)
        assert intersects(a, b)


@given(any_geometry)
@settings(max_examples=40, deadline=None)
def test_self_relation(geom):
    assert intersects(geom, geom)
    assert not disjoint(geom, geom)


# -- hull / buffer monotonicity ---------------------------------------------------------


@given(any_geometry)
@settings(max_examples=40, deadline=None)
def test_convex_hull_is_superset(geom):
    hull = convex_hull(geom)
    if hull.dimension == 2:
        for x, y in geom.coords_iter():
            from repro.algorithms.location import Location, locate

            assert locate((x, y), hull) is not Location.EXTERIOR


@given(any_polygon)
@settings(max_examples=25, deadline=None)
def test_buffer_covers_original(poly):
    grown = buffer(poly, 1.0, quad_segs=4)
    assert covers(grown, poly)
    assert area(grown) >= area(poly)


# -- overlay conservation laws ---------------------------------------------------------


@given(convex_polygons(), convex_polygons())
@settings(max_examples=40, deadline=None)
def test_overlay_area_conservation(a, b):
    inter = intersection(a, b)
    inter_area = area(inter) if not inter.is_empty else 0.0
    uni = union(a, b)
    assert area(uni) == _approx(area(a) + area(b) - inter_area)
    diff_ab = difference(a, b)
    diff_area = area(diff_ab) if not diff_ab.is_empty else 0.0
    assert diff_area == _approx(area(a) - inter_area)
    sym = sym_difference(a, b)
    sym_area = area(sym) if not sym.is_empty else 0.0
    assert sym_area == _approx(area(a) + area(b) - 2 * inter_area)


@given(convex_polygons(), convex_polygons())
@settings(max_examples=40, deadline=None)
def test_intersection_commutes(a, b):
    ab = intersection(a, b)
    ba = intersection(b, a)
    area_ab = area(ab) if not ab.is_empty else 0.0
    area_ba = area(ba) if not ba.is_empty else 0.0
    assert area_ab == _approx(area_ba)


@given(convex_polygons())
@settings(max_examples=25, deadline=None)
def test_self_overlay_identities(poly):
    assert area(intersection(poly, poly)) == _approx(area(poly))
    assert area(union(poly, poly)) == _approx(area(poly))
    sym = sym_difference(poly, poly)
    assert sym.is_empty or area(sym) < 1e-6


@given(convex_polygons(), convex_polygons())
@settings(max_examples=30, deadline=None)
def test_union_covers_both_operands(a, b):
    merged = union(a, b)
    assert covers(merged, a)
    assert covers(merged, b)


@given(convex_polygons(), convex_polygons())
@settings(max_examples=30, deadline=None)
def test_intersection_covered_by_both_operands(a, b):
    from repro.algorithms import covered_by

    inter = intersection(a, b)
    if inter.is_empty or inter.dimension < 2:
        return  # lower-dimensional touching handled by the unit tests
    assert covered_by(inter, a)
    assert covered_by(inter, b)


def test_intersection_covered_by_shared_collinear_edge_regression():
    """Found by the property test above: the overlay emits a vertex with
    rounding error (x=8.88e-16 instead of 0.0) on an edge shared with the
    operand, and the exact envelope fast-paths in ``locate_in_polygon`` /
    ``covers`` classified the shared-edge midpoint EXTERIOR before the
    tolerant ring walk could run, yielding relate = ``2F2111212``."""
    from repro.algorithms import covered_by, relate
    from repro.geometry.wkt import loads

    a = loads("POLYGON((-7 -1, 43 -1, 0 1))")
    b = loads("POLYGON((-1 0, 0 -2, 0 1))")
    inter = intersection(a, b)
    assert str(relate(inter, b)) == "2FF11F212"
    assert covered_by(inter, a)
    assert covered_by(inter, b)


@given(convex_polygons(), convex_polygons())
@settings(max_examples=30, deadline=None)
def test_difference_disjoint_interiors_with_subtrahend(a, b):
    from repro.algorithms import overlaps, within

    diff = difference(a, b)
    if diff.is_empty or diff.dimension < 2:
        return
    # the difference must not overlap b, and must stay inside a
    assert not overlaps(diff, b)
    assert covers(a, diff) or within(diff, a)


# -- distance metric properties -------------------------------------------------------------


@given(any_geometry, any_geometry)
@settings(max_examples=60, deadline=None)
def test_distance_symmetry_and_sign(a, b):
    d = distance(a, b)
    assert d >= 0.0
    assert d == _approx(distance(b, a))
    assert (d == 0.0) == intersects(a, b) or d < 1e-9


@given(any_geometry)
@settings(max_examples=30, deadline=None)
def test_distance_to_self_zero(geom):
    assert distance(geom, geom) == 0.0


def _approx(value, tol=1e-6):
    import pytest

    return pytest.approx(value, abs=tol, rel=1e-6)
