"""Coverage of the Geometry method facade (the user-facing OO API) and
assorted small surfaces not exercised elsewhere."""

import pytest

from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiPoint,
    Point,
    Polygon,
)


class TestMethodFacade:
    """Each Geometry method must agree with its functional counterpart."""

    def test_relate_returns_string(self, unit_square, center_point):
        got = center_point.relate(unit_square)
        assert isinstance(got, str)
        assert got == "0FFFFF212"

    def test_predicate_methods(self, unit_square, shifted_square, far_square):
        assert unit_square.intersects(shifted_square)
        assert unit_square.overlaps(shifted_square)
        assert unit_square.disjoint(far_square)
        assert not unit_square.touches(shifted_square)

    def test_covers_methods(self, unit_square, inner_square):
        assert unit_square.covers(inner_square)
        assert inner_square.covered_by(unit_square)

    def test_crosses_method(self, unit_square, diagonal_line):
        assert diagonal_line.crosses(unit_square)

    def test_analysis_methods(self, unit_square):
        assert unit_square.area() == 100.0
        assert unit_square.length() == 40.0
        assert unit_square.centroid() == Point(5, 5)
        assert unit_square.convex_hull().area() == 100.0
        assert unit_square.distance(Point(13, 14)) == 5.0

    def test_overlay_methods(self, unit_square, shifted_square):
        assert unit_square.intersection(shifted_square).area() == 25.0
        assert unit_square.union(shifted_square).area() == 175.0
        assert unit_square.difference(shifted_square).area() == 75.0
        assert unit_square.sym_difference(shifted_square).area() == 150.0

    def test_buffer_and_simplify_methods(self, unit_square):
        assert unit_square.buffer(1).area() > 100.0
        wiggly = LineString([(0, 0), (1, 0.001), (2, 0)])
        assert wiggly.simplify(0.1).num_points == 2

    def test_point_on_surface_method(self, donut):
        p = donut.point_on_surface()
        assert donut.contains(p) or donut.intersects(p)

    def test_wkt_wkb_methods(self, center_point):
        assert center_point.wkt() == "POINT (5 5)"
        assert len(center_point.wkb()) == 21


class TestStructuralEquality:
    def test_polygon_hole_order_matters_structurally(self):
        a = Polygon(
            [(0, 0), (20, 0), (20, 20), (0, 20)],
            holes=[
                [(2, 2), (4, 2), (4, 4), (2, 4)],
                [(10, 10), (12, 10), (12, 12), (10, 12)],
            ],
        )
        b = Polygon(
            [(0, 0), (20, 0), (20, 20), (0, 20)],
            holes=[
                [(10, 10), (12, 10), (12, 12), (10, 12)],
                [(2, 2), (4, 2), (4, 4), (2, 4)],
            ],
        )
        assert a != b          # structural: hole order differs
        assert a.equals(b)     # topological: same point set

    def test_hash_consistency(self, unit_square):
        twin = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert hash(unit_square) == hash(twin)
        assert len({unit_square, twin}) == 1

    def test_cross_type_inequality(self):
        assert Point(0, 0) != LineString([(0, 0), (1, 1)])
        assert (Point(0, 0) == "POINT (0 0)") is False


class TestCollectionFacade:
    def test_collection_methods_delegate(self, unit_square):
        gc = GeometryCollection([unit_square, Point(50, 50)])
        assert gc.area() == 100.0
        assert gc.intersects(Point(50, 50))
        assert gc.envelope.contains_point(50, 50)

    def test_empty_collection_relations(self, unit_square):
        from repro.geometry import EMPTY

        assert EMPTY.disjoint(unit_square)
        assert not EMPTY.intersects(unit_square)
        assert not EMPTY.touches(unit_square)
        assert not EMPTY.within(unit_square)
        assert not unit_square.contains(EMPTY)
        assert not EMPTY.crosses(unit_square)
        assert not EMPTY.overlaps(unit_square)
        assert not unit_square.covers(EMPTY)
        assert EMPTY.equals(EMPTY)
        assert not EMPTY.equals(unit_square)

    def test_multipoint_iteration_protocol(self):
        mp = MultiPoint([(0, 0), (1, 1), (2, 2)])
        assert [p.x for p in mp] == [0.0, 1.0, 2.0]
        assert mp[1] == Point(1, 1)
        assert len(mp) == 3


class TestEnvelopeCaching:
    def test_envelope_is_cached(self, unit_square):
        first = unit_square.envelope
        second = unit_square.envelope
        assert first is second

    def test_features_cache_reused(self, unit_square, center_point):
        # the prepared-geometry cache fills on the first call that needs a
        # feature decomposition (point containment uses a cheaper path)
        assert unit_square._features is None
        unit_square.intersects(center_point)
        cached = unit_square._features
        assert cached is not None
        unit_square.intersects(Point(1, 1))
        assert unit_square._features is cached
