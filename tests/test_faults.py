"""Fault injection: deterministic triggers, and the consistency property.

The property at the heart of the robustness work: *one injected fault at
any site, on any engine profile, leaves the database consistent* — the
catalog answers ``COUNT(*)``, and index probes agree with the heap.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import Database
from repro.errors import InjectedFaultError, ReproError, TransientError
from repro.faults import FAULT_POINTS, FAULTS, FaultRegistry, injected
from repro.storage.dump import dump_database, restore_database

PROFILES = ("greenwood", "bluestem", "ironbark")


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def _fresh(profile: str, rows: int = 30, directory=None) -> Database:
    """A populated database; with ``directory``, durable storage is
    attached so the WAL/page fault sites are reachable."""
    db = Database(profile)
    db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
    db.execute("CREATE SPATIAL INDEX idx_pts ON pts (g)")
    db.insert_rows(
        "pts", [(i, f"POINT({i} {i % 7})") for i in range(rows)]
    )
    if directory is not None:
        db.attach_storage(str(directory))
    return db


def _exercise_every_site(db: Database) -> int:
    """A workload that visits every fault point; returns faults caught.

    On a durable database the DML statements visit ``wal.append`` and
    ``wal.fsync`` (every auto-commit write logs and group-fsyncs), and
    the closing checkpoint visits ``page.write``.
    """
    caught = 0
    statements = (
        ("INSERT INTO pts VALUES (?, ?)", (1000, "POINT(3 3)")),
        ("INSERT INTO pts VALUES (?, ?)", (1001, "POINT(4 4)")),
        ("SELECT COUNT(*) FROM pts "
         "WHERE ST_Intersects(g, ST_MakeEnvelope(0, 0, 10, 10))", ()),
        ("SELECT COUNT(*) FROM pts "
         "WHERE ST_Contains(ST_MakeEnvelope(-1, -1, 50, 50), g)", ()),
    )
    for sql, params in statements:
        try:
            db.execute(sql, params)
        except ReproError:
            caught += 1
    # an explicit transaction visits the txn.commit site; a commit fault
    # aborts the whole transaction, leaving nothing behind
    try:
        db.execute("BEGIN")
        db.execute("INSERT INTO pts VALUES (?, ?)", (2000, "POINT(5 5)"))
        db.execute("COMMIT")
    except ReproError:
        db.execute("ROLLBACK")
        caught += 1
    buf = io.StringIO()
    try:
        dump_database(db, buf)
    except ReproError:
        caught += 1
    else:
        try:
            restore_database(io.StringIO(buf.getvalue()))
        except ReproError:
            caught += 1
    if db.durability is not None:
        # dirty-page write-back: the page.write site fires here
        try:
            db.checkpoint()
        except ReproError:
            caught += 1
    return caught


class TestTriggers:
    def test_on_call_fires_exactly_nth(self):
        db = _fresh("greenwood")
        FAULTS.arm("storage.insert", on_call=2, max_fires=1)
        db.execute("INSERT INTO pts VALUES (?, ?)", (100, "POINT(1 1)"))
        with pytest.raises(InjectedFaultError, match="storage.insert"):
            db.execute("INSERT INTO pts VALUES (?, ?)", (101, "POINT(2 2)"))
        db.execute("INSERT INTO pts VALUES (?, ?)", (102, "POINT(3 3)"))
        assert FAULTS.fire_counts()["storage.insert"] == 1

    def test_probability_stream_is_seed_deterministic(self):
        def pattern(seed: int):
            registry = FaultRegistry()
            registry.arm("storage.insert", probability=0.3, seed=seed)
            fires = []
            for _ in range(64):
                try:
                    registry.hit("storage.insert")
                    fires.append(False)
                except InjectedFaultError:
                    fires.append(True)
            return fires

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_max_fires_caps_total_firings(self):
        registry = FaultRegistry()
        registry.arm("index.probe", probability=1.0, max_fires=2)
        fired = 0
        for _ in range(10):
            try:
                registry.hit("index.probe")
            except InjectedFaultError:
                fired += 1
        assert fired == 2

    def test_unknown_site_rejected(self):
        with pytest.raises(KeyError, match="unknown fault point"):
            FAULTS.arm("reactor.core", on_call=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError):
            FAULTS.arm("index.probe")
        with pytest.raises(ValueError):
            FAULTS.arm("index.probe", probability=0.5, on_call=1)

    def test_injected_context_manager_disarms(self):
        with injected("storage.insert", on_call=1):
            assert FAULTS.active
        assert not FAULTS.active

    def test_custom_error_class(self):
        class Boom(TransientError):
            pass

        db = _fresh("greenwood")
        with injected("index.probe", on_call=1, error=Boom):
            with pytest.raises(Boom):
                db.execute(
                    "SELECT COUNT(*) FROM pts "
                    "WHERE ST_Intersects(g, ST_MakeEnvelope(0, 0, 9, 9))"
                )

    def test_disarmed_registry_is_inert(self):
        assert not FAULTS.active
        FAULTS.hit("storage.insert")  # no-op, must not raise

    def test_injected_fault_is_transient(self):
        assert issubclass(InjectedFaultError, TransientError)


class TestConsistencyProperty:
    """One fault at every site, fired once -> consistent catalog."""

    @pytest.mark.parametrize("site", sorted(FAULT_POINTS))
    @pytest.mark.parametrize("profile", PROFILES)
    def test_single_fault_leaves_consistent_state(self, profile, site,
                                                  tmp_path):
        db = _fresh(profile, directory=tmp_path / "storage")
        FAULTS.arm(site, on_call=1, max_fires=1)
        try:
            caught = _exercise_every_site(db)
            fired = FAULTS.fire_counts()[site]
        finally:
            FAULTS.disarm_all()
        assert fired == 1, f"site {site} never fired under {profile}"
        assert caught == 1, "exactly one statement should have failed"
        # the catalog still answers, and the index agrees with the heap
        count = db.execute("SELECT COUNT(*) FROM pts").scalar()
        via_index = db.execute(
            "SELECT COUNT(*) FROM pts "
            "WHERE ST_Intersects(g, ST_MakeEnvelope(-1000, -1000, "
            "1000, 1000))"
        ).scalar()
        assert via_index == count
        # and fresh writes land cleanly after the fault
        db.execute("INSERT INTO pts VALUES (?, ?)", (9999, "POINT(8 8)"))
        assert db.execute("SELECT COUNT(*) FROM pts").scalar() == count + 1

    @given(call=st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_heap_index_rollback_at_any_insert_position(self, call):
        """index.insert failing on the Nth insert rolls back that heap row."""
        db = Database("greenwood")
        db.execute("CREATE TABLE t (id INTEGER, g GEOMETRY)")
        db.execute("CREATE SPATIAL INDEX tix ON t (g)")
        FAULTS.arm("index.insert", on_call=call, max_fires=1)
        inserted = 0
        try:
            for i in range(20):
                try:
                    db.execute(
                        "INSERT INTO t VALUES (?, ?)",
                        (i, f"POINT({i} {i})"),
                    )
                    inserted += 1
                except InjectedFaultError:
                    pass
        finally:
            FAULTS.disarm_all()
        assert inserted == 19
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 19
        via_index = db.execute(
            "SELECT COUNT(*) FROM t "
            "WHERE ST_Intersects(g, ST_MakeEnvelope(-1, -1, 30, 30))"
        ).scalar()
        assert via_index == 19
