"""Unit tests for WKB encoding/decoding."""

import struct

import pytest

from repro.errors import WkbParseError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    wkb_dumps,
    wkb_loads,
    wkt_loads,
)


class TestEncoding:
    def test_point_layout(self):
        blob = wkb_dumps(Point(1, 2))
        assert blob[0] == 1  # little-endian flag
        assert struct.unpack_from("<I", blob, 1)[0] == 1  # point type
        assert struct.unpack_from("<dd", blob, 5) == (1.0, 2.0)
        assert len(blob) == 21

    def test_linestring_count(self):
        blob = wkb_dumps(LineString([(0, 0), (1, 1), (2, 2)]))
        assert struct.unpack_from("<I", blob, 5)[0] == 3


class TestDecoding:
    def test_big_endian_accepted(self):
        blob = b"\x00" + struct.pack(">I", 1) + struct.pack(">dd", 3.0, 4.0)
        assert wkb_loads(blob) == Point(3, 4)

    def test_srid_flag_bits_ignored(self):
        # PostGIS EWKB sets high bits in the type word; base type survives
        blob = bytearray(wkb_dumps(Point(1, 2)))
        raw_type = struct.unpack_from("<I", blob, 1)[0]
        struct.pack_into("<I", blob, 1, raw_type | 0x20000000 & 0xFF000000)
        assert wkb_loads(bytes(blob)) == Point(1, 2)

    @pytest.mark.parametrize(
        "blob",
        [
            b"",
            b"\x02" + struct.pack("<I", 1) + struct.pack("<dd", 0, 0),  # bad order
            b"\x01" + struct.pack("<I", 99),  # unknown type
            b"\x01" + struct.pack("<I", 1) + b"\x00" * 8,  # truncated point
            b"\x01" + struct.pack("<I", 2) + struct.pack("<I", 2 ** 30),  # huge count
        ],
    )
    def test_malformed_rejected(self, blob):
        with pytest.raises(WkbParseError):
            wkb_loads(blob)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WkbParseError):
            wkb_loads(wkb_dumps(Point(1, 2)) + b"\x00")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "wkt",
        [
            "POINT (1.5 -2.25)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(2 2, 2 4, 4 4, 4 2, 2 2))",
            "MULTIPOINT ((1 2), (3 4))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
            "GEOMETRYCOLLECTION (POINT (1 2), "
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0)))",
        ],
    )
    def test_roundtrip(self, wkt):
        geom = wkt_loads(wkt)
        assert wkb_loads(wkb_dumps(geom)) == geom

    def test_nested_collection_roundtrip(self):
        gc = GeometryCollection(
            [MultiPolygon([Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])])]
        )
        assert wkb_loads(wkb_dumps(gc)) == gc
