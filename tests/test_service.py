"""The query service tier: protocol framing, session pooling, admission
control, the watermark result cache, and the server over a real socket."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.datagen.tiger import generate
from repro.engines import Database
from repro.errors import (
    ServiceError,
    ServiceOverloadedError,
    ServiceProtocolError,
)
from repro.service import (
    JackpineServer,
    ResultCache,
    ServerConfig,
    ServiceClient,
    SessionPool,
)
from repro.service.admission import AdmissionControl
from repro.service.cache import CachedExecutor
from repro.service.protocol import (
    decode_body,
    encode_frame,
    error_payload,
    jsonable_rows,
    decode_rows,
)


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


def test_frame_round_trip():
    message = {"op": "query", "sql": "SELECT 1", "params": [1, "a", None]}
    frame = encode_frame(message)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert decode_body(frame[4:]) == message


def test_decode_rejects_non_object_and_garbage():
    with pytest.raises(ServiceProtocolError):
        decode_body(b"[1, 2, 3]")
    with pytest.raises(ServiceProtocolError):
        decode_body(b"\xff\xfe not json")


def test_geometry_crosses_the_wire_as_wkt():
    from repro.geometry.wkt import loads

    point = loads("POINT(3 4)")
    wire = jsonable_rows([(1, point, "name")])
    assert wire[0][1] == {"$wkt": point.wkt()}
    back = decode_rows(wire)
    assert back == [(1, point.wkt(), "name")]


def test_error_payload_rejects_unknown_codes():
    payload = error_payload("overloaded", "busy", retry_after=0.5)
    assert payload["retry_after"] == 0.5
    with pytest.raises(ValueError):
        error_payload("made_up", "nope")


# ---------------------------------------------------------------------------
# session pool
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def database():
    db = Database("greenwood")
    generate(scale=0.05, seed=7).load_into(db)
    return db


def test_pool_bounds_sessions_and_reuses(database):
    pool = SessionPool(database, size=2)
    a = pool.acquire()
    b = pool.acquire()
    with pytest.raises(ServiceOverloadedError):
        pool.acquire(timeout=0.02)
    pool.release(a)
    c = pool.acquire(timeout=0.1)  # the released one, reused
    stats = pool.stats()
    assert stats["created"] == 2
    assert stats["reused"] == 1
    assert stats["in_use"] == 2
    pool.release(b)
    pool.release(c)
    pool.close()


def test_pool_release_rolls_back_open_transactions(database):
    pool = SessionPool(database, size=1)
    conn = pool.acquire()
    cursor = conn.cursor()
    cursor.execute("BEGIN")
    cursor.execute("UPDATE pointlm SET name = ? WHERE gid = ?",
                   ("leaky", 1))
    assert conn.in_transaction
    pool.release(conn)
    clean = pool.acquire()
    assert not clean.in_transaction
    rows = clean.cursor().execute(
        "SELECT name FROM pointlm WHERE gid = ?", (1,)
    ).fetchall()
    assert rows[0][0] != "leaky"
    pool.release(clean)
    pool.close()


def test_pool_reaps_idle_sessions(database):
    pool = SessionPool(database, size=2, idle_timeout=0.0)
    conn = pool.acquire()
    pool.release(conn)
    assert pool.stats()["idle"] == 1
    time.sleep(0.01)
    assert pool.reap() == 1
    stats = pool.stats()
    assert stats["idle"] == 0
    assert stats["reaped"] == 1
    pool.close()


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


def test_admission_sheds_when_queue_full():
    control = AdmissionControl(max_queue=2, deadline=1.0)
    t1 = control.try_admit()
    t2 = control.try_admit()
    assert t1 is not None and t2 is not None
    assert control.try_admit() is None  # queue full -> shed
    assert control.stats()["shed_queue_full"] == 1
    control.begin(t1)
    control.done()
    assert control.try_admit() is not None  # slot freed


def test_admission_sheds_expired_deadlines():
    control = AdmissionControl(max_queue=4, deadline=0.01)
    ticket = control.try_admit()
    time.sleep(0.03)  # budget eaten while "queued"
    with pytest.raises(ServiceOverloadedError) as excinfo:
        control.begin(ticket)
    assert excinfo.value.retry_after == pytest.approx(0.01)
    stats = control.stats()
    assert stats["shed_deadline"] == 1
    assert stats["queue_depth"] == 0  # slot given back
    assert stats["executing"] == 0


def test_admission_begin_returns_remaining_budget():
    control = AdmissionControl(max_queue=4, deadline=5.0)
    ticket = control.try_admit()
    remaining = control.begin(ticket)
    assert 0 < remaining <= 5.0
    control.done()
    assert control.stats()["completed"] == 1


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------


def test_cache_lru_eviction_and_stats():
    cache = ResultCache(capacity=2)
    cache.store(("a", ()), ["c"], [(1,)], 1, ())
    cache.store(("b", ()), ["c"], [(2,)], 1, ())
    assert cache.lookup(("a", ()), ()) is not None  # refreshes LRU rank
    cache.store(("c", ()), ["c"], [(3,)], 1, ())    # evicts "b"
    assert cache.lookup(("b", ()), ()) is None
    assert cache.lookup(("a", ()), ()) is not None
    assert len(cache) == 2


def test_cache_mark_mismatch_invalidates():
    cache = ResultCache()
    cache.store(("q", ()), ["c"], [(1,)], 1, (("pointlm", 5),))
    assert cache.lookup(("q", ()), (("pointlm", 5),)) is not None
    # a later committed write bumped the watermark
    assert cache.lookup(("q", ()), (("pointlm", 9),)) is None
    assert cache.stats()["invalidations"] == 1


def test_cached_executor_read_your_writes(database):
    from repro.dbapi import connect

    cache = ResultCache()
    executor = CachedExecutor(database, cache)
    conn = connect(database=database)
    sql = "SELECT name FROM pointlm WHERE gid = ?"
    _, rows1, _, cached1 = executor.execute(conn, sql, (2,))
    _, rows2, _, cached2 = executor.execute(conn, sql, (2,))
    assert not cached1 and cached2
    assert rows1 == rows2
    conn.cursor().execute(
        "UPDATE pointlm SET name = ? WHERE gid = ?", ("ryw-check", 2)
    )
    _, rows3, _, cached3 = executor.execute(conn, sql, (2,))
    assert not cached3, "write must invalidate the cached read"
    assert rows3 == [("ryw-check",)]
    assert cache.stats()["invalidations"] == 1
    conn.close()


def test_cached_executor_distinguishes_literal_only_sql(database):
    """Statements differing only in literals share a normalised
    fingerprint but must never share a cache entry: keyed on the
    fingerprint, ``SELECT 8`` was served ``SELECT 7``'s rows."""
    from repro.dbapi import connect
    from repro.obs.statements import fingerprint

    cache = ResultCache()
    executor = CachedExecutor(database, cache)
    conn = connect(database=database)
    seven, eight = "SELECT 7", "SELECT 8"
    assert fingerprint(seven) == fingerprint(eight), \
        "premise: literal variants normalise to one fingerprint"
    _, rows7, _, cached7 = executor.execute(conn, seven)
    _, rows8, _, cached8 = executor.execute(conn, eight)
    assert not cached8, "literal variant must miss, not hit the other's entry"
    assert rows7 == [(7,)] and rows8 == [(8,)]
    # IN-lists collapse under normalisation too; results must not
    narrow = "SELECT COUNT(*) FROM pointlm WHERE gid IN (1, 2)"
    wide = "SELECT COUNT(*) FROM pointlm WHERE gid IN (1, 2, 3)"
    executor.execute(conn, narrow)
    _, wide_rows, _, wide_cached = executor.execute(conn, wide)
    assert not wide_cached
    assert wide_rows == database.execute(wide).rows
    # each text repeats as its own hit with its own rows
    _, again7, _, hit7 = executor.execute(conn, seven)
    _, again8, _, hit8 = executor.execute(conn, eight)
    assert hit7 and hit8
    assert again7 == [(7,)] and again8 == [(8,)]
    conn.close()


def test_cached_executor_bypasses_transactions_and_sysviews(database):
    from repro.dbapi import connect

    cache = ResultCache()
    executor = CachedExecutor(database, cache)
    conn = connect(database=database)
    cursor = conn.cursor()
    cursor.execute("BEGIN")
    executor.execute(conn, "SELECT COUNT(*) FROM pointlm")
    executor.execute(conn, "SELECT COUNT(*) FROM pointlm")
    conn.rollback()
    assert cache.stats()["hits"] == 0, "in-txn reads must bypass"
    executor.execute(conn, "SELECT * FROM jackpine_tables")
    executor.execute(conn, "SELECT * FROM jackpine_tables")
    assert cache.stats()["hits"] == 0, "system views must bypass"
    assert cache.stats()["bypass"] == 4
    conn.close()


def test_cached_executor_fill_racing_commit_is_born_stale(database):
    """A commit that lands between mark capture and fill must leave the
    entry invalid (over-invalidation, never staleness)."""
    from repro.dbapi import connect

    cache = ResultCache()
    executor = CachedExecutor(database, cache)
    conn = connect(database=database)
    sql = "SELECT name FROM pointlm WHERE gid = ?"
    original = getattr(database, "execute")

    def racing_execute(sql_text, params=(), **kwargs):
        result = original(sql_text, params, **kwargs)
        # simulate a concurrent committed write AFTER the query ran but
        # BEFORE the cache fill stores the entry
        database.bump_write_marks(("pointlm",), database.txn.stamp())
        return result

    database.execute = racing_execute
    try:
        executor.execute(conn, sql, (3,))
    finally:
        database.execute = original
    # the fill captured pre-race marks; current marks moved on, so the
    # entry must not be served
    _, _, _, cached = executor.execute(conn, sql, (3,))
    assert not cached
    conn.close()


# ---------------------------------------------------------------------------
# server over a real socket
# ---------------------------------------------------------------------------


@pytest.fixture()
def server(database):
    srv = JackpineServer(database, ServerConfig(
        pool_size=2, max_queue=4, deadline=2.0, idle_timeout=30.0,
    ))
    srv.start()
    yield srv
    srv.stop()


def test_server_smoke_query_ping_stats(server):
    with ServiceClient(server.host, server.port) as client:
        assert client.ping()
        result = client.execute("SELECT COUNT(*) FROM pointlm")
        assert result.columns == ["count"]
        assert result.rowcount == 1 and result.rows[0][0] > 0
        again = client.execute("SELECT COUNT(*) FROM pointlm")
        assert again.cached and again.rows == result.rows
        stats = client.server_stats()
        assert stats["pool"]["size"] == 2
        assert stats["admission"]["queue_limit"] == 4
        assert stats["cache"]["hits"] >= 1


def test_server_typed_sql_errors(server):
    with ServiceClient(server.host, server.port) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.execute("SELECT FROM nowhere !!")
        assert excinfo.value.code == "sql"
        assert client.ping(), "connection survives a sql error"


def test_server_transaction_pinning(server, database):
    with ServiceClient(server.host, server.port) as writer, \
            ServiceClient(server.host, server.port) as reader:
        writer.execute("BEGIN")
        writer.execute("UPDATE pointlm SET name = ? WHERE gid = ?",
                       ("pinned-txn", 4))
        mine = writer.execute(
            "SELECT name FROM pointlm WHERE gid = ?", (4,)
        )
        assert mine.rows == [("pinned-txn",)], "session stays pinned"
        assert not mine.cached, "in-txn reads bypass the cache"
        theirs = reader.execute(
            "SELECT name FROM pointlm WHERE gid = ?", (4,)
        )
        assert theirs.rows != [("pinned-txn",)], "isolation across clients"
        writer.execute("COMMIT")
        after = reader.execute(
            "SELECT name FROM pointlm WHERE gid = ?", (4,)
        )
        assert after.rows == [("pinned-txn",)]


def test_server_disconnect_rolls_back_pinned_transaction(server, database):
    client = ServiceClient(server.host, server.port)
    before = database.execute(
        "SELECT name FROM pointlm WHERE gid = ?", (5,)
    ).rows
    client.execute("BEGIN")
    client.execute("UPDATE pointlm SET name = ? WHERE gid = ?",
                   ("orphaned", 5))
    client.close()  # vanish mid-transaction
    deadline = time.perf_counter() + 5.0
    while time.perf_counter() < deadline:
        if server.pool.stats()["in_use"] == 0:
            break
        time.sleep(0.01)
    after = database.execute(
        "SELECT name FROM pointlm WHERE gid = ?", (5,)
    ).rows
    assert after == before


def test_stop_mid_query_releases_pinned_session_exactly_once(database):
    """Shutdown cancels the handler while a worker is still executing on
    the connection's pinned session: the release must wait for the
    worker (never free a session a statement is running on) and happen
    exactly once (a double release would let two future leases share
    one session)."""
    srv = JackpineServer(database, ServerConfig(
        pool_size=2, max_queue=4, deadline=30.0,
    ))
    srv.start()
    started = threading.Event()
    unblock = threading.Event()
    real_execute = srv._cached.execute

    def blocking_execute(connection, sql, params=(), timeout=None):
        if "pointlm" in sql:
            started.set()
            assert unblock.wait(10), "test never unblocked the worker"
        return real_execute(connection, sql, params, timeout=timeout)

    srv._cached.execute = blocking_execute
    releases = []
    real_release = srv.pool.release

    def counting_release(connection):
        releases.append(connection)
        real_release(connection)

    srv.pool.release = counting_release
    client = ServiceClient(srv.host, srv.port)
    client.execute("BEGIN")  # pins the session to this connection
    query_errors = []

    def send_query():
        try:
            client.execute("SELECT COUNT(*) FROM pointlm")
        except ServiceError as exc:
            query_errors.append(exc)

    query_thread = threading.Thread(target=send_query)
    stopper = threading.Thread(target=srv.stop)
    try:
        query_thread.start()
        assert started.wait(5), "worker never picked the query up"
        stopper.start()
        # give shutdown time to cancel the handler; the worker is still
        # blocked inside execute, so the session must not be freed yet
        time.sleep(0.3)
        assert not releases, "session released while its query was running"
    finally:
        unblock.set()
    stopper.join(10)
    query_thread.join(10)
    assert not stopper.is_alive(), "stop() never finished"
    assert len(releases) == 1, "pinned session must be released exactly once"
    assert srv.pool.stats()["in_use"] == 0


def test_executor_shutdown_sheds_and_returns_admission_slot(database):
    """A request admitted but impossible to dispatch (executor already
    shut down) must give its admission slot back — a leaked slot would
    permanently shrink the queue."""
    srv = JackpineServer(database, ServerConfig(
        pool_size=1, max_queue=2, reap_interval=60.0,
    ))
    srv.start()
    try:
        with ServiceClient(srv.host, srv.port) as client:
            assert client.ping()
            srv._workers.shutdown(wait=False)
            with pytest.raises(ServiceOverloadedError):
                client.execute("SELECT 1")
            assert srv.admission.stats()["queue_depth"] == 0, \
                "undispatchable request leaked its admission slot"
    finally:
        srv.stop()


def test_server_sheds_when_queue_overflows(database):
    """Saturate a tiny server with slow queries from more connections
    than it has queue slots; the excess must get typed overload
    responses, not unbounded queueing."""
    srv = JackpineServer(database, ServerConfig(
        pool_size=1, max_queue=2, deadline=5.0,
    ))
    srv.start()
    slow_sql = (
        "SELECT COUNT(*) FROM edges e JOIN arealm a "
        "ON ST_Intersects(e.geom, a.geom)"
    )
    results = []

    def hammer():
        client = ServiceClient(srv.host, srv.port)
        try:
            client.execute(slow_sql)
            results.append("ok")
        except ServiceOverloadedError as exc:
            assert exc.retry_after > 0
            results.append("shed")
        except ServiceError:
            results.append("error")
        finally:
            client.close()

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert "shed" in results, f"no shedding in {results}"
        stats = srv.admission.stats()
        assert stats["shed_queue_full"] >= 1
        assert stats["peak_queue"] <= stats["queue_limit"]
        assert "error" not in results
    finally:
        srv.stop()


def test_server_protocol_error_gets_typed_response(server):
    sock = socket.create_connection((server.host, server.port), timeout=5)
    try:
        body = b"this is not json"
        sock.sendall(len(body).to_bytes(4, "big") + body)
        from repro.service.protocol import read_frame

        response = read_frame(sock)
        assert response is not None
        assert not response["ok"]
        assert response["error"]["code"] == "protocol"
    finally:
        sock.close()


def test_jackpine_service_view_reflects_server(server, database):
    with ServiceClient(server.host, server.port) as client:
        client.execute("SELECT COUNT(*) FROM arealm")
        client.execute("SELECT COUNT(*) FROM arealm")
    rows = database.execute(
        "SELECT pool_size, queue_limit, cache_hits, admitted "
        "FROM jackpine_service"
    ).rows
    assert len(rows) == 1
    pool_size, queue_limit, cache_hits, admitted = rows[0]
    assert pool_size == 2
    assert queue_limit == 4
    assert cache_hits >= 1
    assert admitted >= 2


def test_jackpine_service_view_empty_without_server(database):
    assert database.service is None
    rows = database.execute("SELECT * FROM jackpine_service").rows
    assert rows == []


def test_wait_events_recorded_while_serving(database):
    from repro.obs.waits import NET_RECV, NET_SEND, SERVICE_QUEUE, WAITS

    WAITS.enable()
    WAITS.reset()
    try:
        srv = JackpineServer(database, ServerConfig(pool_size=1)).start()
        try:
            with ServiceClient(srv.host, srv.port) as client:
                client.execute("SELECT COUNT(*) FROM pointlm")
        finally:
            srv.stop()
        summary = WAITS.summary()
        assert NET_RECV in summary and summary[NET_RECV]["count"] >= 1
        assert NET_SEND in summary and summary[NET_SEND]["count"] >= 1
        assert SERVICE_QUEUE in summary
        assert summary[SERVICE_QUEUE]["count"] >= 1
    finally:
        WAITS.disable()
