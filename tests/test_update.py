"""Tests for the UPDATE statement."""

import pytest

from repro.engines import Database
from repro.errors import ReproError, SqlPlanError, SqlSyntaxError


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute(
        "CREATE TABLE lots (id INTEGER, owner TEXT, price REAL, geom GEOMETRY)"
    )
    database.execute(
        "INSERT INTO lots VALUES "
        "(1, 'ann', 100.0, ST_Point(0, 0)), "
        "(2, 'bob', 200.0, ST_Point(10, 10)), "
        "(3, 'cho', 300.0, ST_Point(20, 20))"
    )
    database.execute("CREATE SPATIAL INDEX lix ON lots (geom)")
    return database


class TestBasicUpdate:
    def test_single_column_with_where(self, db):
        result = db.execute("UPDATE lots SET owner = 'dee' WHERE id = 2")
        assert result.rowcount == 1
        got = db.execute("SELECT owner FROM lots WHERE id = 2").scalar()
        assert got == "dee"

    def test_all_rows_without_where(self, db):
        result = db.execute("UPDATE lots SET price = price * 1.1")
        assert result.rowcount == 3
        got = db.execute("SELECT SUM(price) FROM lots").scalar()
        assert got == pytest.approx(600.0 * 1.1)

    def test_multiple_assignments(self, db):
        db.execute("UPDATE lots SET owner = 'x', price = 0 WHERE id = 1")
        got = db.execute("SELECT owner, price FROM lots WHERE id = 1")
        assert got.rows == [("x", 0.0)]

    def test_expression_references_old_row(self, db):
        db.execute("UPDATE lots SET price = price + id WHERE id IN (1, 2)")
        got = db.execute("SELECT price FROM lots ORDER BY id")
        assert [r[0] for r in got.rows] == [101.0, 202.0, 300.0]

    def test_set_to_null(self, db):
        db.execute("UPDATE lots SET owner = NULL WHERE id = 3")
        got = db.execute("SELECT COUNT(*) FROM lots WHERE owner IS NULL")
        assert got.scalar() == 1

    def test_params(self, db):
        db.execute("UPDATE lots SET owner = ? WHERE id = ?", ("eve", 1))
        assert db.execute(
            "SELECT owner FROM lots WHERE id = 1"
        ).scalar() == "eve"

    def test_no_matching_rows(self, db):
        result = db.execute("UPDATE lots SET owner = 'z' WHERE id = 99")
        assert result.rowcount == 0


class TestGeometryUpdate:
    def test_index_follows_moved_geometry(self, db):
        db.execute("UPDATE lots SET geom = ST_Point(100, 100) WHERE id = 1")
        near_old = db.execute(
            "SELECT COUNT(*) FROM lots "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(-1, -1, 1, 1))"
        ).scalar()
        near_new = db.execute(
            "SELECT id FROM lots "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(99, 99, 101, 101))"
        ).rows
        assert near_old == 0
        assert near_new == [(1,)]

    def test_spatial_predicate_in_where(self, db):
        db.execute(
            "UPDATE lots SET owner = 'flooded' "
            "WHERE ST_DWithin(geom, ST_Point(0, 0), 15)"
        )
        got = db.execute(
            "SELECT COUNT(*) FROM lots WHERE owner = 'flooded'"
        ).scalar()
        assert got == 2  # (0,0) and (10,10)

    def test_geometry_from_wkt_text(self, db):
        db.execute(
            "UPDATE lots SET geom = ST_GeomFromText('POINT(7 7)') WHERE id = 3"
        )
        got = db.execute(
            "SELECT ST_AsText(geom) FROM lots WHERE id = 3"
        ).scalar()
        assert got == "POINT (7 7)"


class TestErrors:
    def test_unknown_column(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("UPDATE lots SET nope = 1")

    def test_type_mismatch_is_atomic(self, db):
        # the second row would fail coercion; nothing may change
        with pytest.raises(ReproError):
            db.execute("UPDATE lots SET price = owner")
        got = db.execute("SELECT SUM(price) FROM lots").scalar()
        assert got == 600.0

    def test_syntax_requires_set(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("UPDATE lots owner = 'x'")

    def test_plan_cache_flushed(self, db):
        query = "SELECT SUM(price) FROM lots"
        assert db.execute(query).scalar() == 600.0
        db.execute("UPDATE lots SET price = 0")
        assert db.execute(query).scalar() == 0.0
