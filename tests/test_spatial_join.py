"""Spatial join engine tests.

Every join algorithm (INLJ, synchronized tree traversal, PBSM) must
return exactly the rows a plain nested loop produces, under every engine
profile — including ``bluestem``, whose MBR-only refinement makes the
"right answer" different from the exact profiles but still
algorithm-independent. Inputs are randomized through the same shape
factories the TIGER generator uses.
"""

import random

import pytest

from repro.datagen import shapes
from repro.engines import Database
from repro.errors import SqlPlanError
from repro.index import INDEX_KINDS, LinearScanIndex
from repro.geometry import Envelope

PROFILES = ("greenwood", "bluestem", "ironbark")
STRATEGIES = ("inlj", "tree", "pbsm")


def _random_layer(rng: random.Random, count: int, world: float):
    """A mix of blobby polygons, wiggly lines and points."""
    geoms = []
    for i in range(count):
        cx = rng.uniform(0.0, world)
        cy = rng.uniform(0.0, world)
        pick = i % 3
        if pick == 0:
            geoms.append(
                shapes.radial_polygon(
                    rng, (cx, cy), rng.uniform(world / 40, world / 10)
                )
            )
        elif pick == 1:
            ex = min(world, cx + rng.uniform(world / 30, world / 8))
            ey = min(world, cy + rng.uniform(world / 30, world / 8))
            geoms.append(shapes.wiggly_line(rng, (cx, cy), (ex + 1.0, ey + 1.0)))
        else:
            from repro.geometry import Point

            geoms.append(Point(cx, cy))
    return geoms


def _build_db(profile: str, seed: int, n_a: int = 40, n_b: int = 50,
              indexed: bool = True) -> Database:
    rng = random.Random(seed)
    db = Database(profile)
    db.execute("CREATE TABLE a (id INTEGER, geom GEOMETRY)")
    db.execute("CREATE TABLE b (id INTEGER, geom GEOMETRY)")
    world = 100.0
    db.insert_rows(
        "a", [(i, g) for i, g in enumerate(_random_layer(rng, n_a, world))]
    )
    db.insert_rows(
        "b", [(i, g) for i, g in enumerate(_random_layer(rng, n_b, world))]
    )
    if indexed:
        db.execute("CREATE SPATIAL INDEX ia ON a (geom)")
        db.execute("CREATE SPATIAL INDEX ib ON b (geom)")
        db.execute("ANALYZE")
    return db


PREDICATES = (
    "ST_Intersects(a.geom, b.geom)",
    "a.geom && b.geom",
    "ST_Contains(a.geom, b.geom)",
    "ST_Contains(b.geom, a.geom)",  # asymmetric, column on each side
    "ST_Overlaps(a.geom, b.geom)",
    "ST_Touches(a.geom, b.geom)",
)


class TestOperatorsMatchNestedLoop:
    """Forced tree / PBSM / INLJ joins reproduce the NLJ row set."""

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("seed", (3, 11))
    def test_all_strategies_agree(self, profile, seed):
        db = _build_db(profile, seed)
        for predicate in PREDICATES:
            sql = f"SELECT a.id, b.id FROM a, b WHERE {predicate}"
            db.join_strategy = "nlj"
            truth = sorted(db.execute(sql).rows)
            for strategy in STRATEGIES:
                db.join_strategy = strategy
                got = sorted(db.execute(sql).rows)
                assert got == truth, (profile, predicate, strategy)
            db.join_strategy = "auto"
            assert sorted(db.execute(sql).rows) == truth

    @pytest.mark.parametrize("profile", PROFILES)
    def test_unindexed_pbsm_agrees(self, profile):
        db = _build_db(profile, seed=5, indexed=False)
        sql = "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        db.join_strategy = "nlj"
        truth = sorted(db.execute(sql).rows)
        db.join_strategy = "pbsm"
        assert "PBSMJoin" in db.explain(sql)
        assert sorted(db.execute(sql).rows) == truth

    def test_self_join(self):
        db = _build_db("greenwood", seed=9, n_a=30, n_b=30)
        sql = (
            "SELECT x.id, y.id FROM a AS x, a AS y "
            "WHERE ST_Intersects(x.geom, y.geom)"
        )
        db.join_strategy = "nlj"
        truth = sorted(db.execute(sql).rows)
        for strategy in STRATEGIES:
            db.join_strategy = strategy
            assert sorted(db.execute(sql).rows) == truth, strategy

    def test_residual_conjunct_applies(self):
        db = _build_db("greenwood", seed=21)
        sql = (
            "SELECT a.id, b.id FROM a, b "
            "WHERE ST_Intersects(a.geom, b.geom) AND a.id < b.id"
        )
        db.join_strategy = "nlj"
        truth = sorted(db.execute(sql).rows)
        for strategy in STRATEGIES:
            db.join_strategy = strategy
            assert sorted(db.execute(sql).rows) == truth, strategy


class TestIndexJoinProperty:
    """``SpatialIndex.join`` equals the brute-force pair set for every
    index kind combination, including the generic cross-kind fallback."""

    @pytest.mark.parametrize("kind_a", sorted(INDEX_KINDS))
    @pytest.mark.parametrize("kind_b", sorted(INDEX_KINDS))
    def test_join_matches_bruteforce(self, kind_a, kind_b):
        rng = random.Random(hash((kind_a, kind_b)) & 0xFFFF)

        def envs(n):
            out = []
            for i in range(n):
                x = rng.uniform(0, 80)
                y = rng.uniform(0, 80)
                out.append(
                    (i, Envelope(x, y, x + rng.uniform(0, 15),
                                 y + rng.uniform(0, 15)))
                )
            return out

        items_a = envs(35)
        items_b = envs(45)
        index_a = INDEX_KINDS[kind_a].bulk_load(items_a)
        index_b = INDEX_KINDS[kind_b].bulk_load(items_b)
        expected = sorted(
            (ia, ib)
            for ia, ea in items_a
            for ib, eb in items_b
            if ea.intersects(eb)
        )
        got = sorted(index_a.join(index_b))
        assert got == expected

    def test_empty_sides(self):
        full = INDEX_KINDS["rtree"].bulk_load(
            [(0, Envelope(0, 0, 1, 1))]
        )
        empty = INDEX_KINDS["rtree"].bulk_load([])
        assert list(empty.join(full)) == []
        assert list(full.join(empty)) == []
        assert list(LinearScanIndex().join(full)) == []


class TestPlannerChoice:
    """The cost model picks the expected algorithm per statistics regime
    and surfaces its decision in EXPLAIN."""

    def test_tiny_outer_prefers_inlj(self):
        db = Database("greenwood")
        db.execute("CREATE TABLE small (id INTEGER, geom GEOMETRY)")
        db.execute("CREATE TABLE big (id INTEGER, geom GEOMETRY)")
        db.insert_rows("small", [(0, _poly(5, 5, 2)), (1, _poly(50, 50, 2))])
        rng = random.Random(1)
        db.insert_rows(
            "big",
            [
                (i, _poly(rng.uniform(0, 100), rng.uniform(0, 100), 1.5))
                for i in range(400)
            ],
        )
        db.execute("CREATE SPATIAL INDEX ibig ON big (geom)")
        db.execute("ANALYZE")
        plan = db.explain(
            "SELECT small.id, big.id FROM small, big "
            "WHERE ST_Intersects(small.geom, big.geom)"
        )
        assert "IndexNestedLoopJoin" in plan
        assert "-> inlj" in plan

    def test_both_indexed_prefers_tree(self):
        db = _build_db("greenwood", seed=2, n_a=120, n_b=150)
        plan = db.explain(
            "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        )
        assert "SpatialTreeJoin" in plan
        assert "-> tree" in plan
        assert "cost(" in plan

    def test_unindexed_prefers_pbsm(self):
        db = _build_db("greenwood", seed=2, n_a=120, n_b=150, indexed=False)
        plan = db.explain(
            "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        )
        assert "PBSMJoin" in plan
        assert "-> pbsm" in plan

    def test_forced_strategy_overrides_cost(self):
        db = _build_db("greenwood", seed=2, n_a=120, n_b=150)
        db.join_strategy = "pbsm"
        plan = db.explain(
            "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        )
        assert "PBSMJoin" in plan

    def test_forced_unavailable_falls_back(self):
        # tree needs both sides indexed; forcing it on bare tables must
        # still produce a working plan rather than an error
        db = _build_db("greenwood", seed=2, indexed=False)
        db.join_strategy = "tree"
        sql = "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        plan = db.explain(sql)
        assert "SpatialTreeJoin" not in plan
        db.execute(sql)

    def test_unknown_strategy_rejected(self):
        db = Database("greenwood")
        with pytest.raises(SqlPlanError):
            db.join_strategy = "zigzag"

    def test_dwithin_stays_inlj(self):
        db = _build_db("greenwood", seed=4)
        plan = db.explain(
            "SELECT a.id, b.id FROM a, b WHERE ST_DWithin(a.geom, b.geom, 2.0)"
        )
        assert "IndexNestedLoopJoin" in plan


def _poly(cx, cy, r):
    from repro.geometry import Polygon

    return Polygon(
        [(cx - r, cy - r), (cx + r, cy - r), (cx + r, cy + r), (cx - r, cy + r)]
    )


class TestAnalyzeAndCounters:
    def test_analyze_statement(self):
        db = _build_db("greenwood", seed=6, indexed=False)
        result = db.execute("ANALYZE a")
        assert result.rowcount == 1
        assert db.catalog.table("a").stats.analyzed
        result = db.execute("ANALYZE")
        assert result.rowcount == 2
        assert db.catalog.table("b").stats.analyzed

    def test_stats_track_incremental_inserts(self):
        db = Database("greenwood")
        db.execute("CREATE TABLE t (id INTEGER, geom GEOMETRY)")
        db.execute("INSERT INTO t VALUES (1, ST_Point(3, 4))")
        col = db.catalog.table("t").stats.column("geom")
        assert col.count == 1
        assert col.bounds is not None and col.bounds.min_x == 3.0
        db.execute("DELETE FROM t WHERE id = 1")
        assert db.catalog.table("t").stats.column("geom").count == 0

    def test_join_counters_in_snapshot(self):
        db = _build_db("greenwood", seed=8)
        db.stats.reset()
        db.execute(
            "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        )
        snap = db.stats.snapshot()
        assert snap["join_pairs_considered"] >= snap["join_pairs_emitted"]
        assert snap["join_pairs_emitted"] > 0
        for key in ("partitions_built", "plan_cache_hits", "plan_cache_misses"):
            assert key in snap

    def test_pbsm_counts_partitions(self):
        db = _build_db("greenwood", seed=8, indexed=False)
        db.stats.reset()
        db.join_strategy = "pbsm"
        db.execute(
            "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        )
        assert db.stats.partitions_built > 0

    def test_plan_cache_hit_miss_counters(self):
        db = _build_db("greenwood", seed=8)
        db.stats.reset()
        sql = "SELECT COUNT(*) FROM a"
        db.execute(sql)
        db.execute(sql)
        db.execute(sql)
        snap = db.stats.snapshot()
        assert snap["plan_cache_misses"] == 1
        assert snap["plan_cache_hits"] == 2

    def test_plan_cache_lru_evicts_oldest(self):
        db = Database("greenwood")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.PLAN_CACHE_SIZE = 3
        queries = [f"SELECT {i} FROM t" for i in range(3)]
        for sql in queries:
            db.execute(sql)
        db.execute(queries[0])  # refresh: now queries[1] is the LRU entry
        db.execute("SELECT 99 FROM t")
        assert queries[0] in db._plan_cache
        assert queries[1] not in db._plan_cache

    def test_explain_analyze_shows_new_operators(self):
        db = _build_db("greenwood", seed=8)
        text = db.explain_analyze(
            "SELECT a.id, b.id FROM a, b WHERE ST_Intersects(a.geom, b.geom)"
        )
        assert "SpatialTreeJoin" in text
        assert "rows=" in text
