"""Tests for the jackpine command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.suite == "all"
        assert set(args.engines) == {"greenwood", "bluestem", "ironbark"}

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--engines", "greenwood", "--scale", "0.5",
             "--suite", "macro", "--scenarios", "geocoding", "--no-index"]
        )
        assert args.engines == ["greenwood"]
        assert args.scale == 0.5
        assert args.scenarios == ["geocoding"]
        assert args.no_index

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engines", "postgres"])

    def test_explain_requires_sql(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])


class TestMain:
    def test_explain(self, capsys):
        code = main([
            "explain", "--scale", "0.1",
            "SELECT COUNT(*) FROM edges "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(0, 0, 1000, 1000))",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IndexScan" in out

    def test_run_loading_suite(self, capsys):
        code = main([
            "run", "--engines", "greenwood", "--scale", "0.1",
            "--suite", "loading",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "J-F4" in out
        assert "edges" in out

    def test_run_macro_suite(self, capsys):
        code = main([
            "run", "--engines", "greenwood", "--scale", "0.1",
            "--suite", "macro", "--scenarios", "geocoding",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geocoding" in out
        assert "q/min" in out

    def test_run_micro_suite(self, capsys):
        code = main([
            "run", "--engines", "greenwood", "--scale", "0.1",
            "--suite", "micro", "--repeats", "1", "--warmups", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Polygon Touches Polygon" in out
        assert "ConvexHull" in out
