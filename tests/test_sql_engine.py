"""Integration tests: full SQL statements through the embedded engine."""

import pytest

from repro.engines import Database
from repro.errors import SqlPlanError, SqlSyntaxError
from repro.geometry import Point, Polygon


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute("CREATE TABLE cities (id INTEGER, name TEXT, pop INTEGER, geom GEOMETRY)")
    database.execute(
        "INSERT INTO cities VALUES "
        "(1, 'Alpha', 100, ST_Point(0, 0)), "
        "(2, 'Beta', 250, ST_Point(10, 0)), "
        "(3, 'Gamma', 50, ST_Point(0, 10)), "
        "(4, 'Delta', NULL, ST_Point(10, 10))"
    )
    database.execute("CREATE TABLE zones (zid INTEGER, kind TEXT, geom GEOMETRY)")
    database.execute(
        "INSERT INTO zones VALUES "
        "(10, 'core', ST_GeomFromText('POLYGON((-1 -1, 5 -1, 5 5, -1 5, -1 -1))')), "
        "(20, 'ring', ST_GeomFromText('POLYGON((5 5, 15 5, 15 15, 5 15, 5 5))'))"
    )
    return database


class TestDdlAndDml:
    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("CREATE TABLE cities (id INTEGER)")

    def test_create_if_not_exists_silent(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS cities (id INTEGER)")

    def test_drop_table(self, db):
        db.execute("CREATE TABLE tmp (x INTEGER)")
        db.execute("DROP TABLE tmp")
        with pytest.raises(SqlPlanError):
            db.execute("SELECT * FROM tmp")

    def test_drop_missing_needs_if_exists(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("DROP TABLE nope")
        db.execute("DROP TABLE IF EXISTS nope")

    def test_insert_column_subset(self, db):
        db.execute("INSERT INTO cities (id, name) VALUES (9, 'Omega')")
        got = db.execute("SELECT pop, geom FROM cities WHERE id = 9")
        assert got.rows[0] == (None, None)

    def test_insert_wrong_arity(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("INSERT INTO cities (id, name) VALUES (9)")

    def test_type_coercion_rejects_garbage(self, db):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            db.execute("INSERT INTO cities VALUES ('x', 'n', 1, NULL)")

    def test_delete_with_predicate(self, db):
        result = db.execute("DELETE FROM cities WHERE pop < 200")
        assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM cities").scalar() == 2

    def test_delete_updates_indexes(self, db):
        db.execute("CREATE SPATIAL INDEX city_idx ON cities (geom)")
        db.execute("DELETE FROM cities WHERE id = 1")
        got = db.execute(
            "SELECT COUNT(*) FROM cities "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(-1, -1, 1, 1))"
        )
        assert got.scalar() == 0


class TestSelectBasics:
    def test_projection_and_alias(self, db):
        got = db.execute("SELECT name AS n, pop * 2 AS double_pop FROM cities WHERE id = 2")
        assert got.columns == ["n", "double_pop"]
        assert got.rows == [("Beta", 500)]

    def test_star_expansion(self, db):
        got = db.execute("SELECT * FROM cities WHERE id = 1")
        assert got.columns == ["id", "name", "pop", "geom"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2 * 3").scalar() == 7

    def test_where_null_is_filtered(self, db):
        got = db.execute("SELECT id FROM cities WHERE pop > 0")
        assert len(got.rows) == 3  # Delta's NULL pop excluded

    def test_is_null(self, db):
        got = db.execute("SELECT id FROM cities WHERE pop IS NULL")
        assert got.rows == [(4,)]

    def test_in_and_between(self, db):
        got = db.execute(
            "SELECT id FROM cities WHERE id IN (1, 3) AND pop BETWEEN 40 AND 120 "
            "ORDER BY id"
        )
        assert [r[0] for r in got.rows] == [1, 3]

    def test_like(self, db):
        got = db.execute("SELECT name FROM cities WHERE name LIKE '%ta' ORDER BY name")
        assert [r[0] for r in got.rows] == ["Beta", "Delta"]

    def test_order_by_desc_nulls(self, db):
        got = db.execute("SELECT id FROM cities ORDER BY pop DESC")
        # NULL sorts last in descending order
        assert got.rows[-1] == (4,)

    def test_order_by_position(self, db):
        got = db.execute("SELECT id, pop FROM cities WHERE pop IS NOT NULL ORDER BY 2")
        assert [r[0] for r in got.rows] == [3, 1, 2]

    def test_limit_offset(self, db):
        got = db.execute("SELECT id FROM cities ORDER BY id LIMIT 2 OFFSET 1")
        assert [r[0] for r in got.rows] == [2, 3]

    def test_distinct(self, db):
        db.execute("INSERT INTO cities VALUES (5, 'Alpha', 1, ST_Point(1,1))")
        got = db.execute("SELECT DISTINCT name FROM cities WHERE name = 'Alpha'")
        assert len(got.rows) == 1

    def test_params(self, db):
        got = db.execute("SELECT id FROM cities WHERE name = ? AND pop > ?", ("Beta", 100))
        assert got.rows == [(2,)]

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT nosuch FROM cities")

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT geom FROM cities c, zones z")

    def test_string_concat(self, db):
        got = db.execute("SELECT name || '!' FROM cities WHERE id = 1")
        assert got.scalar() == "Alpha!"


class TestAggregates:
    def test_count_sum_avg_min_max(self, db):
        got = db.execute(
            "SELECT COUNT(*), COUNT(pop), SUM(pop), AVG(pop), MIN(pop), MAX(pop) "
            "FROM cities"
        )
        assert got.rows[0] == (4, 3, 400, 400 / 3, 50, 250)

    def test_empty_aggregate_row(self, db):
        got = db.execute("SELECT COUNT(*), SUM(pop) FROM cities WHERE id > 99")
        assert got.rows == [(0, None)]

    def test_group_by_with_having(self, db):
        db.execute("INSERT INTO cities VALUES (6, 'Beta', 10, ST_Point(2,2))")
        got = db.execute(
            "SELECT name, COUNT(*) c, SUM(pop) FROM cities GROUP BY name "
            "HAVING COUNT(*) > 1 ORDER BY name"
        )
        assert got.rows == [("Beta", 2, 260)]

    def test_count_distinct(self, db):
        db.execute("INSERT INTO cities VALUES (7, 'Alpha', 1, ST_Point(3,3))")
        got = db.execute("SELECT COUNT(DISTINCT name) FROM cities")
        assert got.scalar() == 4

    def test_aggregate_of_expression(self, db):
        got = db.execute("SELECT SUM(pop * 2) FROM cities WHERE pop IS NOT NULL")
        assert got.scalar() == 800

    def test_expression_over_aggregate(self, db):
        got = db.execute("SELECT MAX(pop) - MIN(pop) FROM cities")
        assert got.scalar() == 200

    def test_order_by_aggregate(self, db):
        got = db.execute(
            "SELECT name, SUM(pop) s FROM cities GROUP BY name ORDER BY s DESC LIMIT 1"
        )
        assert got.rows[0][0] == "Beta"

    def test_st_extent_aggregate(self, db):
        got = db.execute("SELECT ST_Area(ST_Extent(geom)) FROM cities")
        assert got.scalar() == 100.0

    def test_st_collect_aggregate(self, db):
        got = db.execute("SELECT ST_NPoints(ST_Collect(geom)) FROM cities")
        assert got.scalar() == 4

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT id FROM cities WHERE COUNT(*) > 1")


class TestJoins:
    def test_spatial_join(self, db):
        got = db.execute(
            "SELECT c.name, z.zid FROM cities c JOIN zones z "
            "ON ST_Contains(z.geom, c.geom) ORDER BY c.id"
        )
        assert got.rows == [("Alpha", 10), ("Delta", 20)]

    def test_hash_join_on_equality(self, db):
        db.execute("CREATE TABLE pops (amount INTEGER, label TEXT)")
        db.execute(
            "INSERT INTO pops VALUES (100, 'small'), (250, 'medium')"
        )
        got = db.execute(
            "SELECT c.name, p.label FROM cities c JOIN pops p "
            "ON c.pop = p.amount ORDER BY c.id"
        )
        assert got.rows == [("Alpha", "small"), ("Beta", "medium")]
        plan = db.explain(
            "SELECT c.name FROM cities c JOIN pops p ON c.pop = p.amount"
        )
        assert "HashJoin" in plan

    def test_cross_join(self, db):
        got = db.execute("SELECT COUNT(*) FROM cities, zones")
        assert got.scalar() == 8

    def test_join_condition_with_extra_filter(self, db):
        got = db.execute(
            "SELECT c.name FROM cities c JOIN zones z "
            "ON ST_Contains(z.geom, c.geom) AND z.kind = 'core'"
        )
        assert got.rows == [("Alpha",)]

    def test_self_join_aliases(self, db):
        got = db.execute(
            "SELECT a.id, b.id FROM cities a JOIN cities b "
            "ON a.id < b.id WHERE a.id = 1 ORDER BY b.id"
        )
        assert [r[1] for r in got.rows] == [2, 3, 4]


class TestIndexUsage:
    def test_index_scan_chosen(self, db):
        db.execute("CREATE SPATIAL INDEX zidx ON zones (geom)")
        plan = db.explain(
            "SELECT zid FROM zones WHERE ST_Intersects(geom, ST_Point(0, 0))"
        )
        assert "IndexScan" in plan

    def test_seq_scan_without_index(self, db):
        plan = db.explain(
            "SELECT zid FROM zones WHERE ST_Intersects(geom, ST_Point(0, 0))"
        )
        assert "SeqScan" in plan

    def test_index_join_chosen(self, db):
        db.execute("CREATE SPATIAL INDEX cidx ON cities (geom)")
        plan = db.explain(
            "SELECT 1 FROM zones z JOIN cities c ON ST_Contains(z.geom, c.geom)"
        )
        assert "IndexNestedLoopJoin" in plan

    def test_index_and_scan_agree(self, db):
        query = (
            "SELECT zid FROM zones "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(0, 0, 6, 6))"
        )
        before = sorted(db.execute(query).rows)
        db.execute("CREATE SPATIAL INDEX zidx ON zones (geom)")
        after = sorted(db.execute(query).rows)
        assert before == after

    def test_dwithin_uses_expanded_probe(self, db):
        db.execute("CREATE SPATIAL INDEX cidx ON cities (geom)")
        got = db.execute(
            "SELECT id FROM cities WHERE ST_DWithin(geom, ST_Point(0, 0), 11) "
            "ORDER BY id"
        )
        assert [r[0] for r in got.rows] == [1, 2, 3]

    def test_envelope_operator_indexable(self, db):
        db.execute("CREATE SPATIAL INDEX cidx ON cities (geom)")
        plan = db.explain(
            "SELECT id FROM cities WHERE geom && ST_MakeEnvelope(0, 0, 1, 1)"
        )
        assert "IndexScan" in plan

    def test_insert_maintains_index(self, db):
        db.execute("CREATE SPATIAL INDEX cidx ON cities (geom)")
        db.execute("INSERT INTO cities VALUES (99, 'New', 5, ST_Point(0.5, 0.5))")
        got = db.execute(
            "SELECT id FROM cities "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(0.4, 0.4, 0.6, 0.6))"
        )
        assert got.rows == [(99,)]

    def test_create_index_on_non_geometry_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("CREATE SPATIAL INDEX bad ON cities (name)")


class TestSpatialFunctions:
    def test_geometry_construction_and_accessors(self, db):
        got = db.execute(
            "SELECT ST_X(ST_Point(3, 4)), ST_Y(ST_Point(3, 4)), "
            "ST_AsText(ST_Point(1, 2))"
        )
        assert got.rows[0] == (3.0, 4.0, "POINT (1 2)")

    def test_geometry_type_and_dimension(self, db):
        got = db.execute(
            "SELECT ST_GeometryType(geom), ST_Dimension(geom) "
            "FROM zones WHERE zid = 10"
        )
        assert got.rows[0] == ("ST_Polygon", 2)

    def test_area_length_distance(self, db):
        got = db.execute(
            "SELECT ST_Area(geom), ST_Perimeter(geom) FROM zones WHERE zid = 10"
        )
        assert got.rows[0] == (36.0, 24.0)

    def test_relate_with_pattern(self, db):
        got = db.execute(
            "SELECT ST_Relate(a.geom, b.geom, 'FF*FF****') "
            "FROM zones a JOIN zones b ON a.zid < b.zid"
        )
        assert got.scalar() is False  # they touch at (5, 5)

    def test_geomfromtext_error_propagates(self, db):
        from repro.errors import WktParseError

        with pytest.raises(WktParseError):
            db.execute("SELECT ST_GeomFromText('NOT WKT')")

    def test_unknown_function(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT ST_Frobnicate(geom) FROM zones")

    def test_scalar_functions(self, db):
        got = db.execute(
            "SELECT ABS(-3), ROUND(2.567, 1), LOWER('ABC'), UPPER('abc'), "
            "COALESCE(NULL, 7), SUBSTR('spatial', 1, 3)"
        )
        assert got.rows[0] == (3, 2.6, "abc", "ABC", 7, "spa")
