"""Unit tests for heap tables and the catalog."""

import pytest

from repro.errors import EngineError, SqlPlanError
from repro.geometry import Point
from repro.index import RTree
from repro.storage import Catalog, Column, ColumnType, IndexEntry, Table


def _make_table():
    return Table(
        "t",
        [
            Column("id", ColumnType.INTEGER),
            Column("name", ColumnType.TEXT),
            Column("score", ColumnType.REAL),
            Column("geom", ColumnType.GEOMETRY),
        ],
    )


class TestColumnType:
    def test_aliases(self):
        assert ColumnType.parse("int") is ColumnType.INTEGER
        assert ColumnType.parse("VARCHAR") is ColumnType.TEXT
        assert ColumnType.parse("Double") is ColumnType.REAL
        assert ColumnType.parse("GEOMETRY") is ColumnType.GEOMETRY

    def test_unknown(self):
        with pytest.raises(SqlPlanError):
            ColumnType.parse("blob")


class TestTable:
    def test_insert_and_scan(self):
        table = _make_table()
        table.insert_row((1, "a", 2.5, Point(0, 0)))
        table.insert_row((2, "b", None, None))
        assert len(table) == 2
        assert [row_id for row_id, _r in table.scan()] == [0, 1]

    def test_coercion_int_from_float(self):
        table = _make_table()
        rid = table.insert_row((3.0, "x", 1, None))
        assert table.get_row(rid)[0] == 3
        assert table.get_row(rid)[2] == 1.0

    def test_coercion_geometry_from_wkt(self):
        table = _make_table()
        rid = table.insert_row((1, "x", None, "POINT (5 6)"))
        assert table.get_row(rid)[3] == Point(5, 6)

    def test_coercion_geometry_from_wkb(self):
        table = _make_table()
        rid = table.insert_row((1, "x", None, Point(7, 8).wkb()))
        assert table.get_row(rid)[3] == Point(7, 8)

    def test_bad_types_rejected(self):
        table = _make_table()
        with pytest.raises(EngineError):
            table.insert_row(("nope", "a", 1.0, None))
        with pytest.raises(EngineError):
            table.insert_row((1, 42, 1.0, None))
        with pytest.raises(EngineError):
            table.insert_row((1, "a", "fast", None))
        with pytest.raises(EngineError):
            table.insert_row((1, "a", 1.0, 12345))

    def test_wrong_arity(self):
        with pytest.raises(EngineError):
            _make_table().insert_row((1, "a"))

    def test_delete_and_tombstones(self):
        table = _make_table()
        rid = table.insert_row((1, "a", None, None))
        table.insert_row((2, "b", None, None))
        table.delete_row(rid)
        assert len(table) == 1
        assert [r[0] for _id, r in table.scan()] == [2]
        with pytest.raises(EngineError):
            table.get_row(rid)
        with pytest.raises(EngineError):
            table.delete_row(rid)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlPlanError):
            Table("t", [Column("x", ColumnType.INTEGER),
                        Column("X", ColumnType.TEXT)])

    def test_column_lookup_case_insensitive(self):
        table = _make_table()
        assert table.column_index("NAME") == 1
        with pytest.raises(SqlPlanError):
            table.column_index("missing")

    def test_geometry_columns(self):
        assert _make_table().geometry_columns() == ["geom"]

    def test_pages(self):
        table = _make_table()
        for i in range(Table.ROWS_PER_PAGE + 1):
            table.insert_row((i, "x", None, None))
        assert table.page_count == 2
        assert table.page_of(0) == 0
        assert table.page_of(Table.ROWS_PER_PAGE) == 1


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("a", [Column("x", ColumnType.INTEGER)])
        assert catalog.has_table("A")
        assert catalog.table("a").name == "a"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("a", [Column("x", ColumnType.INTEGER)])
        with pytest.raises(SqlPlanError):
            catalog.create_table("A", [Column("x", ColumnType.INTEGER)])

    def test_drop_cascades_indexes(self):
        catalog = Catalog()
        catalog.create_table("a", [Column("g", ColumnType.GEOMETRY)])
        catalog.register_index(IndexEntry("idx", "a", "g", RTree()))
        catalog.drop_table("a")
        assert catalog.index_for("a", "g") is None

    def test_index_registry(self):
        catalog = Catalog()
        catalog.create_table("a", [Column("g", ColumnType.GEOMETRY)])
        entry = IndexEntry("idx", "a", "g", RTree())
        catalog.register_index(entry)
        assert catalog.index_for("A", "G") is entry
        with pytest.raises(SqlPlanError):
            catalog.register_index(IndexEntry("idx", "a", "g", RTree()))
        catalog.drop_index("idx")
        assert catalog.index_for("a", "g") is None

    def test_drop_missing_index(self):
        catalog = Catalog()
        with pytest.raises(SqlPlanError):
            catalog.drop_index("nope")
        catalog.drop_index("nope", if_exists=True)
