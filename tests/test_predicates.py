"""Unit tests for the primitive predicates: orientation, segment
intersection, point/segment distances."""

import math

import pytest

from repro.algorithms.predicates import (
    collinear,
    on_segment,
    orientation,
    point_segment_distance,
    segment_intersection,
    segment_segment_distance,
    segments_properly_cross,
)


class TestOrientation:
    def test_counterclockwise(self):
        assert orientation((0, 0), (1, 0), (0, 1)) == 1

    def test_clockwise(self):
        assert orientation((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_collinear_with_large_coordinates(self):
        assert orientation((1e6, 1e6), (2e6, 2e6), (3e6, 3e6)) == 0

    def test_near_collinear_treated_as_collinear(self):
        # perturbation below the relative filter
        assert orientation((0, 0), (1e6, 1e6), (2e6, 2e6 + 1e-9)) == 0

    def test_collinear_helper(self):
        assert collinear((0, 0), (5, 0), (9, 0))
        assert not collinear((0, 0), (5, 0), (9, 1))


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment((1, 1), (0, 0), (2, 2))

    def test_endpoints_inclusive(self):
        assert on_segment((0, 0), (0, 0), (2, 2))
        assert on_segment((2, 2), (0, 0), (2, 2))

    def test_collinear_but_outside(self):
        assert not on_segment((3, 3), (0, 0), (2, 2))

    def test_off_line(self):
        assert not on_segment((1, 1.5), (0, 0), (2, 2))


class TestSegmentIntersection:
    def test_proper_crossing(self):
        hit = segment_intersection((0, 0), (2, 2), (0, 2), (2, 0))
        assert hit == (1.0, 1.0)

    def test_disjoint(self):
        assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_endpoint_touch(self):
        hit = segment_intersection((0, 0), (1, 1), (1, 1), (2, 0))
        assert hit == (1.0, 1.0)

    def test_t_junction(self):
        hit = segment_intersection((0, 0), (2, 0), (1, 0), (1, 5))
        assert hit == (1.0, 0.0)

    def test_collinear_overlap(self):
        hit = segment_intersection((0, 0), (3, 0), (1, 0), (5, 0))
        assert hit == ((1.0, 0.0), (3.0, 0.0))

    def test_collinear_touch_at_point(self):
        hit = segment_intersection((0, 0), (1, 0), (1, 0), (2, 0))
        assert hit == (1.0, 0.0)

    def test_collinear_disjoint(self):
        assert segment_intersection((0, 0), (1, 0), (2, 0), (3, 0)) is None

    def test_identical_segments(self):
        hit = segment_intersection((0, 0), (2, 2), (0, 0), (2, 2))
        assert hit == ((0.0, 0.0), (2.0, 2.0))

    def test_contained_overlap(self):
        hit = segment_intersection((0, 0), (10, 0), (2, 0), (4, 0))
        assert hit == ((2.0, 0.0), (4.0, 0.0))

    def test_vertical_overlap(self):
        hit = segment_intersection((0, 0), (0, 10), (0, 5), (0, 20))
        assert hit == ((0.0, 5.0), (0.0, 10.0))


class TestProperCrossing:
    def test_crossing(self):
        assert segments_properly_cross((0, 0), (2, 2), (0, 2), (2, 0))

    def test_touching_not_proper(self):
        assert not segments_properly_cross((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_not_proper(self):
        assert not segments_properly_cross((0, 0), (2, 0), (1, 0), (3, 0))


class TestDistances:
    def test_point_to_segment_perpendicular(self):
        assert point_segment_distance((1, 1), (0, 0), (2, 0)) == 1.0

    def test_point_to_segment_beyond_end(self):
        assert point_segment_distance((5, 0), (0, 0), (2, 0)) == 3.0

    def test_point_on_segment_zero(self):
        assert point_segment_distance((1, 0), (0, 0), (2, 0)) == 0.0

    def test_degenerate_segment(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 0)) == 5.0

    def test_segment_segment_parallel(self):
        assert segment_segment_distance((0, 0), (2, 0), (0, 1), (2, 1)) == 1.0

    def test_segment_segment_crossing_zero(self):
        assert segment_segment_distance((0, 0), (2, 2), (0, 2), (2, 0)) == 0.0

    def test_segment_segment_endpoint_gap(self):
        got = segment_segment_distance((0, 0), (1, 0), (2, 0), (3, 0))
        assert got == 1.0

    def test_segment_segment_diagonal_gap(self):
        got = segment_segment_distance((0, 0), (1, 0), (2, 1), (3, 1))
        assert got == pytest.approx(math.hypot(1, 1))
