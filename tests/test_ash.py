"""Active-session-history sampler and contention attribution.

The sampler's lifecycle must be idempotent, its history bounded, and
its samples must carry the statement/wait state the monitor tracks.
The attribution decomposition must account for busy time: wait classes
plus on-CPU buckets sum to ``busy_seconds`` (any overlap is surfaced as
``overcount_seconds``, never silently lost)."""

from __future__ import annotations

import time

import pytest

from repro.obs.ash import AshSampler, render_sessions
from repro.obs.waits import (
    GUARD_TICK,
    LOCK_ROW,
    WAITS,
    WaitAttribution,
    WaitMonitor,
)
from repro.workload.driver import WorkloadConfig, run_workload


@pytest.fixture
def monitor():
    mon = WaitMonitor()
    mon.enable()
    return mon


def test_start_stop_idempotent(monitor):
    sampler = AshSampler(monitor=monitor, interval=0.005)
    assert not sampler.running
    sampler.start()
    sampler.start()  # second start is a no-op
    assert sampler.running
    sampler.stop()
    sampler.stop()  # second stop is a no-op
    assert not sampler.running
    # restartable after a stop
    sampler.start()
    assert sampler.running
    sampler.stop()


def test_rejects_bad_interval(monitor):
    with pytest.raises(ValueError):
        AshSampler(monitor=monitor, interval=0.0)


def test_samples_active_statement(monitor):
    monitor.begin_statement("SELECT 1", engine="greenwood",
                            txid=17, session_id=3)
    sampler = AshSampler(monitor=monitor, interval=0.005)
    batch = sampler.sample_once()
    assert len(batch) == 1
    sample = batch[0]
    assert sample.sql == "SELECT 1"
    assert sample.txid == 17
    assert sample.session_id == 3
    assert sample.wait_event is None  # on CPU
    monitor.end_statement()
    assert sampler.sample_once() == []


def test_samples_wait_state(monitor):
    monitor.begin_statement("UPDATE t SET x = 1", engine="greenwood")
    token = monitor.begin_wait(LOCK_ROW, ("t", 5))
    sampler = AshSampler(monitor=monitor)
    batch = sampler.sample_once()
    assert batch[0].wait_event == LOCK_ROW
    assert batch[0].wait_seconds >= 0.0
    monitor.end_wait(token)
    monitor.end_statement()
    counts = sampler.wait_state_counts()
    assert counts == {LOCK_ROW: 1}


def test_history_is_bounded(monitor):
    monitor.begin_statement("SELECT 1")
    sampler = AshSampler(monitor=monitor, capacity=5)
    for _ in range(12):
        sampler.sample_once()
    monitor.end_statement()
    assert len(sampler.samples()) == 5
    assert sampler.sample_instants == 12
    sampler.clear()
    assert sampler.samples() == []
    assert sampler.sample_instants == 0


def test_export_is_jsonable(monitor):
    import json

    monitor.begin_statement("SELECT 1", engine="greenwood", session_id=1)
    sampler = AshSampler(monitor=monitor)
    sampler.sample_once()
    monitor.end_statement()
    document = sampler.export(limit=10)
    json.dumps(document)
    assert document["sample_instants"] == 1
    assert len(document["samples"]) == 1
    assert document["samples"][0]["sql"] == "SELECT 1"


def test_render_sessions_frame(monitor):
    monitor.begin_statement(
        "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, x) AND "
        "more_predicates_to_force_truncation(geom)",
        engine="greenwood", txid=5, session_id=2,
    )
    frame = render_sessions(monitor.active_sessions(), now_label="1.0s")
    monitor.end_statement()
    assert "jackpine top" in frame
    assert "1 active session(s)" in frame
    assert "on CPU" in frame
    assert "..." in frame  # long SQL truncated


def test_render_sessions_empty_explains_why():
    """Zero sessions renders an explicit line, never a bare header —
    and the line says whether the monitor was even on."""
    from repro.obs.waits import WAITS

    was_enabled = WAITS.enabled
    try:
        WAITS.disable()
        frame = render_sessions([], now_label="0.0s")
        assert "0 active session(s)" in frame
        assert "no active sessions" in frame
        assert "wait monitor disabled / sampler not running" in frame
        WAITS.enable()
        frame = render_sessions([], now_label="0.0s")
        assert "no active sessions — no activity" in frame
    finally:
        WAITS.disable()
        if was_enabled:
            WAITS.enable()


def test_registered_samples_follow_sampler_lifecycle(monitor):
    from repro.obs.ash import active_samplers, registered_samples

    monitor.begin_statement("SELECT 1", engine="greenwood", session_id=3)
    sampler = AshSampler(monitor=monitor, interval=0.002)
    sampler.start()
    try:
        assert sampler in active_samplers()
        sampler.sample_once()
        assert any(s.sql == "SELECT 1" for s in registered_samples())
    finally:
        sampler.stop()
        monitor.end_statement()
    assert sampler not in active_samplers()


def test_background_thread_collects(monitor):
    monitor.begin_statement("SELECT 1")
    sampler = AshSampler(monitor=monitor, interval=0.002)
    sampler.start()
    time.sleep(0.05)
    sampler.stop()
    monitor.end_statement()
    assert sampler.sample_instants >= 3
    assert len(sampler.samples()) >= 3


# -- attribution arithmetic -------------------------------------------------


def test_attribution_sums_to_busy():
    summary = {
        LOCK_ROW: {"count": 2, "seconds": 0.3},
        "CPU:Refine": {"count": 10, "seconds": 0.2},
        GUARD_TICK: {"count": 5, "seconds": 0.1},
    }
    attribution = WaitAttribution(summary, busy_seconds=1.0)
    assert attribution.off_cpu_seconds == pytest.approx(0.4)
    assert attribution.attributed_cpu_seconds == pytest.approx(0.2)
    assert attribution.other_cpu_seconds == pytest.approx(0.4)
    assert attribution.overcount_seconds == 0.0
    total = (
        attribution.off_cpu_seconds
        + attribution.attributed_cpu_seconds
        + attribution.other_cpu_seconds
    )
    assert total == pytest.approx(attribution.busy_seconds)


def test_attribution_surfaces_overcount():
    summary = {
        LOCK_ROW: {"count": 1, "seconds": 0.9},
        "CPU:Refine": {"count": 1, "seconds": 0.4},
    }
    attribution = WaitAttribution(summary, busy_seconds=1.0)
    assert attribution.other_cpu_seconds == 0.0
    assert attribution.overcount_seconds == pytest.approx(0.3)


def test_attribution_render_mentions_every_event():
    summary = {
        LOCK_ROW: {"count": 1, "seconds": 0.1, "p50": 0.1, "p95": 0.1,
                   "p99": 0.1},
    }
    attribution = WaitAttribution(
        summary, busy_seconds=1.0,
        hottest=[{"table": "t", "row_id": 9, "waits": 1, "seconds": 0.1}],
    )
    text = attribution.render()
    assert LOCK_ROW in text
    assert "on-CPU (other)" in text
    assert "hottest rows" in text
    assert " 9" in text


# -- end to end through the workload driver ---------------------------------


def test_workload_attribution_accounts_for_wall_time():
    """The J-X4 acceptance check: with waits on, the recorded wait
    classes fit inside the busy time (wall x clients) and the
    decomposition reproduces it, with negligible overlap overcount."""
    config = WorkloadConfig(
        clients=4, duration=1.0, scale=0.1, waits=True, lock_timeout=0.1,
        seed=11,
    )
    report = run_workload(config)
    attribution = report.attribution
    assert attribution is not None
    busy = attribution.busy_seconds
    assert busy == pytest.approx(report.wall_seconds * 4)
    total = (
        attribution.off_cpu_seconds
        + attribution.attributed_cpu_seconds
        + attribution.other_cpu_seconds
    )
    # identity up to overcount; the overlap itself must stay under 10%
    assert total == pytest.approx(busy + attribution.overcount_seconds,
                                  rel=1e-6)
    assert attribution.overcount_seconds <= 0.1 * busy
    # the monitor is switched back off afterwards
    assert WAITS.enabled is False
    # ASH ran alongside and saw the round
    assert report.ash is not None
    assert report.ash["sample_instants"] >= 10
    # telemetry stays additive: both sections present and JSON-able
    import json

    document = report.telemetry_document()
    json.dumps(document)
    assert "waits" in document and "ash" in document


def test_workload_without_waits_has_no_sections():
    config = WorkloadConfig(clients=2, duration=0.3, scale=0.1, seed=11)
    report = run_workload(config)
    assert report.attribution is None
    assert report.ash is None
    document = report.telemetry_document()
    assert "waits" not in document
    assert "ash" not in document
