"""Tests for the standalone experiment drivers (J-F5/J-F6/J-A1/J-A2)."""

import pytest

from repro.core import experiments as exp


class TestIndexEffect:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_index_effect(seed=42, scale=0.1)

    def test_answers_identical_across_modes(self, result):
        # asserted inside run_index_effect; re-check rows came back
        assert len(result.rows) == len(exp.INDEX_EFFECT_QUERIES)

    def test_selective_queries_benefit_from_index(self, result):
        by_name = {name: (w, wo) for name, w, wo, _a in result.rows}
        with_idx, without = by_name["window_small"]
        assert with_idx < without

    def test_render(self, result):
        text = exp.render_index_effect(result)
        assert "J-F5" in text
        assert "speedup" in text


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_scalability(seed=42, scales=(0.1, 0.3))

    def test_series_cover_all_queries(self, result):
        assert set(result.series) == set(exp.SCALABILITY_QUERIES)
        for points in result.series.values():
            assert [s for s, _t, _a in points] == [0.1, 0.3]

    def test_answers_grow_with_scale(self, result):
        for name, points in result.series.items():
            answers = [a for _s, _t, a in points]
            assert answers[-1] >= answers[0], name

    def test_render(self, result):
        text = exp.render_scalability(result)
        assert "J-F6" in text


class TestRefinementAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_refinement_ablation(seed=42, scale=0.1)

    def test_mbr_overcounts_touches(self, result):
        row = dict(result.rows)["touches_counties"]
        _t, exact = row["greenwood"]
        _t2, approx = row["bluestem"]
        # jittered county MBRs overlap: the MBR 'touches' answer differs
        assert approx != exact

    def test_exact_engines_agree(self, result):
        for name, per_engine in result.rows:
            assert per_engine["greenwood"][1] == per_engine["ironbark"][1], name

    def test_render(self, result):
        text = exp.render_refinement(result)
        assert "J-A1" in text
        assert "bluestem" in text


class TestIndexAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_index_ablation(seed=42, scale=0.1,
                                      kinds=("rtree", "grid", "scan"))

    def test_all_kinds_reported(self, result):
        assert result.kinds == ("rtree", "grid", "scan")
        assert len(result.rows) == len(exp.INDEX_ABLATION_QUERIES)

    def test_render(self, result):
        text = exp.render_index_ablation(result)
        assert "J-A2" in text
        assert "rtree" in text


class TestSelectivitySweep:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_selectivity_sweep(
            seed=42, scale=0.1, fractions=(0.05, 0.25, 1.0)
        )

    def test_exact_engines_agree_and_mbr_never_undercounts(self, result):
        # the probe is its own envelope, but the *edges* are not: the MBR
        # engine keeps every edge whose box clips the window, so it may
        # over-count (never under-count) relative to the exact engines
        for i in range(3):
            exact = result.series["greenwood"][i][2]
            assert result.series["ironbark"][i][2] == exact
            assert result.series["bluestem"][i][2] >= exact

    def test_answers_monotone_in_window_size(self, result):
        for engine in result.engines:
            counts = [p[2] for p in result.series[engine]]
            assert counts == sorted(counts)

    def test_full_window_returns_everything(self, result):
        from repro.datagen import generate

        edges = len(generate(seed=42, scale=0.1).layer("edges").rows)
        for engine in result.engines:
            assert result.series[engine][-1][2] == edges

    def test_render(self, result):
        text = exp.render_selectivity(result)
        assert "J-X1" in text


class TestConcurrency:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_concurrency(
            scenario_name="geocoding", clients_series=(1, 3),
            seed=42, scale=0.1,
        )

    def test_queries_scale_with_clients(self, result):
        (c1, _w1, q1, _t1), (c3, _w3, q3, _t3) = result.points
        assert c1 == 1 and c3 == 3
        assert q3 == 3 * q1

    def test_render(self, result):
        text = exp.render_concurrency(result)
        assert "J-X2" in text
        assert "geocoding" in text


class TestSpatialJoin:
    @pytest.fixture(scope="class")
    def result(self):
        return exp.run_spatial_join(seed=42, scale=0.1)

    def test_all_strategies_timed_for_every_join(self, result):
        assert len(result.rows) == len(exp.JOIN_MATRIX)
        for _label, cells in result.rows:
            assert set(cells) == set(exp.JOIN_STRATEGY_SERIES)

    def test_answers_identical_across_strategies(self, result):
        # asserted inside run_spatial_join; re-check the invariant here
        for _label, cells in result.rows:
            assert len({answer for _s, answer in cells.values()}) == 1

    def test_render(self, result):
        text = exp.render_spatial_join(result)
        assert "J-X3" in text
        for strategy in exp.JOIN_STRATEGY_SERIES:
            assert strategy in text


class TestCliIntegration:
    def test_experiment_subcommand(self, capsys):
        from repro.cli import main

        code = main(["experiment", "ja2", "--scale", "0.1"])
        assert code == 0
        assert "J-A2" in capsys.readouterr().out

    def test_spatial_join_subcommand(self, capsys):
        from repro.cli import main

        code = main(["experiment", "jx3", "--scale", "0.1"])
        assert code == 0
        assert "J-X3" in capsys.readouterr().out

    def test_selectivity_subcommand(self, capsys):
        from repro.cli import main

        code = main(["experiment", "jx1", "--scale", "0.1"])
        assert code == 0
        assert "J-X1" in capsys.readouterr().out
