"""Snapshot-isolation semantics of the MVCC transaction subsystem.

The contracts under test, in the vocabulary of docs/CONCURRENCY.md:

- **Snapshot visibility** — a transaction sees the database as of its
  BEGIN: concurrent commits that land after the snapshot stay invisible
  until the reader's own COMMIT; uncommitted writes are never visible to
  anyone but their own transaction.
- **First-updater-wins** — two transactions writing the same row cannot
  both commit; the later writer aborts with
  :class:`~repro.errors.SerializationError` (either on seeing a
  committed ``xmax`` after taking the row lock, or by lock-wait
  timeout, the deadlock-detection fallback).
- **Rollback restores everything** — heap, live counts and every
  spatial index structure are bit-identical after ROLLBACK, whatever
  mix of inserts/updates/deletes the transaction ran.
- **Serial-replay equivalence** — replaying only the *committed*
  transactions serially (in commit order) on a fresh database produces
  the same table state as the interleaved run. (Holds here because
  committed transactions have disjoint write sets under
  first-updater-wins and the workload's writes don't read.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbapi import OperationalError, ProgrammingError, connect
from repro.engines import Database
from repro.errors import SerializationError, TransientError



def _db(index_kind: str | None = "rtree", rows: int = 20) -> Database:
    db = Database("greenwood")
    db.execute("CREATE TABLE pts (gid INTEGER, name TEXT, g GEOMETRY)")
    db.insert_rows(
        "pts",
        [(i, f"seed{i}", f"POINT({i} {i % 5})") for i in range(rows)],
    )
    if index_kind is not None:
        db.execute(
            f"CREATE SPATIAL INDEX idx_pts ON pts (g) USING {index_kind}"
        )
    return db


def _cursor(db: Database):
    return connect(database=db).cursor()


def _count(cursor) -> int:
    cursor.execute("SELECT COUNT(*) FROM pts")
    return cursor.fetchone()[0]


class TestSnapshotVisibility:
    def test_reader_opened_before_commit_sees_old_state(self):
        db = _db()
        reader, writer = _cursor(db), _cursor(db)
        reader.execute("BEGIN")
        assert _count(reader) == 20
        writer.execute("BEGIN")
        writer.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (100, "new", "POINT(3 3)")
        )
        writer.execute("COMMIT")
        # the commit landed after the reader's snapshot: invisible
        assert _count(reader) == 20
        reader.execute("COMMIT")
        assert _count(reader) == 21

    def test_reader_opened_after_commit_sees_new_state(self):
        db = _db()
        reader, writer = _cursor(db), _cursor(db)
        writer.execute("BEGIN")
        writer.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (100, "new", "POINT(3 3)")
        )
        writer.execute("COMMIT")
        reader.execute("BEGIN")
        assert _count(reader) == 21
        reader.execute("COMMIT")

    def test_uncommitted_writes_invisible_to_others(self):
        db = _db()
        reader, writer = _cursor(db), _cursor(db)
        writer.execute("BEGIN")
        writer.execute("DELETE FROM pts WHERE gid = 0")
        writer.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (100, "new", "POINT(3 3)")
        )
        # auto-commit reader: fresh single-statement snapshot, writer
        # still in flight -> sees none of it (readers never block)
        assert _count(reader) == 20
        reader.execute("SELECT name FROM pts WHERE gid = 0")
        assert reader.fetchall() == [("seed0",)]
        writer.execute("ROLLBACK")

    def test_own_writes_visible_within_transaction(self):
        db = _db()
        cur = _cursor(db)
        cur.execute("BEGIN")
        cur.execute("UPDATE pts SET name = ? WHERE gid = 1", ("mine",))
        cur.execute("DELETE FROM pts WHERE gid = 2")
        cur.execute("SELECT name FROM pts WHERE gid = 1")
        assert cur.fetchall() == [("mine",)]
        assert _count(cur) == 19
        cur.execute("ROLLBACK")
        cur.execute("SELECT name FROM pts WHERE gid = 1")
        assert cur.fetchall() == [("seed1",)]

    def test_update_invisible_through_index_probe(self):
        db = _db(index_kind="rtree")
        reader, writer = _cursor(db), _cursor(db)
        reader.execute("BEGIN")
        writer.execute("BEGIN")
        writer.execute(
            "UPDATE pts SET g = ? WHERE gid = 1", ("POINT(500 500)",)
        )
        writer.execute("COMMIT")
        # index probe near the new location: the reader's snapshot
        # predates the move, so the relocated version must stay hidden
        reader.execute(
            "SELECT COUNT(*) FROM pts WHERE ST_Intersects(g, "
            "ST_MakeEnvelope(499, 499, 501, 501))"
        )
        assert reader.fetchone()[0] == 0
        reader.execute("COMMIT")
        reader.execute(
            "SELECT COUNT(*) FROM pts WHERE ST_Intersects(g, "
            "ST_MakeEnvelope(499, 499, 501, 501))"
        )
        assert reader.fetchone()[0] == 1


class TestFirstUpdaterWins:
    def test_loser_aborts_after_winner_commits(self):
        db = _db()
        a, b = _cursor(db), _cursor(db)
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE pts SET name = ? WHERE gid = 1", ("a-wins",))
        a.execute("COMMIT")
        # the row lock is free again, but gid=1 carries a committed
        # xmax that b's snapshot cannot see: b lost the race
        with pytest.raises(SerializationError):
            b.execute("UPDATE pts SET name = ? WHERE gid = 1", ("b-loses",))
        b.execute("ROLLBACK")
        b.execute("SELECT name FROM pts WHERE gid = 1")
        assert b.fetchall() == [("a-wins",)]

    def test_lock_wait_timeout_is_serialization_error(self):
        db = _db()
        db.txn.lock_timeout = 0.02
        a, b = _cursor(db), _cursor(db)
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE pts SET name = ? WHERE gid = 1", ("held",))
        with pytest.raises(SerializationError):
            b.execute("UPDATE pts SET name = ? WHERE gid = 1", ("blocked",))
        # the winner is unaffected by the loser's abort
        a.execute("COMMIT")
        b.execute("ROLLBACK")
        b.execute("SELECT name FROM pts WHERE gid = 1")
        assert b.fetchall() == [("held",)]

    def test_delete_delete_conflict(self):
        db = _db()
        a, b = _cursor(db), _cursor(db)
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("DELETE FROM pts WHERE gid = 3")
        a.execute("COMMIT")
        with pytest.raises(SerializationError):
            b.execute("DELETE FROM pts WHERE gid = 3")
        b.execute("ROLLBACK")

    def test_conflict_metrics_move(self):
        db = _db()
        before = db.txn.conflict_counter().value
        a, b = _cursor(db), _cursor(db)
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE pts SET name = ? WHERE gid = 1", ("x",))
        a.execute("COMMIT")
        with pytest.raises(SerializationError):
            b.execute("UPDATE pts SET name = ? WHERE gid = 1", ("y",))
        b.execute("ROLLBACK")
        assert db.txn.conflict_counter().value == before + 1

    def test_serialization_error_is_transient_operational(self):
        # the harness retry path keys on TransientError; PEP 249 callers
        # catch OperationalError
        assert issubclass(SerializationError, TransientError)
        assert issubclass(SerializationError, OperationalError)


class TestTransactionControl:
    def test_nested_begin_rejected(self):
        cur = _cursor(_db(index_kind=None))
        cur.execute("BEGIN")
        with pytest.raises(ProgrammingError):
            cur.execute("BEGIN")
        cur.execute("ROLLBACK")

    def test_commit_rollback_without_txn_are_noops(self):
        conn = connect(database=_db(index_kind=None))
        cur = conn.cursor()
        cur.execute("COMMIT")
        cur.execute("ROLLBACK")
        conn.commit()
        conn.rollback()
        assert conn.in_transaction is False

    def test_syntax_variants_parse(self):
        cur = _cursor(_db(index_kind=None))
        for begin, end in (
            ("BEGIN", "COMMIT"),
            ("BEGIN WORK", "COMMIT WORK"),
            ("BEGIN TRANSACTION", "END"),
            ("START TRANSACTION", "END TRANSACTION"),
        ):
            cur.execute(begin)
            cur.execute(end)

    def test_connection_close_rolls_back(self):
        db = _db(index_kind=None)
        conn = connect(database=db)
        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute("DELETE FROM pts WHERE gid = 0")
        conn.close()
        assert db.txn.active_count == 0
        assert _cursor(db).execute(
            "SELECT COUNT(*) FROM pts"
        ).fetchone()[0] == 20

    def test_guard_deadline_aborts_transaction_cleanly(self):
        db = _db()
        conn = connect(database=db)
        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (100, "doomed", "POINT(1 1)")
        )
        with pytest.raises(OperationalError):
            cur.execute("SELECT COUNT(*) FROM pts", timeout=1e-9)
        # the deadline mid-transaction rolled the whole transaction back
        assert conn.in_transaction is False
        assert db.txn.active_count == 0
        assert _count(cur) == 20
        # and the connection is immediately usable again
        cur.execute("BEGIN")
        cur.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (101, "kept", "POINT(1 1)")
        )
        cur.execute("COMMIT")
        assert _count(cur) == 21

    def test_implicit_txn_for_autocommit_write_alongside_open_txn(self):
        db = _db()
        reader, writer = _cursor(db), _cursor(db)
        reader.execute("BEGIN")
        assert _count(reader) == 20
        # auto-commit write while the reader's snapshot is open: the
        # engine versions it via an implicit single-statement txn
        writer.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (100, "auto", "POINT(2 2)")
        )
        assert _count(reader) == 20
        assert _count(writer) == 21
        reader.execute("COMMIT")
        assert _count(reader) == 21


def _index_state(db: Database):
    entries = list(db.catalog.indexes())
    return {
        entry.name: sorted(
            (item_id, env.min_x, env.min_y, env.max_x, env.max_y)
            for item_id, env in entry.index.items()
        )
        for entry in entries
    }


def _heap_state(db: Database):
    # unallocated version arrays are equivalent to all-frozen ones, so
    # normalize: rollback may leave the (all-zero) arrays allocated
    table = db.catalog.table("pts")
    n = len(table.rows)
    xmin = [0] * n if table._xmin is None else list(table._xmin)
    xmax = [0] * n if table._xmax is None else list(table._xmax)
    return (
        list(table.rows),
        table.live_count,
        xmin,
        xmax,
        table.mvcc_versions,
    )


@pytest.mark.parametrize("kind", ["rtree", "quadtree", "grid"])
class TestRollbackRestores:
    def test_rollback_is_bit_identical(self, kind):
        db = _db(index_kind=kind)
        cur = _cursor(db)
        before_heap = _heap_state(db)
        before_index = _index_state(db)
        cur.execute("BEGIN")
        cur.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (100, "n1", "POINT(7 7)")
        )
        cur.execute("UPDATE pts SET g = ? WHERE gid = 1", ("POINT(40 40)",))
        cur.execute("DELETE FROM pts WHERE gid = 2")
        cur.execute(
            "INSERT INTO pts VALUES (?, ?, ?)", (101, "n2", "POINT(8 8)")
        )
        cur.execute("ROLLBACK")
        assert _heap_state(db) == before_heap
        assert _index_state(db) == before_index
        # probes still agree with the heap after the rollback
        via_index = cur.execute(
            "SELECT COUNT(*) FROM pts WHERE ST_Intersects(g, "
            "ST_MakeEnvelope(-5, -5, 100, 100))"
        ).fetchone()[0]
        assert via_index == 20

    def test_commit_then_vacuum_keeps_index_consistent(self, kind):
        db = _db(index_kind=kind)
        cur = _cursor(db)
        cur.execute("BEGIN")
        cur.execute("DELETE FROM pts WHERE gid = 2")
        cur.execute("UPDATE pts SET g = ? WHERE gid = 3", ("POINT(60 60)",))
        cur.execute("COMMIT")
        # no other txns: garbage flushed, superseded versions vacuumed
        assert db.txn.pending_garbage == 0
        table = db.catalog.table("pts")
        live = {row_id for row_id, _row in table.scan()}
        for state in _index_state(db).values():
            assert {entry[0] for entry in state} <= live
        count = cur.execute("SELECT COUNT(*) FROM pts").fetchone()[0]
        via_index = cur.execute(
            "SELECT COUNT(*) FROM pts WHERE ST_Intersects(g, "
            "ST_MakeEnvelope(-5, -5, 100, 100))"
        ).fetchone()[0]
        assert count == 19
        assert via_index == 19


# -- serial-replay equivalence (hypothesis) ---------------------------------

_SEED_GIDS = tuple(range(6))


@st.composite
def _txn_ops(draw, session_id: int):
    count = draw(st.integers(min_value=1, max_value=3))
    ops = []
    for k in range(count):
        kind = draw(st.sampled_from(("update", "delete", "insert")))
        if kind == "update":
            gid = draw(st.sampled_from(_SEED_GIDS))
            ops.append((
                "UPDATE pts SET name = ? WHERE gid = ?",
                (f"s{session_id}o{k}", gid),
            ))
        elif kind == "delete":
            gid = draw(st.sampled_from(_SEED_GIDS))
            ops.append(("DELETE FROM pts WHERE gid = ?", (gid,)))
        else:
            gid = 100 * session_id + k
            ops.append((
                "INSERT INTO pts VALUES (?, ?, ?)",
                (gid, f"i{session_id}o{k}", f"POINT({gid % 50} {gid % 7})"),
            ))
    return ops


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_serial_replay_of_committed_txns_matches(data):
    """Interleaved SI execution == serial replay of the committed txns.

    Updates/deletes target only the seeded rows and inserts use disjoint
    per-session gid ranges, so committed transactions have disjoint
    write sets (first-updater-wins aborts any overlap) and their effects
    commute — the regime where snapshot isolation is serializable.
    """
    ops = {1: data.draw(_txn_ops(1)), 2: data.draw(_txn_ops(2))}
    # interleaving: a shuffle of which session issues its next statement
    schedule = data.draw(
        st.permutations([1] * len(ops[1]) + [2] * len(ops[2]))
    )
    commit_order = data.draw(st.permutations([1, 2]))

    db = _db(index_kind="rtree", rows=len(_SEED_GIDS))
    db.txn.lock_timeout = 0.01  # single-threaded: blocked == deadlocked
    cursors = {1: _cursor(db), 2: _cursor(db)}
    status = {1: "active", 2: "active"}
    pending = {1: list(ops[1]), 2: list(ops[2])}
    for sid in (1, 2):
        cursors[sid].execute("BEGIN")
    for sid in schedule:
        if status[sid] != "active":
            pending[sid].pop(0)
            continue
        sql, params = pending[sid].pop(0)
        try:
            cursors[sid].execute(sql, params)
        except SerializationError:
            cursors[sid].execute("ROLLBACK")
            status[sid] = "aborted"
    committed = []
    for sid in commit_order:
        if status[sid] == "active":
            cursors[sid].execute("COMMIT")
            status[sid] = "committed"
            committed.append(sid)

    replay = _db(index_kind="rtree", rows=len(_SEED_GIDS))
    cur = _cursor(replay)
    for sid in committed:
        cur.execute("BEGIN")
        for sql, params in ops[sid]:
            cur.execute(sql, params)
        cur.execute("COMMIT")

    probe = "SELECT gid, name FROM pts ORDER BY gid, name"
    assert db.execute(probe).rows == replay.execute(probe).rows
    # both databases drained their version garbage
    assert db.txn.active_count == 0 and db.txn.pending_garbage == 0
