"""Execution guardrails: deadlines, cancellation and memory budgets.

The deadline matrix runs the paper's dominant workload shape (a spatial
join) under a ~0 deadline through every join strategy on every engine
profile: the trip must be prompt (bounded wall time), typed
(:class:`QueryTimeoutError`), and side-effect free (the cached plan
answers correctly on the very next run).
"""

from __future__ import annotations

import time

import pytest

import repro.dbapi as dbapi
from repro.dbapi import connect
from repro.errors import (
    MemoryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.guard import CHECK_EVERY, CancelToken, ExecutionGuard, Guardrails

JOIN_SQL = (
    "SELECT COUNT(*) FROM arealm a, counties c "
    "WHERE ST_Intersects(a.geom, c.geom)"
)
STRATEGIES = ("inlj", "tree", "pbsm", "nlj")
#: a tripped deadline must surface well before a full join would finish
WALL_BOUND_SECONDS = 10.0


@pytest.fixture(params=["greenwood", "bluestem", "ironbark"])
def any_db(request, greenwood_db, bluestem_db, ironbark_db):
    return {
        "greenwood": greenwood_db,
        "bluestem": bluestem_db,
        "ironbark": ironbark_db,
    }[request.param]


class TestExecutionGuard:
    def test_first_tick_checks_immediately(self):
        guard = ExecutionGuard(timeout=0.0)
        with pytest.raises(QueryTimeoutError):
            guard.tick()

    def test_check_amortised_to_window(self):
        guard = ExecutionGuard(timeout=0.0)
        guard._countdown = CHECK_EVERY  # past the initial immediate check
        for _ in range(CHECK_EVERY - 1):
            guard.tick()
        with pytest.raises(QueryTimeoutError):
            guard.tick()

    def test_deadline_message_counts_rows(self):
        guard = ExecutionGuard(timeout=0.0)
        with pytest.raises(QueryTimeoutError, match="deadline after 3 rows"):
            guard.tick(3)

    def test_cancellation_wins_over_deadline(self):
        token = CancelToken()
        token.cancel("user hit ^C")
        guard = ExecutionGuard(timeout=0.0, cancel=token)
        with pytest.raises(QueryCancelledError, match="user hit"):
            guard.tick()

    def test_cancel_token_is_sticky(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.cancel("again")
        assert token.cancelled

    def test_reserve_row_budget(self):
        guard = ExecutionGuard(max_rows=10)
        guard.reserve(10, sample=(1, 2))
        with pytest.raises(MemoryBudgetError, match="row budget"):
            guard.reserve(1, sample=(1, 2))

    def test_reserve_byte_budget(self):
        guard = ExecutionGuard(max_bytes=64)
        with pytest.raises(MemoryBudgetError, match="byte budget"):
            guard.reserve(100, sample=tuple(range(8)))

    def test_unlimited_guard_reserves_freely(self):
        guard = ExecutionGuard()
        guard.reserve(10_000, sample=(1,) * 16)
        guard.tick(10_000)
        assert guard.rows_processed > 10_000


class TestGuardrailsConfig:
    def test_start_returns_none_when_everything_off(self):
        assert Guardrails().start() is None

    def test_start_arms_any_single_limit(self):
        assert Guardrails(timeout=5.0).start() is not None
        assert Guardrails().start(max_rows=5) is not None
        assert Guardrails().start(cancel=CancelToken()) is not None

    def test_per_call_overrides_beat_defaults(self):
        merged = Guardrails(timeout=5.0, max_rows=100).merged(timeout=1.0)
        assert merged.timeout == 1.0
        assert merged.max_rows == 100

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Guardrails(timeout=-1.0)
        with pytest.raises(ValueError):
            Guardrails().start(max_rows=-5)


class TestDeadlineMatrix:
    """~0 deadline x 4 join strategies x 3 engine profiles."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deadline_trips_promptly_and_cleanly(self, any_db, strategy):
        db = any_db
        baseline = db.execute(JOIN_SQL).scalar()
        db.join_strategy = strategy
        try:
            start = time.perf_counter()
            with pytest.raises(QueryTimeoutError):
                db.execute(JOIN_SQL, timeout=1e-9)
            assert time.perf_counter() - start < WALL_BOUND_SECONDS
            # the plan cache must not be poisoned by the aborted run:
            # the same (cached) plan answers correctly immediately after
            assert db.execute(JOIN_SQL).scalar() == baseline
        finally:
            db.join_strategy = "auto"

    def test_timeout_counter_moves(self, greenwood_db):
        db = greenwood_db
        counter = db.obs.metrics.counter("query_timeouts_total")
        before = counter.value
        with pytest.raises(QueryTimeoutError):
            db.execute(JOIN_SQL, timeout=1e-9)
        assert counter.value == before + 1


class TestCancellation:
    def test_pre_cancelled_token_stops_the_query(self, greenwood_db):
        token = CancelToken()
        token.cancel("test shutdown")
        with pytest.raises(QueryCancelledError, match="test shutdown"):
            greenwood_db.execute(JOIN_SQL, cancel=token)

    def test_cancellation_counter_moves(self, greenwood_db):
        db = greenwood_db
        counter = db.obs.metrics.counter("query_cancellations_total")
        before = counter.value
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            db.execute(JOIN_SQL, cancel=token)
        assert counter.value == before + 1


class TestMemoryBudget:
    def test_materialising_join_trips_row_budget(self, greenwood_db):
        db = greenwood_db
        db.join_strategy = "pbsm"
        try:
            with pytest.raises(MemoryBudgetError):
                db.execute(JOIN_SQL, max_rows=8)
        finally:
            db.join_strategy = "auto"

    def test_byte_budget_trips(self, greenwood_db):
        db = greenwood_db
        db.join_strategy = "nlj"
        try:
            with pytest.raises(MemoryBudgetError):
                db.execute(JOIN_SQL, max_bytes=512)
        finally:
            db.join_strategy = "auto"

    def test_budget_counter_moves(self, greenwood_db):
        db = greenwood_db
        counter = db.obs.metrics.counter("memory_budget_trips_total")
        before = counter.value
        db.join_strategy = "pbsm"
        try:
            with pytest.raises(MemoryBudgetError):
                db.execute(JOIN_SQL, max_rows=1)
        finally:
            db.join_strategy = "auto"
        assert counter.value == before + 1


class TestDbapiIntegration:
    def test_timeout_is_operational_error(self, greenwood_db):
        conn = connect(database=greenwood_db)
        try:
            with pytest.raises(dbapi.OperationalError):
                conn.cursor().execute(JOIN_SQL, timeout=1e-9)
        finally:
            conn.close()

    def test_connection_default_timeout_applies(self, greenwood_db):
        conn = connect(database=greenwood_db, timeout=1e-9)
        try:
            with pytest.raises(QueryTimeoutError):
                conn.cursor().execute(JOIN_SQL)
        finally:
            conn.close()

    def test_per_call_override_beats_connection_default(self, greenwood_db):
        conn = connect(database=greenwood_db, timeout=1e-9)
        try:
            cursor = conn.cursor()
            cursor.execute(JOIN_SQL, timeout=300.0)
            assert cursor.fetchone() is not None
        finally:
            conn.close()

    def test_database_default_guardrails(self, tiny_dataset):
        from repro.engines import Database

        db = Database("greenwood")
        tiny_dataset.load_into(db, create_indexes=True)
        db.guardrails.timeout = 1e-9
        with pytest.raises(QueryTimeoutError):
            db.execute(JOIN_SQL)
        db.guardrails.timeout = None
        assert db.execute(JOIN_SQL).scalar() is not None
