"""Smoke tests: every example script runs to completion.

The slower examples are exercised at a reduced scale via their CLI flags;
quickstart has no knobs and runs as-is.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "overlapping parks" in out
    assert "Riverside" in out
    assert "exact geometry says: False" in out


def test_geocoding_service_class_direct():
    """Exercise the GeocodingService class at tiny scale, not via CLI."""
    sys.path.insert(0, str(EXAMPLES))
    try:
        from geocoding_service import GeocodingService
    finally:
        sys.path.remove(str(EXAMPLES))
    from repro.datagen import generate
    from repro.dbapi import connect
    from repro.engines import Database

    dataset = generate(seed=3, scale=0.1)
    db = Database("greenwood")
    dataset.load_into(db)
    service = GeocodingService(connect(database=db))

    edges = dataset.layer("edges")
    row = next(
        r for r in edges.rows
        if r[edges.columns.index("road_class")] == "local"
    )
    name = row[edges.columns.index("fullname")]
    fips = row[edges.columns.index("county_fips")]
    house = row[edges.columns.index("lfromadd")] + 2
    location = service.geocode(name, house, fips)
    assert location is not None
    # reverse geocoding near that point should find a road
    result = service.reverse_geocode(location[0], location[1])
    assert result is not None
    address, dist = result
    assert dist < 100.0


@pytest.fixture(scope="module")
def geocoding_out():
    return _run("geocoding_service.py")


def test_geocoding_service_script(geocoding_out):
    assert "forward geocoding:" in geocoding_out
    assert "reverse geocoding:" in geocoding_out
    assert "->" in geocoding_out


def test_flood_risk_script():
    out = _run("flood_risk_analysis.py", "--scale", "0.15")
    assert "parcels at risk" in out
    assert "flooded" in out


def test_compare_engines_script():
    out = _run("compare_engines.py", "--scale", "0.1")
    assert "greenwood" in out
    assert "not supported" in out  # bluestem's convex hull gap
