"""Slotted pages, the disk manager, and the LRU buffer pool."""

from __future__ import annotations

import os

import pytest

from repro.errors import DumpCorruptionError, EngineError
from repro.obs.waits import IO_PAGE_READ, IO_PAGE_WRITE, WAITS
from repro.storage.pages import (
    PAGE_SIZE,
    BufferManager,
    DiskManager,
    HeapStore,
    Page,
)


class TestPage:
    def test_insert_read_roundtrip(self):
        page = Page(0)
        slots = [page.insert(f"payload-{i}".encode()) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"payload-{i}".encode()
        assert page.slot_count == 5

    def test_delete_marks_dead_and_records_skips(self):
        page = Page(0)
        a = page.insert(b"alpha")
        b = page.insert(b"beta")
        page.delete(a)
        assert page.read(a) is None
        assert page.read(b) == b"beta"
        assert [(s, p) for s, p in page.records()] == [(b, b"beta")]

    def test_insert_returns_none_when_full(self):
        page = Page(0, page_size=256)
        inserted = 0
        while page.insert(b"x" * 40) is not None:
            inserted += 1
        assert inserted > 0
        assert page.insert(b"x" * 40) is None
        # existing payloads are untouched
        assert page.read(0) == b"x" * 40

    def test_replace_in_place_and_relocated(self):
        page = Page(0)
        slot = page.insert(b"a" * 32)
        assert page.replace(slot, b"b" * 16)  # fits in old extent
        assert page.read(slot) == b"b" * 16
        assert page.replace(slot, b"c" * 64)  # goes to fresh free space
        assert page.read(slot) == b"c" * 64

    def test_replace_reports_no_room(self):
        page = Page(0, page_size=128)
        slot = page.insert(b"tiny")
        assert page.replace(slot, b"z" * 200) is False
        assert page.read(slot) == b"tiny"

    def test_lsn_setter_is_monotonic(self):
        page = Page(0)
        page.lsn = 10
        page.lsn = 3
        assert page.lsn == 10
        page.lsn = 42
        assert page.lsn == 42

    def test_all_zero_bytes_is_an_empty_page(self):
        # allocated (zero-filled) but never flushed: not corruption
        page = Page(7, bytes(PAGE_SIZE))
        assert page.slot_count == 0
        assert page.insert(b"works") == 0

    def test_corrupt_header_rejected(self):
        data = bytearray(bytes(PAGE_SIZE))
        # plausible-looking header with free_end pointing into the header
        import struct

        struct.pack_into("<QHH", data, 0, 5, 1, 4)
        with pytest.raises(DumpCorruptionError, match="corrupt header"):
            Page(0, bytes(data))

    def test_wrong_size_rejected(self):
        with pytest.raises(EngineError, match="expected"):
            Page(0, b"short")


class TestDiskManager:
    def test_allocate_write_read_roundtrip(self, tmp_path):
        disk = DiskManager(str(tmp_path / "pages.db"))
        pid = disk.allocate()
        page = Page(pid)
        page.insert(b"hello")
        disk.write_page(pid, bytes(page.data))
        again = Page(pid, disk.read_page(pid))
        assert again.read(0) == b"hello"
        assert disk.pages_written == 1
        assert disk.pages_read == 1
        disk.close()

    def test_torn_final_page_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "pages.db")
        disk = DiskManager(path)
        pid = disk.allocate()
        page = Page(pid)
        page.insert(b"whole")
        disk.write_page(pid, bytes(page.data))
        disk.close()
        with open(path, "ab") as f:
            f.write(b"torn-half-page")  # crash mid page write
        disk = DiskManager(path)
        assert disk.page_count == 1
        assert Page(pid, disk.read_page(pid)).read(0) == b"whole"
        disk.close()

    def test_out_of_range_read_rejected(self, tmp_path):
        disk = DiskManager(str(tmp_path / "pages.db"))
        with pytest.raises(EngineError, match="out of range"):
            disk.read_page(0)
        disk.close()


def _pool(tmp_path, capacity=3):
    disk = DiskManager(str(tmp_path / "pages.db"))
    return disk, BufferManager(disk, capacity=capacity)


class TestBufferManager:
    def test_hits_misses_and_ratio(self, tmp_path):
        disk, pool = _pool(tmp_path)
        page = pool.new_page()
        pool.unpin(page.page_id, dirty=True)
        pool.fetch(page.page_id)
        pool.unpin(page.page_id)
        assert pool.hits == 1
        assert pool.misses == 0
        assert pool.hit_ratio == 1.0
        disk.close()

    def test_lru_eviction_writes_dirty_pages_back(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=2)
        first = pool.new_page()
        first.insert(b"persisted-by-eviction")
        pool.unpin(first.page_id, dirty=True)
        for _ in range(2):  # force first out of the 2-frame pool
            page = pool.new_page()
            pool.unpin(page.page_id, dirty=True)
        assert pool.evictions >= 1
        # the evicted dirty frame reached disk and reads back
        refetched = pool.fetch(first.page_id)
        assert refetched.read(0) == b"persisted-by-eviction"
        pool.unpin(first.page_id)
        assert pool.misses >= 1
        disk.close()

    def test_all_pinned_pool_is_an_error(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=2)
        pool.new_page()
        pool.new_page()  # both stay pinned
        with pytest.raises(EngineError, match="exhausted"):
            pool.new_page()
        disk.close()

    def test_unpin_of_unpinned_frame_rejected(self, tmp_path):
        disk, pool = _pool(tmp_path)
        page = pool.new_page()
        pool.unpin(page.page_id)
        with pytest.raises(EngineError, match="not pinned"):
            pool.unpin(page.page_id)
        disk.close()

    def test_wal_barrier_runs_before_every_dirty_write(self, tmp_path):
        barrier_lsns = []
        disk = DiskManager(str(tmp_path / "pages.db"))
        pool = BufferManager(disk, capacity=4,
                             wal_barrier=barrier_lsns.append)
        page = pool.new_page()
        page.insert(b"row")
        page.lsn = 17
        pool.unpin(page.page_id, dirty=True)
        assert pool.flush_all() == 1
        assert barrier_lsns == [17]
        assert pool.dirty_count == 0
        disk.close()

    def test_page_io_wait_events_recorded(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=2)
        page = pool.new_page()
        page.insert(b"x")
        pool.unpin(page.page_id, dirty=True)
        WAITS.enable()
        WAITS.reset()
        try:
            pool.flush_all()
            # evict so the next fetch is a real disk read
            for _ in range(2):
                extra = pool.new_page()
                pool.unpin(extra.page_id, dirty=True)
            pool.fetch(page.page_id)
            pool.unpin(page.page_id)
            summary = WAITS.summary()
        finally:
            WAITS.disable()
            WAITS.reset()
        assert IO_PAGE_WRITE in summary
        assert IO_PAGE_READ in summary
        disk.close()


class TestHeapStore:
    def test_roundtrip_update_delete(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=8)
        heap = HeapStore(pool)
        heap.insert("t", 1, [1, "one"], lsn=1)
        heap.insert("t", 2, [2, "two"], lsn=2)
        assert heap.read("t", 1) == [1, "one"]
        assert heap.row_count("t") == 2
        heap.update("t", 1, [1, "uno"], lsn=3)
        assert heap.read("t", 1) == [1, "uno"]
        heap.delete("t", 2, lsn=4)
        assert heap.read("t", 2) is None
        assert not heap.has("t", 2)
        assert heap.row_count() == 1
        disk.close()

    def test_insert_is_idempotent_replace(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=8)
        heap = HeapStore(pool)
        heap.insert("t", 5, ["old"], lsn=1)
        heap.insert("t", 5, ["new"], lsn=2)  # replay of the same rid
        assert heap.read("t", 5) == ["new"]
        assert heap.row_count("t") == 1
        disk.close()

    def test_grown_row_relocates_across_pages(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=8)
        heap = HeapStore(pool)
        heap.insert("t", 1, ["small"], lsn=1)
        # rewrite larger than a whole page's free space minus the rest
        big = "y" * (PAGE_SIZE // 2)
        for rid in range(2, 8):
            heap.insert("t", rid, [big], lsn=rid)
        assert heap.read("t", 1) == ["small"]
        huge = "z" * (PAGE_SIZE // 2)
        heap.update("t", 1, [huge], lsn=10)
        assert heap.read("t", 1) == [huge]
        assert heap.row_count("t") == 7
        disk.close()

    def test_drop_table_removes_only_that_table(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=8)
        heap = HeapStore(pool)
        heap.insert("a", 1, ["a1"], lsn=1)
        heap.insert("b", 1, ["b1"], lsn=2)
        heap.drop_table("a", lsn=3)
        assert heap.row_count("a") == 0
        assert heap.read("b", 1) == ["b1"]
        disk.close()

    def test_adopt_from_disk_rebuilds_location_map(self, tmp_path):
        path = tmp_path / "pages.db"
        disk = DiskManager(str(path))
        pool = BufferManager(disk, capacity=8)
        heap = HeapStore(pool)
        for rid in range(20):
            heap.insert("t", rid, [rid, f"row-{rid}"], lsn=rid + 1)
        heap.delete("t", 3, lsn=30)
        pool.flush_all()
        disk.sync()
        disk.close()

        disk = DiskManager(str(path))
        pool = BufferManager(disk, capacity=8)
        fresh = HeapStore(pool)
        image = fresh.adopt_from_disk()
        assert set(image) == {"t"}
        assert set(image["t"]) == set(range(20)) - {3}
        assert image["t"][7] == [7, "row-7"]
        assert fresh.read("t", 7) == [7, "row-7"]
        disk.close()

    def test_oversized_row_rejected(self, tmp_path):
        disk, pool = _pool(tmp_path, capacity=4)
        heap = HeapStore(pool)
        with pytest.raises(EngineError, match="larger than a page"):
            heap.insert("t", 1, ["x" * (2 * PAGE_SIZE)], lsn=1)
        disk.close()
