"""Failure-injection tests: malformed input, mid-statement errors, and
parser fuzzing must never corrupt state or escape the error hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import Database
from repro.errors import ReproError, WkbParseError, WktParseError
from repro.geometry import Point, wkb_dumps, wkb_loads, wkt_loads


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute("CREATE TABLE t (id INTEGER, geom GEOMETRY)")
    database.execute("CREATE SPATIAL INDEX tix ON t (geom)")
    database.execute("INSERT INTO t VALUES (1, ST_Point(0, 0))")
    return database


class TestStatementAtomicity:
    def test_multirow_insert_failure_leaves_table_unchanged(self, db):
        before = db.execute("SELECT COUNT(*) FROM t").scalar()
        with pytest.raises(ReproError):
            db.execute(
                "INSERT INTO t VALUES "
                "(2, ST_Point(1, 1)), "
                "(3, ST_GeomFromText('GARBAGE')), "
                "(4, ST_Point(2, 2))"
            )
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == before

    def test_failed_insert_leaves_index_consistent(self, db):
        with pytest.raises(ReproError):
            db.execute(
                "INSERT INTO t VALUES (2, ST_Point(5, 5)), (3, 'GARBAGE')"
            )
        got = db.execute(
            "SELECT COUNT(*) FROM t "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(4, 4, 6, 6))"
        ).scalar()
        assert got == 0

    def test_type_error_in_multirow_insert_is_atomic(self, db):
        before = db.execute("SELECT COUNT(*) FROM t").scalar()
        with pytest.raises(ReproError):
            db.execute("INSERT INTO t VALUES (9, ST_Point(1, 1)), ('x', NULL)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == before


class TestErrorHierarchy:
    BAD_STATEMENTS = [
        "SELECT",                              # truncated
        "SELECT * FROM",                       # missing table
        "SELECT * FROM nosuch",                # unknown table
        "SELECT nocol FROM t",                 # unknown column
        "SELECT ST_Nope(geom) FROM t",         # unknown function
        "FLY ME TO THE MOON",                  # not SQL
        "INSERT INTO t VALUES ()",             # empty row
        "CREATE TABLE t (id INTEGER)",         # duplicate table
        "SELECT id FROM t WHERE ST_Intersects(geom)",  # arity
        "SELECT * FROM t ORDER BY 99",         # position out of range
    ]

    @pytest.mark.parametrize("sql", BAD_STATEMENTS)
    def test_bad_statements_raise_repro_errors(self, db, sql):
        with pytest.raises(ReproError):
            db.execute(sql)

    def test_queries_still_work_after_errors(self, db):
        for sql in self.BAD_STATEMENTS:
            try:
                db.execute(sql)
            except ReproError:
                pass
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


class TestParserFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_wkb_loads_never_crashes_unexpectedly(self, blob):
        try:
            wkb_loads(blob)
        except ReproError:
            pass  # WkbParseError or GeometryError are the contract

    @given(st.binary(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_wkb_bitflips_detected_or_parse(self, noise):
        blob = bytearray(wkb_dumps(Point(1.5, -2.5)))
        for i, b in enumerate(noise):
            blob[b % len(blob)] ^= (i + 1) % 256
        try:
            geom = wkb_loads(bytes(blob))
        except ReproError:
            return
        # if it still parses, it must be a structurally sound geometry
        assert geom.num_points >= 1

    @given(st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_wkt_loads_never_crashes_unexpectedly(self, text):
        try:
            wkt_loads(text)
        except ReproError:
            pass

    @given(st.text(alphabet="SELECT FROM WHERE()*,'0123456789abc=<>?;", max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_sql_parser_never_crashes_unexpectedly(self, sql):
        from repro.sql.parser import parse

        try:
            parse(sql)
        except ReproError:
            pass
