"""Tests for database dump/restore."""

import io

import pytest

from repro.engines import Database
from repro.errors import EngineError
from repro.storage.dump import (
    dump_database,
    load_database,
    restore_database,
    save_database,
)


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute(
        "CREATE TABLE features (id INTEGER, name TEXT, score REAL, "
        "geom GEOMETRY)"
    )
    database.execute(
        "INSERT INTO features VALUES "
        "(1, 'alpha', 0.5, ST_Point(1, 2)), "
        "(2, NULL, NULL, ST_GeomFromText("
        "'POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))')), "
        "(3, 'gamma', -1.25, NULL)"
    )
    database.execute("CREATE SPATIAL INDEX fidx ON features (geom)")
    return database


def _roundtrip(db, profile=None):
    buffer = io.StringIO()
    dump_database(db, buffer)
    buffer.seek(0)
    return restore_database(buffer, profile=profile)


class TestRoundTrip:
    def test_rows_survive(self, db):
        restored = _roundtrip(db)
        got = restored.execute(
            "SELECT id, name, score FROM features ORDER BY id"
        )
        assert got.rows == [(1, "alpha", 0.5), (2, None, None),
                            (3, "gamma", -1.25)]

    def test_geometries_survive_exactly(self, db):
        restored = _roundtrip(db)
        original = db.execute(
            "SELECT ST_AsText(geom) FROM features WHERE id = 2"
        ).scalar()
        copied = restored.execute(
            "SELECT ST_AsText(geom) FROM features WHERE id = 2"
        ).scalar()
        assert original == copied

    def test_indexes_rebuilt(self, db):
        restored = _roundtrip(db)
        entry = restored.catalog.index_for("features", "geom")
        assert entry is not None
        assert entry.index.kind == "rtree"
        got = restored.execute(
            "SELECT id FROM features "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(0.5, 1.5, 1.5, 2.5)) "
            "ORDER BY id"
        )
        assert got.rows == [(1,), (2,)]  # the point and the 4x4 polygon

    def test_profile_preserved_and_overridable(self, db):
        assert _roundtrip(db).profile.name == "greenwood"
        assert _roundtrip(db, profile="ironbark").profile.name == "ironbark"

    def test_deleted_rows_not_dumped(self, db):
        db.execute("DELETE FROM features WHERE id = 1")
        restored = _roundtrip(db)
        assert restored.execute("SELECT COUNT(*) FROM features").scalar() == 2

    def test_file_roundtrip(self, db, tmp_path):
        path = str(tmp_path / "state.jpdump")
        save_database(db, path)
        restored = load_database(path)
        assert restored.execute("SELECT COUNT(*) FROM features").scalar() == 3

    def test_dataset_roundtrip(self, tiny_dataset):
        db = Database("greenwood")
        tiny_dataset.load_into(db)
        restored = _roundtrip(db)
        for name in tiny_dataset.layers:
            original = db.execute(f"SELECT COUNT(*) FROM {name}").scalar()
            copied = restored.execute(f"SELECT COUNT(*) FROM {name}").scalar()
            assert original == copied


class TestMalformedDumps:
    def test_empty(self):
        with pytest.raises(EngineError):
            restore_database(io.StringIO(""))

    def test_wrong_format(self):
        stream = io.StringIO('{"type": "header", "format": "pg_dump"}\n')
        with pytest.raises(EngineError):
            restore_database(stream)

    def test_wrong_version(self):
        stream = io.StringIO(
            '{"type": "header", "format": "jackpine-dump", "version": 99}\n'
        )
        with pytest.raises(EngineError):
            restore_database(stream)

    def test_garbage_line(self):
        stream = io.StringIO(
            '{"type": "header", "format": "jackpine-dump", "version": 1}\n'
            "not json\n"
        )
        with pytest.raises(EngineError):
            restore_database(stream)

    def test_unknown_record(self):
        stream = io.StringIO(
            '{"type": "header", "format": "jackpine-dump", "version": 1}\n'
            '{"type": "mystery"}\n'
        )
        with pytest.raises(EngineError):
            restore_database(stream)
