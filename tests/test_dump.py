"""Tests for database dump/restore."""

import io
import json

import pytest

from repro.engines import Database
from repro.errors import DumpCorruptionError, EngineError
from repro.storage.dump import (
    RestoreReport,
    dump_database,
    load_database,
    recover_database,
    restore_database,
    save_database,
)


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute(
        "CREATE TABLE features (id INTEGER, name TEXT, score REAL, "
        "geom GEOMETRY)"
    )
    database.execute(
        "INSERT INTO features VALUES "
        "(1, 'alpha', 0.5, ST_Point(1, 2)), "
        "(2, NULL, NULL, ST_GeomFromText("
        "'POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))')), "
        "(3, 'gamma', -1.25, NULL)"
    )
    database.execute("CREATE SPATIAL INDEX fidx ON features (geom)")
    return database


def _roundtrip(db, profile=None):
    buffer = io.StringIO()
    dump_database(db, buffer)
    buffer.seek(0)
    return restore_database(buffer, profile=profile)


class TestRoundTrip:
    def test_rows_survive(self, db):
        restored = _roundtrip(db)
        got = restored.execute(
            "SELECT id, name, score FROM features ORDER BY id"
        )
        assert got.rows == [(1, "alpha", 0.5), (2, None, None),
                            (3, "gamma", -1.25)]

    def test_geometries_survive_exactly(self, db):
        restored = _roundtrip(db)
        original = db.execute(
            "SELECT ST_AsText(geom) FROM features WHERE id = 2"
        ).scalar()
        copied = restored.execute(
            "SELECT ST_AsText(geom) FROM features WHERE id = 2"
        ).scalar()
        assert original == copied

    def test_indexes_rebuilt(self, db):
        restored = _roundtrip(db)
        entry = restored.catalog.index_for("features", "geom")
        assert entry is not None
        assert entry.index.kind == "rtree"
        got = restored.execute(
            "SELECT id FROM features "
            "WHERE ST_Intersects(geom, ST_MakeEnvelope(0.5, 1.5, 1.5, 2.5)) "
            "ORDER BY id"
        )
        assert got.rows == [(1,), (2,)]  # the point and the 4x4 polygon

    def test_profile_preserved_and_overridable(self, db):
        assert _roundtrip(db).profile.name == "greenwood"
        assert _roundtrip(db, profile="ironbark").profile.name == "ironbark"

    def test_deleted_rows_not_dumped(self, db):
        db.execute("DELETE FROM features WHERE id = 1")
        restored = _roundtrip(db)
        assert restored.execute("SELECT COUNT(*) FROM features").scalar() == 2

    def test_file_roundtrip(self, db, tmp_path):
        path = str(tmp_path / "state.jpdump")
        save_database(db, path)
        restored = load_database(path)
        assert restored.execute("SELECT COUNT(*) FROM features").scalar() == 3

    def test_dataset_roundtrip(self, tiny_dataset):
        db = Database("greenwood")
        tiny_dataset.load_into(db)
        restored = _roundtrip(db)
        for name in tiny_dataset.layers:
            original = db.execute(f"SELECT COUNT(*) FROM {name}").scalar()
            copied = restored.execute(f"SELECT COUNT(*) FROM {name}").scalar()
            assert original == copied


class TestMalformedDumps:
    def test_empty(self):
        with pytest.raises(EngineError):
            restore_database(io.StringIO(""))

    def test_wrong_format(self):
        stream = io.StringIO('{"type": "header", "format": "pg_dump"}\n')
        with pytest.raises(EngineError):
            restore_database(stream)

    def test_wrong_version(self):
        stream = io.StringIO(
            '{"type": "header", "format": "jackpine-dump", "version": 99}\n'
        )
        with pytest.raises(EngineError):
            restore_database(stream)

    def test_garbage_line(self):
        stream = io.StringIO(
            '{"type": "header", "format": "jackpine-dump", "version": 1}\n'
            "not json\n"
        )
        with pytest.raises(EngineError):
            restore_database(stream)

    def test_unknown_record(self):
        stream = io.StringIO(
            '{"type": "header", "format": "jackpine-dump", "version": 1}\n'
            '{"type": "mystery"}\n'
        )
        with pytest.raises(EngineError):
            restore_database(stream)


class TestCrashSafety:
    """v2 format: checksums, footer, atomic save, torn-tail recovery."""

    def _dump_text(self, rows=600):
        db = Database("greenwood")
        db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
        db.insert_rows(
            "pts", [(i, f"POINT({i} {i})") for i in range(rows)]
        )
        db.execute("CREATE SPATIAL INDEX idx_pts ON pts (g)")
        buf = io.StringIO()
        dump_database(db, buf)
        return buf.getvalue()

    def test_records_are_checksummed_and_footed(self):
        lines = self._dump_text().strip().splitlines()
        header, records = lines[0], lines[1:]
        assert '"type": "header"' in header
        for line in records:
            prefix, _, payload = line.partition(" ")
            assert len(prefix) == 8
            int(prefix, 16)  # must be hex
        assert '"type": "footer"' in records[-1]

    def test_bitflip_detected_strictly(self):
        lines = self._dump_text().splitlines()
        prefix, _, payload = lines[2].partition(" ")  # first rows record
        flipped = payload.replace("a", "b", 1)
        assert flipped != payload
        lines[2] = f"{prefix} {flipped}"
        corrupted = "\n".join(lines) + "\n"
        with pytest.raises(DumpCorruptionError, match="checksum mismatch"):
            restore_database(io.StringIO(corrupted))

    def test_truncated_dump_recovers_preceding_batches(self):
        # 600 rows = one full 512-row batch + one partial batch; tear the
        # second batch mid-line and the first must survive recovery
        lines = self._dump_text().splitlines()
        torn = "\n".join(lines[:3] + [lines[3][:-25]]) + "\n"
        with pytest.raises(DumpCorruptionError):
            restore_database(io.StringIO(torn))
        report = RestoreReport()
        db = restore_database(io.StringIO(torn), recover=True, report=report)
        assert db.execute("SELECT COUNT(*) FROM pts").scalar() == 512
        assert report.torn
        assert report.torn_line == 4
        assert "truncated torn tail" in report.describe()

    def test_truncation_at_record_boundary_detected_by_footer(self):
        lines = self._dump_text().splitlines()
        no_footer = "\n".join(lines[:-1]) + "\n"
        with pytest.raises(DumpCorruptionError, match="missing footer"):
            restore_database(io.StringIO(no_footer))
        report = RestoreReport()
        db = restore_database(
            io.StringIO(no_footer), recover=True, report=report
        )
        # all records were complete; only the footer is gone
        assert db.execute("SELECT COUNT(*) FROM pts").scalar() == 600
        assert report.torn
        assert report.indexes_rebuilt == ["idx_pts"]

    def test_recover_database_file_roundtrip(self, tmp_path):
        db = Database("greenwood")
        db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
        db.insert_rows(
            "pts", [(i, f"POINT({i} {i})") for i in range(600)]
        )
        path = tmp_path / "data.dump"
        save_database(db, str(path))
        # tear the file mid-way through the second row batch: the first
        # (full 512-row) batch must survive recovery
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])
        restored, report = recover_database(str(path))
        assert report.torn
        assert restored.execute("SELECT COUNT(*) FROM pts").scalar() == 512
        assert restored.restore_report is report

    def test_save_is_atomic_under_write_faults(self, tmp_path):
        from repro.faults import FAULTS

        db = Database("greenwood")
        db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
        db.insert_rows("pts", [(1, "POINT(1 1)")])
        path = tmp_path / "data.dump"
        save_database(db, str(path))
        good = path.read_text()
        db.insert_rows("pts", [(2, "POINT(2 2)")])
        FAULTS.arm("dump.write", on_call=2, max_fires=1)
        try:
            with pytest.raises(EngineError):
                save_database(db, str(path))
        finally:
            FAULTS.disarm_all()
        # the old file is intact and no temp files were left behind
        assert path.read_text() == good
        assert [p.name for p in tmp_path.iterdir()] == ["data.dump"]

    def test_v1_dumps_without_checksums_still_restore(self):
        v1_lines = [
            json.dumps(
                {"type": "header", "format": "jackpine-dump",
                 "version": 1, "profile": "greenwood"}
            ),
            json.dumps(
                {"type": "table", "name": "t",
                 "columns": [["id", "INTEGER"]]}
            ),
            json.dumps({"type": "rows", "table": "t", "rows": [[1], [2]]}),
        ]
        db = restore_database(io.StringIO("\n".join(v1_lines) + "\n"))
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        assert db.restore_report.version == 1
        assert not db.restore_report.torn

    def test_footer_count_mismatch_detected(self):
        import zlib as _zlib

        def rec(obj):
            payload = json.dumps(obj)
            crc = _zlib.crc32(payload.encode()) & 0xFFFFFFFF
            return f"{crc:08x} {payload}"

        lines = [
            json.dumps({"type": "header", "format": "jackpine-dump",
                        "version": 2, "profile": "greenwood"}),
            rec({"type": "table", "name": "t",
                 "columns": [["id", "INTEGER"]]}),
            rec({"type": "footer", "records": 5}),
        ]
        with pytest.raises(DumpCorruptionError, match="footer expects"):
            restore_database(io.StringIO("\n".join(lines) + "\n"))

    def test_dump_read_fault_site_fires(self):
        from repro.errors import InjectedFaultError
        from repro.faults import injected

        text = self._dump_text(rows=5)
        with injected("dump.read", on_call=1):
            with pytest.raises(InjectedFaultError):
                restore_database(io.StringIO(text))
