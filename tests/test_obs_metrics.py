"""Metrics registry tests: counters, gauges, histogram percentiles,
parent/child scoping, Prometheus exposition and the Stats bridge."""

import math

import pytest

from repro.engines import Database
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    percentile_of,
)


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry(parent=None)
        c = registry.counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        # same name returns the same metric
        assert registry.counter("requests") is c

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry(parent=None)
        g = registry.gauge("depth")
        g.set(3.5)
        assert g.value == 3.5
        g.inc(0.5)
        assert g.value == 4.0


class TestHistogram:
    def test_counts_and_sum(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.counts == [1, 1, 1, 1]  # one overflow
        assert h.min == 0.05
        assert h.max == 50.0

    def test_percentiles_interpolate(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        p50 = h.percentile(50.0)
        assert 1.0 <= p50 <= 2.0
        assert h.p95 <= 2.0
        assert h.p99 <= 2.0

    def test_empty_is_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.percentile(50.0))
        assert math.isnan(h.mean)

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5
        assert DEFAULT_BUCKETS[-1] >= 10.0

    def test_rejects_bad_percentile(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(123.0)


class TestScoping:
    def test_child_forwards_to_parent(self):
        parent = MetricsRegistry(parent=None)
        child_a = MetricsRegistry(parent=parent)
        child_b = MetricsRegistry(parent=parent)
        child_a.counter("queries").inc(2)
        child_b.counter("queries").inc(3)
        assert child_a.counter("queries").value == 2
        assert child_b.counter("queries").value == 3
        assert parent.counter("queries").value == 5

    def test_histogram_forwards(self):
        parent = MetricsRegistry(parent=None)
        child = MetricsRegistry(parent=parent)
        child.histogram("lat").observe(0.5)
        assert parent.histogram("lat").count == 1

    def test_database_registry_chains_to_global(self):
        from repro.obs import metrics as m

        before = m.GLOBAL.counter("queries_total").value
        db = Database("greenwood")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.obs.enable_metrics()
        db.execute("SELECT COUNT(*) FROM t")
        assert db.obs.metrics.counter("queries_total").value == 1
        assert m.GLOBAL.counter("queries_total").value == before + 1


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry(parent=None)
        registry.counter("queries_total", "statements").inc(7)
        registry.gauge("pool_size").set(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render()
        assert "# TYPE jackpine_queries_total counter" in text
        assert "jackpine_queries_total 7" in text
        assert "jackpine_pool_size 3" in text
        assert '# TYPE jackpine_lat histogram' in text
        assert 'jackpine_lat_bucket{le="0.1"} 1' in text
        assert 'jackpine_lat_bucket{le="+Inf"} 1' in text
        assert "jackpine_lat_count 1" in text
        assert 'quantile="0.95"' in text

    def test_stats_binding_is_live(self):
        db = Database("greenwood")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("SELECT COUNT(*) FROM t")
        text = db.obs.metrics.render()
        assert 'jackpine_engine_rows_scanned{scope="greenwood"} 3' in text
        db.execute("SELECT COUNT(*) FROM t")
        assert 'rows_scanned{scope="greenwood"} 6' in db.obs.metrics.render()

    def test_snapshot_view(self):
        registry = MetricsRegistry(parent=None)
        registry.counter("a").inc()
        registry.histogram("h").observe(0.2)
        snap = registry.snapshot()
        assert snap["a"] == 1
        assert snap["h"]["count"] == 1


class TestPercentileOf:
    def test_exact_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile_of(samples, 50.0) == 3.0
        assert percentile_of(samples, 0.0) == 1.0
        assert percentile_of(samples, 100.0) == 5.0
        assert percentile_of(samples, 25.0) == 2.0

    def test_single_sample(self):
        assert percentile_of([7.0], 95.0) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile_of([], 50.0))

    def test_query_timing_percentiles(self):
        from repro.core.stats import QueryTiming

        timing = QueryTiming("q")
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            timing.record(value)
        assert timing.percentile(50.0) == pytest.approx(0.3)
        assert timing.p95 == pytest.approx(0.48)
        assert timing.p99 == pytest.approx(0.496)
        assert timing.p50 == timing.median
