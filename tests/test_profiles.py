"""Tests for engine capability profiles: MBR vs exact semantics, the
full-matrix refinement path, unsupported feature sets, index defaults."""

import pytest

from repro.engines import Database, get_profile
from repro.engines.profiles import (
    BLUESTEM,
    GREENWOOD,
    IRONBARK,
    PROFILES,
    _matrix_predicate,
    _mbr_predicate,
)
from repro.errors import UnsupportedFeatureError
from repro.geometry import LineString, Point, Polygon, wkt_loads

TRIANGLE = Polygon([(0, 0), (10, 0), (0, 10)])
NEAR_CORNER = Point(9, 9)  # inside the MBR, outside the triangle


class TestRegistry:
    def test_three_profiles(self):
        assert set(PROFILES) == {"greenwood", "bluestem", "ironbark"}

    def test_get_profile_case_insensitive(self):
        assert get_profile("GreenWood") is GREENWOOD

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            get_profile("oracle")

    def test_index_defaults(self):
        assert GREENWOOD.index_kind == "rtree"
        assert BLUESTEM.index_kind == "rtree"
        assert IRONBARK.index_kind == "quadtree"


class TestPredicateSemantics:
    def test_mbr_contains_overapproximates(self):
        assert _mbr_predicate("st_contains", TRIANGLE, NEAR_CORNER)
        assert not GREENWOOD.evaluate_predicate(
            "st_contains", TRIANGLE, NEAR_CORNER
        )
        assert not IRONBARK.evaluate_predicate(
            "st_contains", TRIANGLE, NEAR_CORNER
        )

    def test_mbr_intersects(self):
        assert BLUESTEM.evaluate_predicate(
            "st_intersects", TRIANGLE, NEAR_CORNER
        )

    def test_matrix_mode_matches_fast_mode(self):
        pairs = [
            (TRIANGLE, NEAR_CORNER),
            (TRIANGLE, Point(2, 2)),
            (TRIANGLE, Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])),
            (TRIANGLE, LineString([(-5, 5), (15, 5)])),
            (
                Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]),
                Polygon([(10, 0), (20, 0), (20, 10), (10, 10)]),
            ),
            (LineString([(0, 0), (10, 10)]), LineString([(0, 10), (10, 0)])),
        ]
        predicates = [
            "st_equals", "st_disjoint", "st_intersects", "st_touches",
            "st_crosses", "st_within", "st_contains", "st_overlaps",
            "st_covers", "st_coveredby",
        ]
        for a, b in pairs:
            for name in predicates:
                fast = GREENWOOD.evaluate_predicate(name, a, b)
                matrix = IRONBARK.evaluate_predicate(name, a, b)
                assert fast == matrix, f"{name} diverged on {a!r} vs {b!r}"

    def test_mbr_touches_definition(self):
        a = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        b = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        assert _mbr_predicate("st_touches", a, b)
        overlapping = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert not _mbr_predicate("st_touches", a, overlapping)

    def test_matrix_crosses_dimension_rules(self):
        line = LineString([(-5, 5), (15, 5)])
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert _matrix_predicate("st_crosses", line, square)
        assert _matrix_predicate("st_crosses", square, line)
        assert not _matrix_predicate("st_crosses", square, square)


class TestUnsupportedFeatures:
    def test_bluestem_rejects_predicates_it_lacks(self):
        with pytest.raises(UnsupportedFeatureError):
            BLUESTEM.evaluate_predicate("st_covers", TRIANGLE, NEAR_CORNER)

    def test_check_supported(self):
        GREENWOOD.check_supported("st_buffer")
        with pytest.raises(UnsupportedFeatureError):
            BLUESTEM.check_supported("st_convexhull")

    def test_engine_surfaces_unsupported_in_sql(self):
        db = Database("bluestem")
        db.execute("CREATE TABLE g (geom GEOMETRY)")
        db.execute("INSERT INTO g VALUES (ST_Point(1, 1))")
        with pytest.raises(UnsupportedFeatureError):
            db.execute("SELECT ST_Simplify(geom, 1) FROM g")


class TestAnswerDivergence:
    """The J-A1 ablation in miniature: same SQL, different answers."""

    SQL = "SELECT COUNT(*) FROM tri WHERE ST_Contains(geom, ST_Point(9, 9))"

    def _load(self, engine):
        db = Database(engine)
        db.execute("CREATE TABLE tri (id INTEGER, geom GEOMETRY)")
        db.execute(
            "INSERT INTO tri VALUES "
            "(1, ST_GeomFromText('POLYGON((0 0, 10 0, 0 10, 0 0))'))"
        )
        return db

    def test_exact_engines_agree(self):
        assert self._load("greenwood").execute(self.SQL).scalar() == 0
        assert self._load("ironbark").execute(self.SQL).scalar() == 0

    def test_mbr_engine_overcounts(self):
        assert self._load("bluestem").execute(self.SQL).scalar() == 1

    def test_divergence_survives_indexing(self):
        db = self._load("bluestem")
        db.execute("CREATE SPATIAL INDEX tidx ON tri (geom)")
        assert db.execute(self.SQL).scalar() == 1


class TestProfileIndexDefault:
    def test_create_index_uses_profile_kind(self):
        db = Database("ironbark")
        db.execute("CREATE TABLE g (geom GEOMETRY)")
        db.execute("INSERT INTO g VALUES (ST_Point(0, 0))")
        db.execute("CREATE SPATIAL INDEX gidx ON g (geom)")
        entry = db.catalog.index_for("g", "geom")
        assert entry.index.kind == "quadtree"

    def test_using_clause_overrides(self):
        db = Database("greenwood")
        db.execute("CREATE TABLE g (geom GEOMETRY)")
        db.execute("CREATE SPATIAL INDEX gidx ON g (geom) USING grid")
        entry = db.catalog.index_for("g", "geom")
        assert entry.index.kind == "grid"
