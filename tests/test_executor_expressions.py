"""Unit tests for compiled expression semantics: three-valued logic,
NULL propagation, LIKE, the envelope operator, function caching, and
plan-operator behaviours not covered by the end-to-end SQL tests."""

import pytest

from repro.engines import Database
from repro.errors import SqlPlanError


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute("CREATE TABLE v (i INTEGER, r REAL, s TEXT, g GEOMETRY)")
    database.execute(
        "INSERT INTO v VALUES "
        "(1, 1.5, 'abc', ST_Point(0, 0)), "
        "(2, NULL, 'a%c', NULL), "
        "(NULL, 2.5, NULL, ST_Point(5, 5))"
    )
    return database


def scalar(db, expr, where=None):
    sql = f"SELECT {expr}"
    if where:
        sql += f" FROM v WHERE {where}"
    result = db.execute(sql)
    return result.rows[0][0] if result.rows else None


class TestNullSemantics:
    def test_arithmetic_propagates_null(self, db):
        assert scalar(db, "1 + NULL") is None
        assert scalar(db, "NULL * 3") is None
        assert scalar(db, "-i", "i IS NULL AND r = 2.5") is None

    def test_comparison_with_null_is_unknown(self, db):
        # WHERE NULL = NULL keeps no rows
        got = db.execute("SELECT COUNT(*) FROM v WHERE i = NULL")
        assert got.scalar() == 0

    def test_three_valued_and(self, db):
        # false AND unknown = false; true AND unknown = unknown (filtered)
        got = db.execute("SELECT COUNT(*) FROM v WHERE i = 1 AND r = NULL")
        assert got.scalar() == 0
        got = db.execute(
            "SELECT COUNT(*) FROM v WHERE 1 = 2 AND r = NULL"
        )
        assert got.scalar() == 0

    def test_three_valued_or(self, db):
        # true OR unknown = true
        got = db.execute("SELECT COUNT(*) FROM v WHERE i = 1 OR r = NULL")
        assert got.scalar() == 1

    def test_not_null_is_null(self, db):
        got = db.execute("SELECT COUNT(*) FROM v WHERE NOT (r = NULL)")
        assert got.scalar() == 0

    def test_concat_null(self, db):
        assert scalar(db, "'a' || NULL") is None


class TestLike:
    def test_percent(self, db):
        assert scalar(db, "'hello' LIKE 'he%'") is True
        assert scalar(db, "'hello' LIKE '%lo'") is True
        assert scalar(db, "'hello' LIKE '%ell%'") is True
        assert scalar(db, "'hello' LIKE 'he'") is False

    def test_underscore(self, db):
        assert scalar(db, "'cat' LIKE 'c_t'") is True
        assert scalar(db, "'cart' LIKE 'c_t'") is False

    def test_case_insensitive(self, db):
        assert scalar(db, "'HELLO' LIKE 'hello'") is True

    def test_regex_chars_escaped(self, db):
        assert scalar(db, "'a.c' LIKE 'a.c'") is True
        assert scalar(db, "'abc' LIKE 'a.c'") is False

    def test_not_like(self, db):
        assert scalar(db, "'abc' NOT LIKE 'x%'") is True


class TestEnvelopeOperator:
    def test_overlapping(self, db):
        assert scalar(
            db,
            "ST_MakeEnvelope(0,0,2,2) && ST_MakeEnvelope(1,1,3,3)",
        ) is True

    def test_disjoint(self, db):
        assert scalar(
            db,
            "ST_MakeEnvelope(0,0,1,1) && ST_MakeEnvelope(5,5,6,6)",
        ) is False

    def test_null_operand(self, db):
        got = db.execute("SELECT COUNT(*) FROM v WHERE g && ST_Point(0, 0)")
        assert got.scalar() == 1  # NULL geometry row filtered out

    def test_non_geometry_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT 1 && 2")


class TestFunctionCache:
    def test_expensive_function_computed_once_per_argument(self, db):
        # same ST_Buffer on the same river geometry across a join: the
        # per-statement memo must collapse it to one computation
        db.execute("CREATE TABLE line (lid INTEGER, g GEOMETRY)")
        db.execute(
            "INSERT INTO line VALUES "
            "(1, ST_GeomFromText('LINESTRING(0 0, 100 0, 200 50)'))"
        )
        db.execute("CREATE TABLE pts (pid INTEGER, g GEOMETRY)")
        rows = ", ".join(f"({i}, ST_Point({i * 10}, 1))" for i in range(30))
        db.execute(f"INSERT INTO pts VALUES {rows}")

        calls = []
        registry = db.registry
        original_impl = registry.lookup("st_buffer")

        def counted_impl(g, r, qs=8):
            calls.append(1)
            return original_impl(g, r, qs)

        registry.register("st_buffer", counted_impl)
        try:
            db.execute(
                "SELECT COUNT(*) FROM line l JOIN pts p "
                "ON ST_Intersects(p.g, ST_Buffer(l.g, 5, 4))"
            )
        finally:
            registry.register("st_buffer", original_impl)
        assert len(calls) == 1

    def test_cache_does_not_leak_between_statements(self, db):
        first = db.execute("SELECT ST_Area(ST_Buffer(ST_Point(0,0), 10))")
        second = db.execute("SELECT ST_Area(ST_Buffer(ST_Point(0,0), 10))")
        assert first.scalar() == second.scalar()


class TestPlanShapes:
    def test_explain_filter_refine(self, db):
        db.execute("CREATE TABLE geoms (g GEOMETRY)")
        db.execute("INSERT INTO geoms VALUES (ST_Point(1, 1))")
        db.execute("CREATE SPATIAL INDEX gx ON geoms (g)")
        plan = db.explain(
            "SELECT COUNT(*) FROM geoms "
            "WHERE ST_Intersects(g, ST_MakeEnvelope(0, 0, 2, 2))"
        )
        # filter step (IndexScan) below, refinement (Filter) above
        assert plan.index("Filter") < plan.index("IndexScan")

    def test_limit_rejects_bad_values(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("SELECT i FROM v LIMIT ?", (-1,))
        with pytest.raises(SqlPlanError):
            db.execute("SELECT i FROM v LIMIT ?", ("ten",))

    def test_between_and_in_null(self, db):
        assert scalar(db, "NULL BETWEEN 1 AND 2") is None
        assert scalar(db, "NULL IN (1, 2)") is None

    def test_order_by_mixed_types_stable(self, db):
        got = db.execute("SELECT s FROM v ORDER BY s")
        # NULL first, then strings lexicographically
        assert got.rows == [(None,), ("a%c",), ("abc",)]

    def test_params_out_of_range(self, db):
        with pytest.raises(IndexError):
            db.execute("SELECT ? ", ())
