"""Property-based tests: every index implementation must agree with the
linear-scan oracle on arbitrary envelope sets and query rectangles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Envelope
from repro.index import INDEX_KINDS, LinearScanIndex

ordinate = st.integers(min_value=-100, max_value=100).map(float)


@st.composite
def envelopes(draw):
    x1, x2 = sorted((draw(ordinate), draw(ordinate)))
    y1, y2 = sorted((draw(ordinate), draw(ordinate)))
    return Envelope(x1, y1, x2, y2)


envelope_sets = st.lists(envelopes(), min_size=0, max_size=60)


@pytest.mark.parametrize("kind", sorted(set(INDEX_KINDS) - {"scan"}))
class TestAgainstOracle:
    @given(items=envelope_sets, query=envelopes())
    @settings(max_examples=50, deadline=None)
    def test_search_matches_oracle(self, kind, items, query):
        oracle = LinearScanIndex()
        index = INDEX_KINDS[kind]()
        for i, env in enumerate(items):
            oracle.insert(i, env)
            index.insert(i, env)
        assert sorted(index.search(query)) == sorted(oracle.search(query))

    @given(items=envelope_sets, query=envelopes())
    @settings(max_examples=30, deadline=None)
    def test_bulk_load_matches_oracle(self, kind, items, query):
        enumerated = list(enumerate(items))
        oracle = LinearScanIndex()
        for i, env in enumerated:
            oracle.insert(i, env)
        index = INDEX_KINDS[kind].bulk_load(enumerated)
        assert sorted(index.search(query)) == sorted(oracle.search(query))

    @given(items=st.lists(envelopes(), min_size=1, max_size=40),
           point=st.tuples(ordinate, ordinate))
    @settings(max_examples=30, deadline=None)
    def test_nearest_distance_matches_oracle(self, kind, items, point):
        enumerated = list(enumerate(items))
        oracle = LinearScanIndex()
        for i, env in enumerated:
            oracle.insert(i, env)
        index = INDEX_KINDS[kind].bulk_load(enumerated)
        x, y = point
        got = index.nearest(x, y, 3)
        want = oracle.nearest(x, y, 3)
        dist = {i: env.distance_to_point(x, y) for i, env in enumerated}
        assert [round(dist[i], 9) for i in got] == [
            round(dist[i], 9) for i in want
        ]

    @given(items=st.lists(envelopes(), min_size=2, max_size=40),
           data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_remove_then_search(self, kind, items, data):
        enumerated = list(enumerate(items))
        index = INDEX_KINDS[kind].bulk_load(enumerated)
        victim = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        assert index.remove(victim, items[victim])
        survivors = [(i, e) for i, e in enumerated if i != victim]
        query = data.draw(envelopes())
        expected = sorted(i for i, e in survivors if e.intersects(query))
        assert sorted(index.search(query)) == expected
