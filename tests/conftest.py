"""Shared fixtures: canonical geometries, a small dataset, loaded engines."""

from __future__ import annotations

import pytest

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database
from repro.geometry import LineString, Point, Polygon


@pytest.fixture
def unit_square():
    return Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


@pytest.fixture
def shifted_square():
    return Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])


@pytest.fixture
def far_square():
    return Polygon([(100, 100), (110, 100), (110, 110), (100, 110)])


@pytest.fixture
def inner_square():
    return Polygon([(2, 2), (4, 2), (4, 4), (2, 4)])


@pytest.fixture
def donut():
    return Polygon(
        [(0, 0), (10, 0), (10, 10), (0, 10)],
        holes=[[(3, 3), (7, 3), (7, 7), (3, 7)]],
    )


@pytest.fixture
def diagonal_line():
    return LineString([(-5, -5), (15, 15)])


@pytest.fixture
def center_point():
    return Point(5, 5)


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate(seed=7, scale=0.1)


@pytest.fixture(scope="session")
def small_dataset():
    return generate(seed=42, scale=0.25)


def _loaded(engine: str, dataset):
    db = Database(engine)
    dataset.load_into(db, create_indexes=True)
    return db


@pytest.fixture(scope="session")
def greenwood_db(small_dataset):
    return _loaded("greenwood", small_dataset)


@pytest.fixture(scope="session")
def bluestem_db(small_dataset):
    return _loaded("bluestem", small_dataset)


@pytest.fixture(scope="session")
def ironbark_db(small_dataset):
    return _loaded("ironbark", small_dataset)


@pytest.fixture
def greenwood_conn(greenwood_db):
    conn = connect(database=greenwood_db)
    yield conn
    conn.close()


@pytest.fixture
def empty_db():
    return Database("greenwood")


@pytest.fixture
def empty_conn(empty_db):
    conn = connect(database=empty_db)
    yield conn
    conn.close()
