"""Unit tests for set-theoretic operations (intersection/union/difference/
symmetric difference) across geometry type combinations."""

import pytest

from repro.algorithms import (
    area,
    difference,
    intersection,
    sym_difference,
    union,
    union_all,
)
from repro.geometry import (
    EMPTY,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestArealIntersection:
    def test_overlapping_squares(self, unit_square, shifted_square):
        got = intersection(unit_square, shifted_square)
        assert got.area() == pytest.approx(25.0)

    def test_disjoint_is_empty(self, unit_square, far_square):
        assert intersection(unit_square, far_square).is_empty

    def test_contained_returns_inner(self, unit_square, inner_square):
        got = intersection(unit_square, inner_square)
        assert got.area() == pytest.approx(4.0)

    def test_identical_returns_same_area(self, unit_square):
        twin = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert intersection(unit_square, twin).area() == pytest.approx(100.0)

    def test_shared_edge_returns_line(self, unit_square):
        neighbour = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        got = intersection(unit_square, neighbour)
        assert got.dimension == 1
        assert got.length() == pytest.approx(10.0)

    def test_shared_corner_returns_point(self, unit_square):
        corner = Polygon([(10, 10), (20, 10), (20, 20), (10, 20)])
        got = intersection(unit_square, corner)
        assert isinstance(got, Point)
        assert got == Point(10, 10)

    def test_hole_punch(self, donut):
        # intersecting the donut with a square over the hole: only the rim
        probe = Polygon([(3, 3), (7, 3), (7, 7), (3, 7)])
        got = intersection(donut, probe)
        assert got.dimension <= 1  # hole interior contributes no area

    def test_concave_intersection(self):
        concave = Polygon([(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)])
        square = Polygon([(0, 6), (10, 6), (10, 12), (0, 12)])
        got = intersection(concave, square)
        # two triangular prongs survive above y=6
        assert isinstance(got, MultiPolygon)
        assert got.area() == pytest.approx(
            area(concave) - _area_below(concave, 6.0), rel=1e-6
        )


def _area_below(polygon, y):
    clip = Polygon([(-100, -100), (100, -100), (100, y), (-100, y)])
    return intersection(polygon, clip).area()


class TestArealUnion:
    def test_overlapping_squares(self, unit_square, shifted_square):
        assert union(unit_square, shifted_square).area() == pytest.approx(175.0)

    def test_disjoint_becomes_multipolygon(self, unit_square, far_square):
        got = union(unit_square, far_square)
        assert got.area() == pytest.approx(200.0)

    def test_adjacent_squares_merge(self, unit_square):
        neighbour = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        got = union(unit_square, neighbour)
        assert isinstance(got, Polygon)
        assert got.area() == pytest.approx(200.0)

    def test_contained_absorbed(self, unit_square, inner_square):
        got = union(unit_square, inner_square)
        assert got.area() == pytest.approx(100.0)

    def test_union_creating_hole(self):
        # a C-shape closed by a bar leaves an enclosed hole
        c_shape = Polygon(
            [(0, 0), (10, 0), (10, 2), (2, 2), (2, 8), (10, 8), (10, 10), (0, 10)]
        )
        bar = Polygon([(8, 2), (10, 2), (10, 8), (8, 8)])
        got = union(c_shape, bar)
        assert isinstance(got, Polygon)
        assert len(got.holes) == 1
        assert got.area() == pytest.approx(area(c_shape) + area(bar))

    def test_union_all_grid(self):
        tiles = [
            Polygon([(i, j), (i + 1, j), (i + 1, j + 1), (i, j + 1)])
            for i in range(3)
            for j in range(3)
        ]
        got = union_all(tiles)
        assert got.area() == pytest.approx(9.0)

    def test_union_all_empty_list(self):
        assert union_all([]).is_empty


class TestArealDifference:
    def test_overlap(self, unit_square, shifted_square):
        assert difference(unit_square, shifted_square).area() == pytest.approx(75.0)

    def test_disjoint_unchanged(self, unit_square, far_square):
        assert difference(unit_square, far_square) == unit_square

    def test_hole_creation(self, unit_square, inner_square):
        got = difference(unit_square, inner_square)
        assert isinstance(got, Polygon)
        assert len(got.holes) == 1
        assert got.area() == pytest.approx(96.0)

    def test_total_erasure_is_empty(self, unit_square):
        bigger = Polygon([(-1, -1), (11, -1), (11, 11), (-1, 11)])
        assert difference(unit_square, bigger).is_empty

    def test_split_into_two(self, unit_square):
        knife = Polygon([(4, -1), (6, -1), (6, 11), (4, 11)])
        got = difference(unit_square, knife)
        assert isinstance(got, MultiPolygon)
        assert len(got) == 2
        assert got.area() == pytest.approx(80.0)

    def test_subtracting_line_leaves_area(self, unit_square, diagonal_line):
        assert difference(unit_square, diagonal_line) == unit_square


class TestSymDifference:
    def test_overlap(self, unit_square, shifted_square):
        got = sym_difference(unit_square, shifted_square)
        assert got.area() == pytest.approx(150.0)

    def test_identical_is_empty(self, unit_square):
        twin = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert sym_difference(unit_square, twin).is_empty

    def test_area_identity(self, unit_square, shifted_square):
        # area(aΔb) == area(a) + area(b) - 2*area(a∩b)
        a_area = area(unit_square)
        b_area = area(shifted_square)
        i_area = intersection(unit_square, shifted_square).area()
        got = sym_difference(unit_square, shifted_square)
        assert got.area() == pytest.approx(a_area + b_area - 2 * i_area)


class TestLineOps:
    def test_line_polygon_intersection_clips(self, unit_square):
        line = LineString([(-5, 5), (15, 5)])
        got = intersection(line, unit_square)
        assert got.dimension == 1
        assert got.length() == pytest.approx(10.0)

    def test_line_polygon_intersection_multiple_pieces(self, donut):
        line = LineString([(-5, 5), (15, 5)])
        got = intersection(line, donut)
        # crosses rim, hole, rim: two pieces of 3 each
        assert got.length() == pytest.approx(6.0)

    def test_line_line_intersection_point(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        got = intersection(a, b)
        assert got == Point(5, 5)

    def test_line_line_collinear_overlap(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        got = intersection(a, b)
        assert got.dimension == 1
        assert got.length() == pytest.approx(5.0)

    def test_line_difference_polygon(self, unit_square):
        line = LineString([(-5, 5), (15, 5)])
        got = difference(line, unit_square)
        assert got.length() == pytest.approx(10.0)  # 5 on each side

    def test_line_union_merges(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        got = union(a, b)
        assert got.length() == pytest.approx(15.0)


class TestPointOps:
    def test_point_in_polygon_intersection(self, unit_square, center_point):
        assert intersection(center_point, unit_square) == center_point

    def test_point_outside_intersection_empty(self, unit_square):
        assert intersection(Point(99, 99), unit_square).is_empty

    def test_multipoint_clip(self, unit_square):
        mp = MultiPoint([(5, 5), (50, 50), (1, 1)])
        got = intersection(mp, unit_square)
        assert isinstance(got, MultiPoint)
        assert len(got) == 2

    def test_point_difference(self, unit_square):
        assert difference(Point(99, 99), unit_square) == Point(99, 99)
        assert difference(Point(5, 5), unit_square).is_empty

    def test_point_union_dedupes(self):
        got = union(MultiPoint([(0, 0), (1, 1)]), Point(0, 0))
        assert isinstance(got, MultiPoint)
        assert len(got) == 2


class TestMixedAndEmpty:
    def test_union_polygon_line_keeps_overhang(self, unit_square):
        line = LineString([(5, 5), (20, 5)])
        got = union(unit_square, line)
        assert isinstance(got, GeometryCollection)
        assert got.dimension == 2
        # only the part of the line outside the square survives separately
        lines = [g for g in got.geoms if g.dimension == 1]
        assert sum(l.length() for l in lines) == pytest.approx(10.0)

    def test_empty_operands(self, unit_square):
        assert intersection(EMPTY, unit_square).is_empty
        assert union(EMPTY, unit_square) == unit_square
        assert difference(unit_square, EMPTY) == unit_square
        assert sym_difference(EMPTY, unit_square) == unit_square
