"""Tests for the concurrent workload driver (repro.workload)."""

from __future__ import annotations

import json
import random

import pytest

from repro.datagen.tiger import generate
from repro.engines import Database
from repro.obs.telemetry import SCHEMA
from repro.workload import (
    MIXES,
    WorkloadConfig,
    get_mix,
    render_workload,
    run_workload,
    write_workload_telemetry,
)
from repro.workload.mixes import (
    INSERT_GID_BASE,
    MixedMix,
    ReadOnlyMix,
)


@pytest.fixture(scope="module")
def dataset():
    return generate(scale=0.05, seed=7)


@pytest.fixture(scope="module")
def database(dataset):
    db = Database("greenwood")
    dataset.load_into(db)
    return db


class TestConfig:
    def test_defaults_validate(self):
        WorkloadConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"duration": 0.0},
            {"mix": "nope"},
            {"mode": "sideways"},
            {"rate": 0.0, "mode": "open"},
            {"max_retries": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs).validate()


class TestMixes:
    def test_registry(self):
        assert set(MIXES) == {"read_only", "mixed", "browse"}

    def test_read_only_never_writes(self):
        mix = ReadOnlyMix()
        rng = random.Random(1)
        for _ in range(200):
            op = mix.next_operation(rng, client_id=0)
            assert op.kind == "read"
            assert len(op.statements) == 1
            assert op.statements[0][0].lstrip().startswith("SELECT")

    def test_mixed_stream_is_deterministic(self):
        a, b = MixedMix([1, 2, 3]), MixedMix([1, 2, 3])
        rng_a, rng_b = random.Random(9), random.Random(9)
        ops_a = [a.next_operation(rng_a, 0) for _ in range(50)]
        ops_b = [b.next_operation(rng_b, 0) for _ in range(50)]
        assert ops_a == ops_b

    def test_mixed_insert_gids_disjoint_across_clients(self):
        mix = MixedMix([1, 2, 3])
        gids = {0: set(), 1: set()}
        rng = random.Random(3)
        for client in (0, 1):
            for _ in range(100):
                op = mix.next_operation(rng, client)
                if op.label == "insert":
                    gids[client].add(op.statements[0][1][0])
        assert gids[0] and gids[1]
        assert not (gids[0] & gids[1])
        assert all(g >= INSERT_GID_BASE for g in gids[0] | gids[1])

    def test_get_mix_samples_hot_pool(self, database):
        mix = get_mix("mixed", database)
        assert mix.hot_gids
        with pytest.raises(ValueError):
            get_mix("bogus", database)


class TestRunWorkload:
    def test_read_only_round(self, database, dataset):
        config = WorkloadConfig(
            clients=2, duration=0.3, mix="read_only", seed=11
        )
        report = run_workload(config, database=database, dataset=dataset)
        assert len(report.clients) == 2
        assert report.total_ops > 0
        assert report.total_writes == 0
        assert report.total_errors == 0
        assert report.wall_seconds > 0
        assert report.queries_per_minute > 0

    def test_mixed_round_commits_and_contains_errors(self, database, dataset):
        config = WorkloadConfig(
            clients=2, duration=0.4, mix="mixed", seed=11, lock_timeout=0.05
        )
        report = run_workload(config, database=database, dataset=dataset)
        assert report.total_commits > 0
        assert report.total_errors == 0
        assert 0.0 <= report.abort_rate < 1.0
        # nothing leaked: the engine is back to a quiescent state
        assert database.txn.active_count == 0

    def test_open_loop_paces_arrivals(self, database, dataset):
        config = WorkloadConfig(
            clients=1, duration=0.5, mix="read_only", mode="open", rate=10.0,
            seed=5,
        )
        report = run_workload(config, database=database, dataset=dataset)
        # ~rate*duration arrivals; allow wide slack for scheduling jitter
        assert 1 <= report.total_ops <= 20

    def test_render_and_telemetry(self, database, dataset, tmp_path):
        config = WorkloadConfig(
            clients=2, duration=0.3, mix="mixed", seed=11
        )
        report = run_workload(config, database=database, dataset=dataset)
        text = render_workload(report)
        assert "clients" in text and "q/min" in text
        path = write_workload_telemetry(report, tmp_path)
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["schema"] == SCHEMA
        assert doc["config"]["mix"] == "mixed"
        assert len(doc["records"]) == 2
        assert all(r["suite"] == "workload" for r in doc["records"])
        assert sum(r["ops"] for r in doc["records"]) == report.total_ops
        assert doc["totals"]["ops"] == report.total_ops
