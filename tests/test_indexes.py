"""Unit tests for all spatial index implementations.

Every index must return exactly the envelope-intersecting items (the
linear scan is the oracle) and support insert/remove/nearest.
"""

import random

import pytest

from repro.geometry import Envelope
from repro.index import (
    GridIndex,
    INDEX_KINDS,
    LinearScanIndex,
    QuadTree,
    RTree,
    make_index,
)

ALL_KINDS = sorted(INDEX_KINDS)


def _random_items(n, seed=13, world=1000.0, max_extent=8.0):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        x = rng.uniform(0, world)
        y = rng.uniform(0, world)
        w = rng.uniform(0.01, max_extent)
        h = rng.uniform(0.01, max_extent)
        items.append((i, Envelope(x, y, x + w, y + h)))
    return items


def _oracle(items, query):
    return sorted(i for i, env in items if env.intersects(query))


@pytest.fixture(params=ALL_KINDS)
def index_kind(request):
    return request.param


class TestCorrectness:
    QUERIES = [
        Envelope(0, 0, 1000, 1000),      # everything
        Envelope(100, 100, 200, 200),    # region
        Envelope(500, 500, 500, 500),    # point probe
        Envelope(-50, -50, -1, -1),      # empty region
    ]

    def test_insert_then_search(self, index_kind):
        items = _random_items(500)
        index = make_index(index_kind)
        for i, env in items:
            index.insert(i, env)
        assert len(index) == 500
        for query in self.QUERIES:
            assert sorted(index.search(query)) == _oracle(items, query)

    def test_bulk_load_then_search(self, index_kind):
        items = _random_items(500, seed=99)
        index = INDEX_KINDS[index_kind].bulk_load(items)
        assert len(index) == 500
        for query in self.QUERIES:
            assert sorted(index.search(query)) == _oracle(items, query)

    def test_search_point_helper(self, index_kind):
        items = [(1, Envelope(0, 0, 10, 10)), (2, Envelope(20, 20, 30, 30))]
        index = INDEX_KINDS[index_kind].bulk_load(items)
        assert index.search_point(5, 5) == [1]
        assert index.search_point(15, 15) == []

    def test_duplicate_envelopes_allowed(self, index_kind):
        env = Envelope(0, 0, 1, 1)
        index = make_index(index_kind)
        for i in range(20):
            index.insert(i, env)
        assert sorted(index.search(env)) == list(range(20))

    def test_empty_index(self, index_kind):
        index = make_index(index_kind)
        assert len(index) == 0
        assert index.search(Envelope(0, 0, 1, 1)) == []
        assert index.nearest(0, 0, 3) == []


class TestRemoval:
    def test_remove_existing(self, index_kind):
        items = _random_items(200, seed=5)
        index = INDEX_KINDS[index_kind].bulk_load(items)
        victim_id, victim_env = items[77]
        assert index.remove(victim_id, victim_env)
        assert len(index) == 199
        assert victim_id not in index.search(victim_env)

    def test_remove_missing_returns_false(self, index_kind):
        index = INDEX_KINDS[index_kind].bulk_load(_random_items(50))
        assert not index.remove(999, Envelope(0, 0, 1, 1))

    def test_remove_all_then_reinsert(self, index_kind):
        items = _random_items(64, seed=3)
        index = INDEX_KINDS[index_kind].bulk_load(items)
        for i, env in items:
            assert index.remove(i, env)
        assert len(index) == 0
        for i, env in items:
            index.insert(i, env)
        query = Envelope(0, 0, 1000, 1000)
        assert sorted(index.search(query)) == _oracle(items, query)


class TestNearest:
    def test_matches_linear_scan(self, index_kind):
        items = _random_items(300, seed=21)
        oracle = LinearScanIndex()
        for i, env in items:
            oracle.insert(i, env)
        index = INDEX_KINDS[index_kind].bulk_load(items)
        for qx, qy in [(500, 500), (0, 0), (999, 1), (250, 750)]:
            got = index.nearest(qx, qy, 5)
            want = oracle.nearest(qx, qy, 5)
            # distances must match even if ties reorder ids
            dist = {i: env.distance_to_point(qx, qy) for i, env in items}
            assert [round(dist[i], 9) for i in got] == [
                round(dist[i], 9) for i in want
            ]

    def test_k_larger_than_size(self, index_kind):
        items = _random_items(5)
        index = INDEX_KINDS[index_kind].bulk_load(items)
        assert len(index.nearest(0, 0, 50)) == 5


class TestRTreeSpecifics:
    def test_split_keeps_invariants(self):
        tree = RTree(max_entries=4)
        items = _random_items(200, seed=8)
        for i, env in items:
            tree.insert(i, env)
        self._check_node(tree.root)

    def _check_node(self, node):
        if node.envelope is None:
            return
        for child, env in node.entries:
            assert node.envelope.contains(env)
            if not node.leaf:
                self._check_node(child)

    def test_bulk_load_height_is_logarithmic(self):
        tree = RTree.bulk_load(_random_items(1000), max_entries=16)
        assert tree.height <= 4

    def test_min_fanout_guard(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)


class TestGridSpecifics:
    def test_cell_size_guard(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0)

    def test_auto_cell_size(self):
        index = GridIndex.bulk_load(_random_items(100))
        assert index.cell_size > 0

    def test_large_item_spanning_cells(self):
        index = GridIndex(cell_size=10)
        index.insert(1, Envelope(0, 0, 100, 100))
        assert index.search(Envelope(95, 95, 96, 96)) == [1]
        assert len(index) == 1

    def test_nearest_faraway_query_with_tiny_cells_terminates(self):
        """Degenerate auto cell size (clustered points) plus a distant
        query point puts the certification radius ~1e10 cells out; the
        ring search must fall back to the full ranking instead of
        enumerating empty coordinates forever."""
        index = GridIndex.bulk_load([(0, Envelope(0, 0, 0, 0))])
        assert index.cell_size < 1e-6  # the degenerate regime
        assert index.nearest(100.0, 100.0, 3) == [0]
        # a window query spanning ~1e11 cells per axis must probe the
        # occupied cells, not enumerate the range
        assert index.search(Envelope(-100, -100, 100, 100)) == [0]
        assert index.remove(0, Envelope(0, 0, 0, 0))
        assert len(index) == 0
        many = GridIndex(cell_size=1e-9)
        for i in range(5):
            many.insert(i, Envelope(50 + i * 0.001, 50,
                                    50 + i * 0.001, 50))
        assert many.nearest(0.0, 0.0, 2) == [0, 1]


class TestQuadTreeSpecifics:
    def test_root_grows_for_outliers(self):
        tree = QuadTree()
        tree.insert(1, Envelope(0, 0, 1, 1))
        tree.insert(2, Envelope(1e6, 1e6, 1e6 + 1, 1e6 + 1))
        assert sorted(tree.search(Envelope(-1, -1, 2e6, 2e6))) == [1, 2]

    def test_straddlers_stay_at_inner_nodes(self):
        items = [(i, Envelope(499, 499, 501, 501)) for i in range(40)]
        tree = QuadTree.bulk_load(items, max_items=4)
        assert sorted(tree.search(Envelope(500, 500, 500, 500))) == [
            i for i in range(40)
        ]


class TestFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_index("btree")

    def test_all_kinds_constructible(self):
        for kind in ALL_KINDS:
            assert make_index(kind).kind == kind
