"""Harness resilience: per-query failure isolation, retries, outcomes.

The acceptance shape from the robustness work: a micro suite containing
a query that times out and a query that hits an injected fault still
completes end-to-end, reporting ``timeout`` / ``error`` outcomes beside
the normal measurements instead of crashing the run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.benchmark import BenchmarkConfig, Jackpine
from repro.core.macro.scenario import Scenario, ScenarioResult, WorkItem
from repro.core.query import BenchmarkQuery
from repro.core.stats import QueryTiming, backoff_delay, run_timed
from repro.dbapi import connect
from repro.engines import Database
from repro.errors import (
    QueryTimeoutError,
    TransientError,
    UnsupportedFeatureError,
)
from repro.faults import FAULTS
from repro.obs.metrics import GLOBAL


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def _query(query_id: str, sql: str) -> BenchmarkQuery:
    return BenchmarkQuery(query_id, query_id, "topology", sql)


class MiniBench(Jackpine):
    """A Jackpine with a custom, tiny micro suite."""

    def __init__(self, config, dataset, queries):
        super().__init__(config, dataset=dataset)
        self._queries = queries

    def micro_queries(self):
        return list(self._queries)


class TestRunTimed:
    def test_transient_fault_retried_with_success_timed(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientError("blip")
            return 42

        timing = QueryTiming("q")
        run_timed(timing, flaky, repeats=2, warmups=0, retries=2,
                  backoff_base=0.0, rng=random.Random(0))
        assert timing.outcome == "ok"
        assert timing.retries == 2
        assert timing.result_value == 42
        assert timing.runs == 2

    def test_retries_exhausted_becomes_error_outcome(self):
        def always_flaky():
            raise TransientError("blip")

        timing = QueryTiming("q")
        run_timed(timing, always_flaky, repeats=2, warmups=0, retries=1,
                  backoff_base=0.0)
        assert timing.outcome == "error"
        assert "blip" in timing.error
        assert timing.runs == 0

    def test_timeout_is_not_retried(self):
        calls = {"n": 0}

        def deadline():
            calls["n"] += 1
            raise QueryTimeoutError("too slow")

        timing = QueryTiming("q")
        run_timed(timing, deadline, repeats=3, warmups=0, retries=5,
                  backoff_base=0.0)
        assert timing.outcome == "timeout"
        assert calls["n"] == 1
        assert timing.supported  # a timeout is not a feature gap

    def test_unsupported_still_reported_as_feature_gap(self):
        def gap():
            raise UnsupportedFeatureError("no ST_Relate here")

        timing = QueryTiming("q")
        run_timed(timing, gap, repeats=2, warmups=0)
        assert timing.outcome == "not supported"
        assert not timing.supported

    def test_retry_counter_moves(self):
        before = GLOBAL.counter("harness_retries_total").value
        calls = {"n": 0}

        def flaky_once():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("blip")
            return 1

        run_timed(QueryTiming("q"), flaky_once, repeats=1, warmups=0,
                  retries=1, backoff_base=0.0)
        assert GLOBAL.counter("harness_retries_total").value == before + 1

    def test_backoff_windows_grow_and_cap(self):
        rng = random.Random(1)
        assert backoff_delay(0, base=0.1, cap=10.0, rng=rng) <= 0.1
        assert backoff_delay(3, base=0.1, cap=10.0, rng=rng) <= 0.8
        assert backoff_delay(50, base=0.1, cap=0.5, rng=rng) <= 0.5


class TestMicroSuiteEndToEnd:
    def test_timeout_and_fault_outcomes_beside_normal_results(
        self, tiny_dataset
    ):
        config = BenchmarkConfig(
            engines=["greenwood"], repeats=2, warmups=0,
            collect_traces=False,
        )
        queries = [
            _query("q.ok", "SELECT COUNT(*) FROM counties"),
            _query(
                "q.probe",
                "SELECT COUNT(*) FROM edges WHERE ST_Intersects("
                "geom, ST_MakeEnvelope(0, 0, 30000, 30000))",
            ),
        ]
        bench = MiniBench(config, tiny_dataset, queries)
        # one forced timeout: every index probe raises the deadline error
        FAULTS.arm("index.probe", probability=1.0,
                   error=QueryTimeoutError, seed=3)
        try:
            micro = bench.run_micro("greenwood")
        finally:
            FAULTS.disarm_all()
        assert micro["q.ok"].outcome == "ok"
        assert micro["q.ok"].runs == 2
        assert micro["q.probe"].outcome == "timeout"
        assert micro["q.probe"].error

    def test_injected_fault_retried_to_success(self, tiny_dataset):
        config = BenchmarkConfig(
            engines=["greenwood"], repeats=2, warmups=0, retries=3,
            collect_traces=False,
        )
        queries = [
            _query(
                "q.flaky",
                "SELECT COUNT(*) FROM edges WHERE ST_Intersects("
                "geom, ST_MakeEnvelope(0, 0, 30000, 30000))",
            ),
        ]
        bench = MiniBench(config, tiny_dataset, queries)
        FAULTS.arm("index.probe", on_call=2, max_fires=1)
        try:
            micro = bench.run_micro("greenwood")
        finally:
            FAULTS.disarm_all()
        timing = micro["q.flaky"]
        assert timing.outcome == "ok"
        assert timing.retries == 1
        assert timing.runs == 2

    def test_fault_without_retries_is_error_outcome(self, tiny_dataset):
        config = BenchmarkConfig(
            engines=["greenwood"], repeats=2, warmups=0,
            collect_traces=False,
        )
        queries = [
            _query("q.ok", "SELECT COUNT(*) FROM counties"),
            _query(
                "q.doomed",
                "SELECT COUNT(*) FROM edges WHERE ST_Intersects("
                "geom, ST_MakeEnvelope(0, 0, 30000, 30000))",
            ),
        ]
        bench = MiniBench(config, tiny_dataset, queries)
        FAULTS.arm("index.probe", probability=1.0, seed=5)
        try:
            micro = bench.run_micro("greenwood")
        finally:
            FAULTS.disarm_all()
        assert micro["q.ok"].outcome == "ok"
        assert micro["q.doomed"].outcome == "error"
        assert "injected fault" in micro["q.doomed"].error


class _ThreeStepScenario(Scenario):
    name = "three_steps"
    title = "Three steps"

    def build_workload(self, dataset, rng):
        yield WorkItem("ok", "SELECT COUNT(*) FROM pts")
        yield WorkItem("broken", "SELECT COUNT(*) FROM no_such_table")
        yield WorkItem("ok2", "SELECT COUNT(*) FROM pts")


class _InsertScenario(Scenario):
    name = "insert_step"
    title = "Insert step"

    def build_workload(self, dataset, rng):
        yield WorkItem(
            "insert", "INSERT INTO pts VALUES (?, ?)", (99, "POINT(9 9)")
        )


def _pts_connection():
    db = Database("greenwood")
    db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
    db.insert_rows("pts", [(i, f"POINT({i} {i})") for i in range(5)])
    return connect(database=db)


class TestScenarioIsolation:
    def test_failing_step_does_not_stop_the_scenario(self):
        conn = _pts_connection()
        result = _ThreeStepScenario().run(conn, dataset=None)
        assert [s.label for s in result.steps] == ["ok", "broken", "ok2"]
        assert result.executed == 2
        assert result.failed == 1
        assert result.steps[1].outcome == "error"
        assert result.steps[1].error

    def test_timeout_outcome_per_step(self):
        conn = _pts_connection()
        result = _ThreeStepScenario().run(conn, dataset=None, timeout=1e-9)
        outcomes = {s.outcome for s in result.steps}
        assert "timeout" in outcomes
        assert result.executed < 3

    def test_transient_step_retried(self):
        conn = _pts_connection()
        FAULTS.arm("storage.insert", on_call=1, max_fires=1)
        try:
            result = _InsertScenario().run(conn, dataset=None, retries=2)
        finally:
            FAULTS.disarm_all()
        (step,) = result.steps
        assert step.outcome == "ok"
        assert step.retries == 1

    def test_transient_step_without_retries_errors(self):
        conn = _pts_connection()
        FAULTS.arm("storage.insert", on_call=1, max_fires=1)
        try:
            result = _InsertScenario().run(conn, dataset=None)
        finally:
            FAULTS.disarm_all()
        (step,) = result.steps
        assert step.outcome == "error"
        assert result.failed == 1


class TestReportingSurfaces:
    def test_telemetry_record_carries_outcome_and_retries(self):
        from repro.obs.telemetry import timing_record

        timing = QueryTiming("q.t")
        timing.outcome = "timeout"
        timing.error = "query exceeded its 0.1s deadline"
        record = timing_record(timing, "greenwood", "micro.topology")
        assert record["outcome"] == "timeout"
        assert record["error"] == timing.error
        assert "p50" not in record

        ok = QueryTiming("q.ok", times=[0.01, 0.02])
        ok.retries = 2
        record = timing_record(ok, "greenwood", "micro.topology")
        assert record["outcome"] == "ok"
        assert record["retries"] == 2
        assert "p50" in record

    def test_scenario_record_counts_failures(self):
        from repro.core.macro.scenario import StepResult
        from repro.obs.telemetry import scenario_record

        scenario = ScenarioResult("s", "e")
        scenario.steps.append(StepResult("a", 0.1, 1))
        scenario.steps.append(
            StepResult("b", 0.1, 0, error="boom", outcome="error")
        )
        record = scenario_record(scenario, "greenwood")
        assert record["failed"] == 1
        assert record["steps"][1]["outcome"] == "error"
        assert record["steps"][1]["error"] == "boom"

    def test_report_renders_outcome_cells(self):
        from repro.core.benchmark import BenchmarkResult, EngineRun
        from repro.core.micro import topology_queries
        from repro.core.report import render_micro_topology

        config = BenchmarkConfig(engines=["greenwood"])
        result = BenchmarkResult(config=config, dataset_rows=0)
        run = EngineRun(engine="greenwood")
        for i, query in enumerate(topology_queries()):
            timing = QueryTiming(query.query_id)
            if i == 0:
                timing.outcome = "timeout"
                timing.error = "deadline"
            else:
                timing.record(0.001)
            run.micro[query.query_id] = timing
        result.runs["greenwood"] = run
        text = render_micro_topology(result)
        assert "timeout" in text

    def test_cli_accepts_timeout_and_retries_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--timeout", "2.5", "--retries", "3", "--suite", "micro"]
        )
        assert args.timeout == 2.5
        assert args.retries == 3
