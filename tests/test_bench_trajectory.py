"""Benchmark trajectory: record format, append semantics, and the
regression gate of ``jackpine bench --record/--compare``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.trajectory import (
    SCHEMA,
    collect_record,
    compare_against,
    load_trajectory,
    record_to,
    render_comparison,
    render_record,
)


def _fake_record(latency_scale: float = 1.0):
    return {
        "recorded_at": "2026-01-01T00:00:00Z",
        "engine": "greenwood",
        "seed": 42,
        "scale": 0.1,
        "repeats": 3,
        "join_median_seconds": {
            "arealm x areawater (overlaps)": 0.010 * latency_scale,
            "edges x areawater (crosses)": 0.020 * latency_scale,
        },
        "abort_rates": {"1": 0.0, "4": 0.05},
    }


def test_record_to_appends(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    record_to(path, _fake_record())
    document = load_trajectory(path)
    assert document["schema"] == SCHEMA
    assert len(document["records"]) == 1
    record_to(path, _fake_record(1.1))
    document = load_trajectory(path)
    assert len(document["records"]) == 2
    # the newest record is the appended one
    newest = document["records"][-1]
    assert newest["join_median_seconds"][
        "arealm x areawater (overlaps)"
    ] == pytest.approx(0.011)


def test_load_rejects_foreign_documents(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"schema": "something-else/1"}))
    with pytest.raises(ValueError):
        load_trajectory(str(path))


def test_compare_flags_regressions(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    record_to(path, _fake_record(1.0))
    # 10% slower: within the 25% default threshold
    ok = compare_against(path, _fake_record(1.10), threshold=0.25)
    assert ok.regressed == []
    # 60% slower: both joins regress
    bad = compare_against(path, _fake_record(1.60), threshold=0.25)
    assert len(bad.regressed) == 2
    text = render_comparison(bad)
    assert "REGRESSED" in text
    assert "abort rate" in text


def test_compare_ignores_unknown_joins(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    record_to(path, _fake_record())
    new = _fake_record()
    new["join_median_seconds"]["brand new join"] = 1.0
    comparison = compare_against(path, new)
    labels = [label for label, *_rest in comparison.joins]
    assert "brand new join" not in labels
    assert comparison.regressed == []


def test_compare_empty_trajectory_raises(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text(json.dumps({"schema": SCHEMA, "records": []}))
    with pytest.raises(ValueError):
        compare_against(str(path), _fake_record())


def test_render_record_lists_everything():
    text = render_record(_fake_record())
    assert "arealm x areawater (overlaps)" in text
    assert "abort rate" in text
    assert "greenwood" in text


def test_collect_record_measures():
    record = collect_record(
        engine="greenwood", seed=7, scale=0.05, repeats=1,
        clients_series=(1,), duration=0.2,
    )
    assert record["engine"] == "greenwood"
    assert record["recorded_at"]
    assert len(record["join_median_seconds"]) == 4
    assert all(v >= 0.0 for v in record["join_median_seconds"].values())
    assert set(record["abort_rates"]) == {"1"}
    json.dumps(record)


def test_cli_bench_requires_a_mode(capsys):
    assert main(["bench"]) == 2
    assert "bench" in capsys.readouterr().err


def test_committed_trajectory_is_valid():
    """The seeded BENCH_trajectory.json must stay loadable."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..",
                        "BENCH_trajectory.json")
    document = load_trajectory(path)
    assert document["records"], "seeded trajectory must hold >= 1 record"
    newest = document["records"][-1]
    assert newest["join_median_seconds"]
    assert newest["abort_rates"]
