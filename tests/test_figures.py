"""Tests for the CSV figure exporters."""

import csv
import os

import pytest

from repro.core import BenchmarkConfig, Jackpine
from repro.core import experiments as exp
from repro.core import figures


@pytest.fixture(scope="module")
def result(tiny_dataset):
    config = BenchmarkConfig(
        engines=["greenwood", "bluestem"],
        scale=0.1,
        repeats=1,
        warmups=0,
        scenarios=["geocoding"],
    )
    return Jackpine(config, dataset=tiny_dataset).run()


def _read(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


class TestBenchmarkExport:
    def test_export_all_writes_every_series(self, result, tmp_path):
        written = figures.export_all(result, str(tmp_path))
        names = {os.path.basename(p) for p in written}
        assert names == {
            "jf1_topology.csv", "jf2_analysis.csv",
            "jf3_macro.csv", "jf4_loading.csv",
        }
        for path in written:
            assert os.path.exists(path)

    def test_topology_csv_contents(self, result, tmp_path):
        figures.export_micro(result, str(tmp_path))
        rows = _read(tmp_path / "jf1_topology.csv")
        engines = {r["engine"] for r in rows}
        assert engines == {"greenwood", "bluestem"}
        touches = [
            r for r in rows
            if r["query_id"] == "topo.polygon_touches_polygon"
        ]
        assert len(touches) == 2
        for r in touches:
            assert float(r["median_s"]) > 0

    def test_unsupported_cells_marked(self, result, tmp_path):
        figures.export_micro(result, str(tmp_path))
        rows = _read(tmp_path / "jf2_analysis.csv")
        hull_bluestem = next(
            r for r in rows
            if r["query_id"] == "analysis.convex_hull"
            and r["engine"] == "bluestem"
        )
        assert hull_bluestem["supported"] == "0"
        assert hull_bluestem["median_s"] == ""

    def test_macro_csv(self, result, tmp_path):
        path = figures.export_macro(result, str(tmp_path))
        rows = _read(path)
        assert {r["scenario"] for r in rows} == {"geocoding"}
        greenwood = next(r for r in rows if r["engine"] == "greenwood")
        assert float(greenwood["queries_per_minute"]) > 0

    def test_loading_csv(self, result, tmp_path):
        path = figures.export_loading(result, str(tmp_path))
        rows = _read(path)
        layers = {r["layer"] for r in rows}
        assert "edges" in layers
        for r in rows:
            assert int(r["rows"]) >= 0
            assert float(r["insert_s"]) > 0


class TestExperimentExport:
    def test_index_effect_csv(self, tmp_path):
        result = exp.run_index_effect(seed=42, scale=0.1)
        path = figures.export_index_effect(result, str(tmp_path))
        rows = _read(path)
        assert {r["query"] for r in rows} == set(exp.INDEX_EFFECT_QUERIES)
        for r in rows:
            assert float(r["speedup"]) > 0

    def test_selectivity_csv(self, tmp_path):
        result = exp.run_selectivity_sweep(
            seed=42, scale=0.1, fractions=(0.1, 1.0)
        )
        path = figures.export_selectivity(result, str(tmp_path))
        rows = _read(path)
        assert len(rows) == 2 * 3  # fractions x engines

    def test_refinement_csv(self, tmp_path):
        result = exp.run_refinement_ablation(seed=42, scale=0.1)
        path = figures.export_refinement(result, str(tmp_path))
        rows = _read(path)
        assert {r["engine"] for r in rows} == {
            "greenwood", "bluestem", "ironbark",
        }


class TestCliOut:
    def test_run_all_with_out(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "run", "--engines", "greenwood", "--scale", "0.1",
            "--repeats", "1", "--warmups", "0",
            "--scenarios", "geocoding", "--out", str(tmp_path / "figs"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "figs" / "jf1_topology.csv").exists()
