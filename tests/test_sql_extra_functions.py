"""Tests for the auxiliary SQL functions: collection accessors, snapping,
azimuth, reverse, and linear referencing (ST_LineSubstring)."""

import math

import pytest

from repro.engines import Database
from repro.errors import SqlPlanError


@pytest.fixture
def db():
    return Database("greenwood")


def scalar(db, expr):
    return db.execute(f"SELECT {expr}").scalar()


class TestCollectionAccessors:
    def test_num_geometries(self, db):
        assert scalar(db, "ST_NumGeometries(ST_GeomFromText("
                          "'MULTIPOINT((0 0), (1 1), (2 2))'))") == 3
        assert scalar(db, "ST_NumGeometries(ST_Point(0, 0))") == 1

    def test_geometry_n(self, db):
        got = scalar(db, "ST_AsText(ST_GeometryN(ST_GeomFromText("
                         "'MULTIPOINT((0 0), (5 5))'), 2))")
        assert got == "POINT (5 5)"

    def test_geometry_n_out_of_range(self, db):
        assert scalar(db, "ST_GeometryN(ST_Point(0, 0), 5)") is None
        assert scalar(db, "ST_GeometryN(ST_Point(0, 0), 0)") is None


class TestSnapToGrid:
    def test_point(self, db):
        got = scalar(db, "ST_AsText(ST_SnapToGrid(ST_Point(1.26, 2.74), 0.5))")
        assert got == "POINT (1.5 2.5)"

    def test_line_dedupes_collapsed_vertices(self, db):
        got = scalar(
            db,
            "ST_NPoints(ST_SnapToGrid(ST_GeomFromText("
            "'LINESTRING(0 0, 0.1 0.1, 10 10)'), 1))",
        )
        assert got == 2

    def test_polygon(self, db):
        got = scalar(
            db,
            "ST_Area(ST_SnapToGrid(ST_GeomFromText("
            "'POLYGON((0.1 0.1, 9.9 0.1, 9.9 9.9, 0.1 9.9, 0.1 0.1))'), 1))",
        )
        assert got == 100.0

    def test_bad_cell_size(self, db):
        with pytest.raises(SqlPlanError):
            scalar(db, "ST_SnapToGrid(ST_Point(0, 0), 0)")


class TestAzimuth:
    def test_cardinal_directions(self, db):
        north = scalar(db, "ST_Azimuth(ST_Point(0, 0), ST_Point(0, 5))")
        east = scalar(db, "ST_Azimuth(ST_Point(0, 0), ST_Point(5, 0))")
        south = scalar(db, "ST_Azimuth(ST_Point(0, 0), ST_Point(0, -5))")
        west = scalar(db, "ST_Azimuth(ST_Point(0, 0), ST_Point(-5, 0))")
        assert north == pytest.approx(0.0)
        assert east == pytest.approx(math.pi / 2)
        assert south == pytest.approx(math.pi)
        assert west == pytest.approx(3 * math.pi / 2)

    def test_identical_points_null(self, db):
        assert scalar(db, "ST_Azimuth(ST_Point(1, 1), ST_Point(1, 1))") is None


class TestReverse:
    def test_linestring(self, db):
        got = scalar(
            db,
            "ST_AsText(ST_Reverse(ST_GeomFromText('LINESTRING(0 0, 1 1, 2 0)')))",
        )
        assert got == "LINESTRING (2 0, 1 1, 0 0)"

    def test_point_unchanged(self, db):
        assert scalar(db, "ST_AsText(ST_Reverse(ST_Point(3, 4)))") == "POINT (3 4)"


class TestLineSubstring:
    def test_middle_half(self, db):
        got = scalar(
            db,
            "ST_AsText(ST_LineSubstring(ST_GeomFromText("
            "'LINESTRING(0 0, 10 0)'), 0.25, 0.75))",
        )
        assert got == "LINESTRING (2.5 0, 7.5 0)"

    def test_spanning_vertices(self, db):
        got = scalar(
            db,
            "ST_Length(ST_LineSubstring(ST_GeomFromText("
            "'LINESTRING(0 0, 10 0, 10 10)'), 0.25, 0.75))",
        )
        assert got == pytest.approx(10.0)

    def test_degenerate_range_returns_point(self, db):
        got = scalar(
            db,
            "ST_AsText(ST_LineSubstring(ST_GeomFromText("
            "'LINESTRING(0 0, 10 0)'), 0.5, 0.5))",
        )
        assert got == "POINT (5 0)"

    def test_full_range_is_whole_line(self, db):
        got = scalar(
            db,
            "ST_Length(ST_LineSubstring(ST_GeomFromText("
            "'LINESTRING(0 0, 10 0, 10 10)'), 0, 1))",
        )
        assert got == pytest.approx(20.0)

    def test_bad_range(self, db):
        with pytest.raises(SqlPlanError):
            scalar(db, "ST_LineSubstring(ST_GeomFromText("
                       "'LINESTRING(0 0, 1 0)'), 0.9, 0.1)")
        with pytest.raises(SqlPlanError):
            scalar(db, "ST_LineSubstring(ST_GeomFromText("
                       "'LINESTRING(0 0, 1 0)'), -0.1, 0.5)")

    def test_consistency_with_interpolate(self, db):
        # endpoints of the substring are the interpolated points
        sub_start = scalar(
            db,
            "ST_AsText(ST_StartPoint(ST_LineSubstring(ST_GeomFromText("
            "'LINESTRING(0 0, 10 0, 10 10)'), 0.3, 0.9)))",
        )
        direct = scalar(
            db,
            "ST_AsText(ST_LineInterpolatePoint(ST_GeomFromText("
            "'LINESTRING(0 0, 10 0, 10 10)'), 0.3))",
        )
        assert sub_start == direct
