"""Unit tests for measures: area, length, centroid, point-on-surface."""

import math

import pytest

from repro.algorithms.location import Location, locate
from repro.algorithms.measures import (
    area,
    centroid,
    dimension,
    length,
    num_points,
    perimeter,
    point_on_surface,
)
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestArea:
    def test_square(self, unit_square):
        assert area(unit_square) == 100.0

    def test_triangle(self):
        assert area(Polygon([(0, 0), (4, 0), (0, 3)])) == 6.0

    def test_orientation_independent(self):
        ccw = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        cw = Polygon([(0, 0), (0, 4), (4, 4), (4, 0)])
        assert area(ccw) == area(cw) == 16.0

    def test_holes_subtract(self, donut):
        assert area(donut) == 84.0

    def test_multipolygon_sums(self, unit_square, far_square):
        assert area(MultiPolygon([unit_square, far_square])) == 200.0

    def test_lower_dimensions_zero(self, diagonal_line, center_point):
        assert area(diagonal_line) == 0.0
        assert area(center_point) == 0.0


class TestLength:
    def test_segments_sum(self):
        line = LineString([(0, 0), (3, 4), (3, 10)])
        assert length(line) == 11.0

    def test_multiline(self):
        ml = MultiLineString([[(0, 0), (1, 0)], [(0, 0), (0, 2)]])
        assert length(ml) == 3.0

    def test_polygon_length_is_perimeter(self, unit_square):
        assert length(unit_square) == 40.0
        assert perimeter(unit_square) == 40.0

    def test_donut_perimeter_includes_holes(self, donut):
        assert perimeter(donut) == 40.0 + 16.0

    def test_points_zero(self, center_point):
        assert length(center_point) == 0.0
        assert perimeter(center_point) == 0.0


class TestCentroid:
    def test_square_centroid(self, unit_square):
        assert centroid(unit_square) == Point(5, 5)

    def test_triangle_centroid(self):
        got = centroid(Polygon([(0, 0), (3, 0), (0, 3)]))
        assert got.x == pytest.approx(1.0)
        assert got.y == pytest.approx(1.0)

    def test_donut_centroid_accounts_for_hole(self):
        # hole off to one side pushes the centroid the other way
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(6, 4), (9, 4), (9, 7), (6, 7)]],
        )
        got = centroid(poly)
        assert got.x < 5.0

    def test_line_centroid_weighted_by_length(self):
        line = LineString([(0, 0), (10, 0), (10, 1)])
        got = centroid(line)
        # long horizontal segment dominates
        assert got.x == pytest.approx((5 * 10 + 10 * 1) / 11)

    def test_multipoint_centroid(self):
        got = centroid(MultiPoint([(0, 0), (2, 0), (2, 2), (0, 2)]))
        assert got == Point(1, 1)

    def test_collection_uses_highest_dimension(self, unit_square):
        gc = GeometryCollection([unit_square, Point(1000, 1000)])
        assert centroid(gc) == Point(5, 5)


class TestPointOnSurface:
    def test_convex_polygon(self, unit_square):
        p = point_on_surface(unit_square)
        assert locate((p.x, p.y), unit_square) is Location.INTERIOR

    def test_donut_avoids_hole(self, donut):
        p = point_on_surface(donut)
        assert locate((p.x, p.y), donut) is Location.INTERIOR

    def test_u_shape_avoids_concavity(self):
        u_shape = Polygon(
            [(0, 0), (10, 0), (10, 10), (8, 10), (8, 2), (2, 2), (2, 10), (0, 10)]
        )
        p = point_on_surface(u_shape)
        assert locate((p.x, p.y), u_shape) is Location.INTERIOR

    def test_line_point_on_line(self):
        line = LineString([(0, 0), (10, 0)])
        p = point_on_surface(line)
        assert locate((p.x, p.y), line) is not Location.EXTERIOR

    def test_multipolygon_uses_largest(self, unit_square):
        tiny = Polygon([(100, 100), (101, 100), (101, 101), (100, 101)])
        mp = MultiPolygon([tiny, unit_square])
        p = point_on_surface(mp)
        assert locate((p.x, p.y), unit_square) is Location.INTERIOR


class TestMisc:
    def test_num_points(self, unit_square, donut):
        assert num_points(unit_square) == 5
        assert num_points(donut) == 10

    def test_dimension(self, unit_square, diagonal_line, center_point):
        assert dimension(unit_square) == 2
        assert dimension(diagonal_line) == 1
        assert dimension(center_point) == 0
