"""Benchmark telemetry tests: the record stream, JSON artifacts with
percentiles and operator breakdowns, and the report's tail columns."""

import json

import pytest

from repro.core import BenchmarkConfig, Jackpine
from repro.core.report import render_micro_topology
from repro.obs import telemetry


@pytest.fixture(scope="module")
def bench_result(tmp_path_factory):
    config = BenchmarkConfig(
        engines=["greenwood"],
        scale=0.05,
        repeats=2,
        warmups=0,
        scenarios=["geocoding"],
    )
    bench = Jackpine(config)
    return bench.run()


class TestRecordStream:
    def test_micro_records_have_percentiles(self, bench_result):
        records = telemetry.run_records(bench_result)
        micro = [r for r in records if r["suite"].startswith("micro")]
        assert micro
        supported = [r for r in micro if r["supported"]]
        for record in supported:
            assert record["engine"] == "greenwood"
            assert record["runs"] == 2
            for key in ("p50", "p95", "p99", "mean", "min", "max"):
                assert key in record
            assert record["p50"] <= record["p95"] <= record["p99"]

    def test_operator_breakdowns_present(self, bench_result):
        records = telemetry.run_records(bench_result)
        with_ops = [r for r in records if r.get("operators")]
        assert with_ops, "exemplar traces should produce operator breakdowns"
        breakdown = with_ops[0]["operators"]
        assert breakdown[0]["depth"] == 0
        for op in breakdown:
            assert {"op", "rows", "seconds", "counters"} <= set(op)

    def test_macro_and_loading_records(self, bench_result):
        records = telemetry.run_records(bench_result)
        suites = {r["suite"] for r in records}
        assert "macro" in suites
        assert "loading" in suites
        macro = next(r for r in records if r["suite"] == "macro")
        assert macro["query_id"] == "macro.geocoding"
        assert macro["steps"]
        assert "queries_per_minute" in macro


class TestArtifacts:
    def test_write_artifacts_round_trip(self, bench_result, tmp_path):
        paths = telemetry.write_artifacts(bench_result, str(tmp_path))
        assert len(paths) == 1
        with open(paths[0], encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == telemetry.SCHEMA
        assert document["engine"] == "greenwood"
        assert document["config"]["scale"] == 0.05
        assert document["records"]
        supported = [
            r for r in document["records"]
            if r["suite"].startswith("micro") and r["supported"]
        ]
        assert supported
        assert all("p99" in r for r in supported)
        assert any(r.get("operators") for r in supported)

    def test_unsupported_queries_carry_error(self, tmp_path):
        config = BenchmarkConfig(
            engines=["bluestem"], scale=0.05, repeats=1, warmups=0,
            scenarios=[],
        )
        bench = Jackpine(config)
        run = bench.run_micro("bluestem")
        from repro.core.benchmark import BenchmarkResult, EngineRun

        result = BenchmarkResult(config=config, dataset_rows=0)
        result.runs["bluestem"] = EngineRun(engine="bluestem", micro=run)
        records = telemetry.run_records(result)
        unsupported = [r for r in records if not r["supported"]]
        assert unsupported  # bluestem lacks several analysis functions
        for record in unsupported:
            assert "error" in record
            assert "p50" not in record


class TestReportTails:
    def test_micro_table_shows_p95_p99(self, bench_result):
        text = render_micro_topology(bench_result)
        assert "greenwood p95/p99" in text
        assert "/" in text

    def test_collect_traces_off_skips_exemplars(self):
        config = BenchmarkConfig(
            engines=["greenwood"], scale=0.05, repeats=1, warmups=0,
            scenarios=[], collect_traces=False,
        )
        bench = Jackpine(config)
        micro = bench.run_micro("greenwood")
        assert all(t.trace is None for t in micro.values())


class TestCliTelemetry:
    def test_run_suite_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "run", "--engines", "greenwood", "--scale", "0.05",
            "--repeats", "1", "--warmups", "0", "--suite", "micro",
            "--telemetry", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry_greenwood.json" in out
        artifact = tmp_path / "telemetry_greenwood.json"
        assert artifact.exists()
        document = json.loads(artifact.read_text())
        assert document["schema"] == telemetry.SCHEMA

    def test_stats_subcommand(self, capsys):
        from repro.cli import main

        code = main(["stats", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jackpine_queries_total 3" in out
        assert "jackpine_query_seconds_bucket" in out
        assert 'jackpine_engine_rows_scanned{scope="greenwood"}' in out
