"""Tests for closest-point / shortest-line operations."""

import math

import pytest

from repro.algorithms.distance import (
    closest_point,
    closest_points,
    distance,
    shortest_line,
)
from repro.engines import Database
from repro.geometry import LineString, Point, Polygon


class TestClosestPoints:
    def test_point_to_point(self):
        pa, pb = closest_points(Point(0, 0), Point(3, 4))
        assert pa == (0.0, 0.0)
        assert pb == (3.0, 4.0)

    def test_point_to_segment_projection(self):
        line = LineString([(0, 0), (10, 0)])
        pa, pb = closest_points(Point(4, 3), line)
        assert pa == (4.0, 3.0)
        assert pb == (4.0, 0.0)

    def test_polygon_to_polygon_edges(self, unit_square, far_square):
        pa, pb = closest_points(unit_square, far_square)
        assert pa == (10.0, 10.0)
        assert pb == (100.0, 100.0)

    def test_pair_distance_matches_distance(self, unit_square, far_square):
        pa, pb = closest_points(unit_square, far_square)
        d = math.hypot(pa[0] - pb[0], pa[1] - pb[1])
        assert d == pytest.approx(distance(unit_square, far_square))

    def test_intersecting_share_a_point(self, unit_square, shifted_square):
        pa, pb = closest_points(unit_square, shifted_square)
        assert pa == pb

    def test_containment_shares_a_point(self, unit_square, inner_square):
        pa, pb = closest_points(inner_square, unit_square)
        assert pa == pb


class TestWrappers:
    def test_closest_point_returns_point_on_first(self, unit_square):
        target = Point(15, 5)
        got = closest_point(unit_square, target)
        assert got == Point(10, 5)

    def test_shortest_line(self, unit_square):
        got = shortest_line(unit_square, Point(15, 5))
        assert isinstance(got, LineString)
        assert got.length() == pytest.approx(5.0)

    def test_shortest_line_none_when_intersecting(self, unit_square,
                                                  center_point):
        assert shortest_line(unit_square, center_point) is None


class TestSqlIntegration:
    def test_functions_available(self):
        db = Database("greenwood")
        got = db.execute(
            "SELECT ST_AsText(ST_ClosestPoint("
            "ST_GeomFromText('LINESTRING(0 0, 10 0)'), ST_Point(4, 3)))"
        ).scalar()
        assert got == "POINT (4 0)"
        length = db.execute(
            "SELECT ST_Length(ST_ShortestLine("
            "ST_GeomFromText('POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))'), "
            "ST_Point(4, 0)))"
        ).scalar()
        assert length == pytest.approx(3.0)
