"""Tests for the per-database statement/plan cache."""

import pytest

from repro.engines import Database


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute("CREATE TABLE t (id INTEGER, geom GEOMETRY)")
    database.execute(
        "INSERT INTO t VALUES (1, ST_Point(0, 0)), (2, ST_Point(5, 5))"
    )
    return database


QUERY = (
    "SELECT COUNT(*) FROM t "
    "WHERE ST_Intersects(geom, ST_MakeEnvelope(-1, -1, 1, 1))"
)


class TestPlanCache:
    def test_repeated_select_hits_cache(self, db):
        db.execute(QUERY)
        assert QUERY in db._plan_cache
        cached = db._plan_cache[QUERY]
        db.execute(QUERY)
        assert db._plan_cache[QUERY] is cached

    def test_results_identical_across_cache_hits(self, db):
        first = db.execute(QUERY).scalar()
        second = db.execute(QUERY).scalar()
        assert first == second == 1

    def test_ddl_flushes_plans(self, db):
        db.execute(QUERY)
        assert db._plan_cache
        db.execute("CREATE SPATIAL INDEX tix ON t (geom)")
        assert not db._plan_cache
        # the fresh plan must now use the index
        assert "IndexScan" in db.explain(QUERY)
        assert db.execute(QUERY).scalar() == 1

    def test_insert_flushes_and_results_stay_correct(self, db):
        assert db.execute(QUERY).scalar() == 1
        db.execute("INSERT INTO t VALUES (3, ST_Point(0.5, 0.5))")
        assert db.execute(QUERY).scalar() == 2

    def test_params_vary_on_cached_plan(self, db):
        sql = "SELECT COUNT(*) FROM t WHERE id = ?"
        assert db.execute(sql, (1,)).scalar() == 1
        assert db.execute(sql, (99,)).scalar() == 0
        assert db.execute(sql, (2,)).scalar() == 1

    def test_cache_bounded(self, db):
        db.PLAN_CACHE_SIZE = 4
        for i in range(10):
            db.execute(f"SELECT {i} FROM t")
        assert len(db._plan_cache) <= 4 + 1

    def test_drop_table_invalidates(self, db):
        db.execute(QUERY)
        db.execute("DROP TABLE t")
        from repro.errors import SqlPlanError

        with pytest.raises(SqlPlanError):
            db.execute(QUERY)
