"""Tests for the synthetic TIGER-like dataset generator."""

import pytest

from repro.algorithms import area, intersects, touches, union_all
from repro.algorithms.validation import is_valid
from repro.datagen import WORLD_SIZE, generate
from repro.datagen.tiger import TigerDataset
from repro.geometry import LineString, Point, Polygon

EXPECTED_LAYERS = {
    "counties", "edges", "pointlm", "arealm", "areawater", "rivers", "parcels",
}


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(seed=5, scale=0.1)
        b = generate(seed=5, scale=0.1)
        for name in EXPECTED_LAYERS:
            assert a.layer(name).rows == b.layer(name).rows

    def test_different_seed_different_data(self):
        a = generate(seed=5, scale=0.1)
        b = generate(seed=6, scale=0.1)
        assert a.layer("pointlm").rows != b.layer("pointlm").rows

    def test_scale_scales_cardinality(self):
        small = generate(seed=5, scale=0.25)
        large = generate(seed=5, scale=1.0)
        assert large.total_rows() > small.total_rows()

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate(scale=0.0)

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            generate(scale=0.1, distribution="fractal")


class TestClusteredDistribution:
    def test_deterministic(self):
        a = generate(seed=9, scale=0.1, distribution="clustered")
        b = generate(seed=9, scale=0.1, distribution="clustered")
        assert a.layer("pointlm").rows == b.layer("pointlm").rows

    def test_same_cardinality_as_uniform(self):
        uniform = generate(seed=9, scale=0.1)
        clustered = generate(seed=9, scale=0.1, distribution="clustered")
        for name in ("pointlm", "arealm"):
            assert len(uniform.layer(name).rows) == len(
                clustered.layer(name).rows
            )

    def test_spread_is_tighter(self):
        import statistics

        def spread(ds):
            xs = [g.x for g in ds.layer("pointlm").geometries()]
            return statistics.pstdev(xs)

        uniform = generate(seed=9, scale=0.2)
        clustered = generate(seed=9, scale=0.2, distribution="clustered")
        assert spread(clustered) < spread(uniform) * 0.75

    def test_fips_matches_containing_county(self):
        from repro.algorithms import intersects

        ds = generate(seed=9, scale=0.1, distribution="clustered")
        counties = {row[2]: row[3] for row in ds.layer("counties").rows}
        pointlm = ds.layer("pointlm")
        fips_idx = pointlm.columns.index("county_fips")
        geom_idx = pointlm.columns.index("geom")
        for row in pointlm.rows[:30]:
            assert intersects(row[geom_idx], counties[row[fips_idx]])

    def test_loads_and_queries(self):
        from repro.engines import Database

        ds = generate(seed=9, scale=0.1, distribution="clustered")
        db = Database("greenwood")
        ds.load_into(db)
        got = db.execute(
            "SELECT COUNT(*) FROM counties c JOIN pointlm p "
            "ON ST_Contains(c.geom, p.geom)"
        ).scalar()
        assert got == len(ds.layer("pointlm").rows)


class TestLayerShape:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate(seed=11, scale=0.2)

    def test_all_layers_present(self, ds):
        assert set(ds.layers) == EXPECTED_LAYERS

    def test_geometry_types(self, ds):
        assert all(isinstance(g, Polygon) for g in ds.layer("counties").geometries())
        assert all(isinstance(g, LineString) for g in ds.layer("edges").geometries())
        assert all(isinstance(g, Point) for g in ds.layer("pointlm").geometries())
        assert all(isinstance(g, Polygon) for g in ds.layer("arealm").geometries())
        assert all(isinstance(g, Polygon) for g in ds.layer("areawater").geometries())
        assert all(isinstance(g, LineString) for g in ds.layer("rivers").geometries())
        assert all(isinstance(g, Polygon) for g in ds.layer("parcels").geometries())

    def test_all_geometries_valid(self, ds):
        for name in EXPECTED_LAYERS:
            for geom in ds.layer(name).geometries():
                assert is_valid(geom), f"invalid geometry in {name}"

    def test_counties_tile_the_state(self, ds):
        counties = ds.layer("counties").geometries()
        total = sum(area(c) for c in counties)
        assert total == pytest.approx(WORLD_SIZE * WORLD_SIZE, rel=1e-6)

    def test_counties_share_borders(self, ds):
        counties = ds.layer("counties").geometries()
        touching = sum(
            1
            for i in range(len(counties))
            for j in range(i + 1, len(counties))
            if touches(counties[i], counties[j])
        )
        # a 5x5 lattice has 40 edge-adjacent pairs plus corner contacts
        assert touching >= 40

    def test_points_inside_their_county(self, ds):
        counties = {
            row[2]: row[3] for row in ds.layer("counties").rows
        }  # fips -> polygon
        pointlm = ds.layer("pointlm")
        fips_idx = pointlm.columns.index("county_fips")
        geom_idx = pointlm.columns.index("geom")
        for row in pointlm.rows[:50]:
            assert intersects(row[geom_idx], counties[row[fips_idx]])

    def test_edges_have_address_ranges(self, ds):
        edges = ds.layer("edges")
        lf = edges.columns.index("lfromadd")
        lt = edges.columns.index("ltoadd")
        for row in edges.rows:
            assert row[lf] < row[lt]

    def test_parcels_in_block_share_borders(self, ds):
        parcels = ds.layer("parcels").geometries()[:16]
        touching = sum(
            1
            for i in range(len(parcels))
            for j in range(i + 1, len(parcels))
            if touches(parcels[i], parcels[j])
        )
        assert touching > 0

    def test_rivers_span_the_state(self, ds):
        for river in ds.layer("rivers").geometries():
            env = river.envelope
            assert max(env.width, env.height) > WORLD_SIZE * 0.9


class TestLoadInto:
    def test_load_and_query(self, tiny_dataset):
        from repro.engines import Database

        db = Database("greenwood")
        tiny_dataset.load_into(db)
        for name in EXPECTED_LAYERS:
            count = db.execute(f"SELECT COUNT(*) FROM {name}").scalar()
            assert count == len(tiny_dataset.layer(name).rows)
            assert db.catalog.index_for(name, "geom") is not None

    def test_load_without_indexes(self, tiny_dataset):
        from repro.engines import Database

        db = Database("greenwood")
        tiny_dataset.load_into(db, create_indexes=False)
        assert db.catalog.index_for("edges", "geom") is None

    def test_load_with_index_kind_override(self, tiny_dataset):
        from repro.engines import Database

        db = Database("greenwood")
        tiny_dataset.load_into(db, index_kind="grid")
        assert db.catalog.index_for("edges", "geom").index.kind == "grid"
