"""The write-ahead log: LSNs, group fsync, torn tails, freeze."""

from __future__ import annotations

import os

import pytest

from repro.errors import EngineError, SimulatedCrashError
from repro.obs.waits import IO_WAL_FSYNC, IO_WAL_WRITE, WAITS
from repro.storage.wal import WriteAheadLog


def _wal(tmp_path, name="wal.log"):
    return WriteAheadLog(str(tmp_path / name))


def test_append_assigns_increasing_lsns_without_io(tmp_path):
    wal = _wal(tmp_path)
    size_after_header = wal.size_bytes()
    lsns = [wal.append({"type": "wal", "op": "insert", "n": i})
            for i in range(5)]
    assert lsns == [1, 2, 3, 4, 5]
    # append buffers in memory: the file has not grown yet
    assert wal.size_bytes() == size_after_header
    assert wal.durable_lsn == 0
    wal.close()


def test_sync_advances_durable_horizon(tmp_path):
    wal = _wal(tmp_path)
    wal.append({"type": "wal", "op": "insert", "n": 1})
    wal.append({"type": "wal", "op": "commit"})
    wal.sync()
    assert wal.durable_lsn == 2
    assert wal.syncs_total == 1
    assert [r["lsn"] for r in wal.records()] == [1, 2]
    wal.close()


def test_group_commit_piggybacks_on_covering_fsync(tmp_path):
    wal = _wal(tmp_path)
    a = wal.append({"type": "wal", "op": "commit", "txid": 1})
    b = wal.append({"type": "wal", "op": "commit", "txid": 2})
    wal.sync_for(b)  # one fsync covers both
    before = wal.syncs_total
    wal.sync_for(a)  # already durable: no second fsync
    assert wal.syncs_total == before
    wal.close()


def test_reopen_resumes_lsn_counter(tmp_path):
    wal = _wal(tmp_path)
    for i in range(3):
        wal.append({"type": "wal", "op": "insert", "n": i})
    wal.close()  # clean close syncs
    wal = _wal(tmp_path)
    assert wal.durable_lsn == 3
    assert wal.append({"type": "wal", "op": "insert", "n": 99}) == 4
    wal.sync()
    assert [r["lsn"] for r in wal.records()] == [1, 2, 3, 4]
    wal.close()


def test_torn_tail_truncated_on_open(tmp_path):
    wal = _wal(tmp_path)
    wal.append({"type": "wal", "op": "insert", "n": 1})
    wal.sync()
    wal.close()
    path = str(tmp_path / "wal.log")
    with open(path, "ab") as f:
        f.write(b'00abcdef {"type": "wal", "op": "ins')  # torn mid-record
    wal = WriteAheadLog(path)
    assert wal.durable_lsn == 1
    assert len(wal.records()) == 1
    # the torn bytes are gone: appending resumes on a clean boundary
    wal.append({"type": "wal", "op": "insert", "n": 2})
    wal.sync()
    assert [r["lsn"] for r in wal.records()] == [1, 2]
    wal.close()


def test_corrupt_record_checksum_stops_the_scan(tmp_path):
    wal = _wal(tmp_path)
    wal.append({"type": "wal", "op": "insert", "n": 1})
    wal.sync()
    wal.close()
    path = str(tmp_path / "wal.log")
    with open(path, "ab") as f:
        f.write(b'deadbeef {"type": "wal", "op": "insert", "n": 2}\n')
    wal = WriteAheadLog(path)
    assert len(wal.records()) == 1  # bad-CRC line and beyond dropped
    wal.close()


def test_not_a_wal_rejected(tmp_path):
    path = tmp_path / "wal.log"
    path.write_text("just some text\n")
    with pytest.raises(EngineError, match="not a jackpine WAL"):
        WriteAheadLog(str(path))


def test_freeze_loses_exactly_the_unsynced_suffix(tmp_path):
    wal = _wal(tmp_path)
    wal.append({"type": "wal", "op": "insert", "n": 1})
    wal.sync()
    wal.append({"type": "wal", "op": "insert", "n": 2})  # never synced
    wal.freeze()
    with pytest.raises(SimulatedCrashError):
        wal.append({"type": "wal", "op": "insert", "n": 3})
    with pytest.raises(SimulatedCrashError):
        wal.sync()
    # reopen sees only the fsynced prefix — the kill -9 contract
    recovered = WriteAheadLog(str(tmp_path / "wal.log"))
    assert [r["n"] for r in recovered.records()] == [1]
    recovered.close()


def test_rewrite_truncates_but_preserves_lsn_counter(tmp_path):
    wal = _wal(tmp_path)
    for i in range(10):
        wal.append({"type": "wal", "op": "insert", "n": i})
    wal.sync()
    keep = [r for r in wal.records() if r["n"] >= 8]
    next_before = wal.next_lsn
    wal.rewrite(keep)
    assert wal.next_lsn == next_before
    assert [r["n"] for r in wal.records()] == [8, 9]
    # new appends continue past every pre-rewrite LSN
    assert wal.append({"type": "wal", "op": "insert", "n": 10}) == next_before
    wal.close()


def test_wal_wait_events_recorded(tmp_path):
    wal = _wal(tmp_path)
    WAITS.enable()
    WAITS.reset()
    try:
        wal.append({"type": "wal", "op": "insert", "n": 1})
        wal.sync()
        summary = WAITS.summary()
    finally:
        WAITS.disable()
        WAITS.reset()
    assert IO_WAL_WRITE in summary
    assert IO_WAL_FSYNC in summary
    wal.close()


def test_records_survive_value_roundtrip(tmp_path):
    wal = _wal(tmp_path)
    record = {"type": "wal", "op": "update", "table": "t", "rid": 3,
              "values": [1, "text", None, 2.5], "old": [0, "", None, 0.0]}
    wal.append(dict(record))
    wal.sync()
    stored = wal.records()[0]
    for key, value in record.items():
        assert stored[key] == value
    wal.close()
