"""Trace-span tests: span-tree shape, row counts and monotonic timings
for every spatial join strategy under every engine profile, exporter
round trips, hook firing, slow-query capture and one macro scenario
end-to-end."""

import json
import random

import pytest

from repro.core.macro.geocoding import Geocoding
from repro.datagen import generate, shapes
from repro.dbapi import connect
from repro.engines import Database
from repro.geometry import Point
from repro.obs import Trace

PROFILES = ("greenwood", "bluestem", "ironbark")
STRATEGIES = ("inlj", "tree", "pbsm", "nlj")

#: the operator each forced strategy must plan
STRATEGY_OPERATOR = {
    "inlj": "IndexNestedLoopJoin",
    "tree": "SpatialTreeJoin",
    "pbsm": "PBSMJoin",
    "nlj": "NestedLoopJoin",
}

JOIN_SQL = (
    "SELECT COUNT(*) FROM a JOIN b ON ST_Intersects(a.geom, b.geom)"
)


def _random_layer(rng, count, world):
    geoms = []
    for i in range(count):
        cx = rng.uniform(0.0, world)
        cy = rng.uniform(0.0, world)
        if i % 2:
            geoms.append(
                shapes.radial_polygon(
                    rng, (cx, cy), rng.uniform(world / 30, world / 10)
                )
            )
        else:
            geoms.append(Point(cx, cy))
    return geoms


def _build_db(profile, seed=11, n_a=30, n_b=40):
    rng = random.Random(seed)
    db = Database(profile)
    db.execute("CREATE TABLE a (id INTEGER, geom GEOMETRY)")
    db.execute("CREATE TABLE b (id INTEGER, geom GEOMETRY)")
    world = 100.0
    db.insert_rows(
        "a", [(i, g) for i, g in enumerate(_random_layer(rng, n_a, world))]
    )
    db.insert_rows(
        "b", [(i, g) for i, g in enumerate(_random_layer(rng, n_b, world))]
    )
    db.execute("CREATE SPATIAL INDEX a_ix ON a (geom)")
    db.execute("CREATE SPATIAL INDEX b_ix ON b (geom)")
    db.execute("ANALYZE")
    return db


def _trace_join(profile, strategy):
    db = _build_db(profile)
    db.join_strategy = strategy
    db.obs.enable_tracing()
    result = db.execute(JOIN_SQL)
    return db, result, db.last_trace()


class TestJoinStrategySpans:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_span_tree_shape(self, profile, strategy):
        _db, result, trace = _trace_join(profile, strategy)
        assert trace is not None and trace.root is not None
        ops = [span.op for span in trace.spans()]
        assert ops[0] == "Project"
        assert "Aggregate" in ops
        assert STRATEGY_OPERATOR[strategy] in ops
        # the COUNT(*) query emits exactly one output row from the root
        assert trace.root.rows == 1
        assert trace.rows == 1
        assert result.scalar() is not None

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_row_counts_and_counters(self, profile, strategy):
        db, result, trace = _trace_join(profile, strategy)
        join_span = trace.root.find(STRATEGY_OPERATOR[strategy])
        # the join's emitted rows are what COUNT(*) aggregated
        assert join_span.rows == result.scalar()
        if strategy != "nlj":
            # statement-level counter deltas must agree with the span tree
            assert (
                trace.counters.get("join_pairs_emitted", 0)
                == join_span.counters.get("join_pairs_emitted", 0)
            )
            assert (
                join_span.counters.get("join_pairs_emitted", 0)
                == join_span.rows
            )

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_monotonic_timings(self, profile, strategy):
        _db, _result, trace = _trace_join(profile, strategy)
        for _depth, span in trace.root.walk():
            assert span.seconds >= 0.0
            assert span.exclusive_seconds >= 0.0
            # inclusive parent time covers each child's inclusive time
            for child in span.children:
                assert span.seconds >= child.seconds - 1e-9
        assert trace.seconds >= trace.root.seconds - 1e-9


class TestExporters:
    def test_json_lines_round_trip(self):
        _db, _result, trace = _trace_join("greenwood", "tree")
        text = trace.to_json_lines()
        parsed = Trace.from_json_lines(text)
        assert parsed.sql == trace.sql
        assert parsed.engine == "greenwood"
        assert parsed.counters == trace.counters
        assert [s.op for s in parsed.spans()] == [
            s.op for s in trace.spans()
        ]
        assert [s.rows for s in parsed.spans()] == [
            s.rows for s in trace.spans()
        ]
        # every line is standalone JSON
        for line in text.strip().splitlines():
            json.loads(line)

    def test_chrome_trace_events(self):
        _db, _result, trace = _trace_join("greenwood", "pbsm")
        doc = trace.to_chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == trace.root.total_spans()
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0
            assert "rows" in event["args"]
        assert doc["otherData"]["sql"] == JOIN_SQL

    def test_render_contains_operators_and_counters(self):
        _db, _result, trace = _trace_join("greenwood", "inlj")
        text = trace.render()
        assert "IndexNestedLoopJoin" in text
        assert "rows=" in text
        assert "index_probes=" in text


class TestHooksAndSlowQueries:
    def test_query_hooks_fire(self):
        db = _build_db("greenwood")
        events = []
        db.obs.on_query_start(lambda sql, params: events.append(("start", sql)))
        db.obs.on_query_end(lambda trace: events.append(("end", trace.sql)))
        db.execute("SELECT COUNT(*) FROM a")
        assert events == [
            ("start", "SELECT COUNT(*) FROM a"),
            ("end", "SELECT COUNT(*) FROM a"),
        ]

    def test_operator_close_hook(self):
        db = _build_db("greenwood")
        closed = []
        db.obs.on_operator_close(lambda span: closed.append(span.op))
        db.execute(JOIN_SQL)
        assert "Project" in closed
        assert "Aggregate" in closed
        # children close before parents (Volcano teardown order)
        assert closed.index("Aggregate") < closed.index("Project")

    def test_slow_query_auto_capture(self):
        db = _build_db("greenwood")
        db.obs.slow_query_threshold = 0.0  # everything is "slow"
        db.execute(JOIN_SQL)
        assert len(db.obs.slow_traces) == 1
        trace = db.obs.slow_traces[0]
        assert trace.root is not None
        assert trace.sql == JOIN_SQL

    def test_fast_queries_not_captured(self):
        db = _build_db("greenwood")
        db.obs.slow_query_threshold = 3600.0
        db.execute(JOIN_SQL)
        assert len(db.obs.slow_traces) == 0

    def test_disabled_by_default_and_fast_path(self):
        db = _build_db("greenwood")
        assert db.obs.active is False
        db.execute(JOIN_SQL)
        assert db.last_trace() is None

    def test_non_select_traced_without_spans(self):
        db = _build_db("greenwood")
        db.obs.enable_tracing()
        db.execute("INSERT INTO a VALUES (99, ST_Point(1, 1))")
        trace = db.last_trace()
        assert trace.statement == "Insert"
        assert trace.root is None
        assert trace.rows == 1


class TestMacroScenarioTracing:
    def test_geocoding_end_to_end(self, tiny_dataset):
        db = Database("greenwood")
        tiny_dataset.load_into(db, create_indexes=True)
        db.obs.enable_tracing()
        conn = connect(database=db)
        result = Geocoding().run(
            conn, tiny_dataset, seed=3, engine_name="greenwood"
        )
        executed = [s for s in result.steps if not s.skipped]
        assert executed
        for step in executed:
            assert step.trace is not None
            assert step.trace.root is not None
            assert step.trace.root.rows == step.rows
            assert step.trace.seconds >= 0.0


class TestObservedPlanCache:
    def test_metrics_only_path_still_uses_plan_cache(self):
        db = _build_db("greenwood")
        db.obs.enable_metrics()
        before = db.stats.plan_cache_hits
        db.execute("SELECT COUNT(*) FROM a")
        db.execute("SELECT COUNT(*) FROM a")
        assert db.stats.plan_cache_hits == before + 1

    def test_tracing_does_not_poison_plan_cache(self):
        db = _build_db("greenwood")
        query = "SELECT COUNT(*) FROM a"
        first = db.execute(query).scalar()
        db.obs.enable_tracing()
        db.execute(query)
        db.obs.disable_tracing()
        assert db.execute(query).scalar() == first
