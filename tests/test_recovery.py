"""Crash recovery: ARIES-lite analysis/redo/undo over the WAL + pages.

The acceptance property: a kill-9-style crash injected mid-workload at
every armed WAL/page fault site recovers with zero committed-transaction
loss and zero uncommitted-row leakage, with the spatial indexes agreeing
with the heap.
"""

from __future__ import annotations

import pytest

from repro.engines import Database
from repro.errors import SimulatedCrashError, SqlProgrammingError
from repro.faults import FAULTS
from repro.storage.crash import (
    CRASH_SITES,
    kill_at,
    run_crash_workload,
    verify_recovery,
)
from repro.storage.durability import recover


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def _durable(tmp_path, rows=20):
    db = Database("greenwood")
    db.execute("CREATE TABLE pts (id INTEGER, g GEOMETRY)")
    db.execute("CREATE SPATIAL INDEX pts_g ON pts (g)")
    db.insert_rows(
        "pts", [(i, f"POINT({i} {i % 7})") for i in range(rows)]
    )
    db.attach_storage(str(tmp_path / "storage"))
    return db


def _count(db, table="pts"):
    return db.execute(f"SELECT COUNT(*) FROM {table}").scalar()


def _index_count(db, table="pts", column="g"):
    return db.execute(
        f"SELECT COUNT(*) FROM {table} WHERE ST_Intersects({column}, "
        "ST_MakeEnvelope(-10000, -10000, 10000, 10000))"
    ).scalar()


class TestCleanReopen:
    def test_close_and_open_preserves_everything(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("INSERT INTO pts VALUES (100, ST_GeomFromText("
                   "'POINT(50 50)'))")
        db.execute("UPDATE pts SET id = 999 WHERE id = 0")
        db.execute("DELETE FROM pts WHERE id = 1")
        db.close()

        again = Database.open(str(tmp_path / "storage"))
        assert _count(again) == 20  # 20 + 1 - 1
        assert _index_count(again) == 20
        ids = {r[0] for r in again.execute("SELECT id FROM pts").rows}
        assert 100 in ids and 999 in ids
        assert 0 not in ids and 1 not in ids
        again.close()

    def test_open_fresh_directory_attaches_empty_storage(self, tmp_path):
        db = Database.open(str(tmp_path / "fresh"))
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.close()
        again = Database.open(str(tmp_path / "fresh"))
        assert _count(again, "t") == 1
        again.close()

    def test_double_attach_rejected(self, tmp_path):
        db = _durable(tmp_path)
        with pytest.raises(SqlProgrammingError):
            db.attach_storage(str(tmp_path / "other"))
        db.close()


class TestCrashAndRecover:
    def test_committed_survive_uncommitted_vanish(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("INSERT INTO pts VALUES (500, ST_GeomFromText("
                   "'POINT(5 5)'))")  # auto-commit: durable
        db.execute("BEGIN")
        db.execute("INSERT INTO pts VALUES (600, ST_GeomFromText("
                   "'POINT(6 6)'))")
        # force the row op to the durable WAL (as a concurrent commit's
        # group fsync would) so recovery sees a genuine loser to undo
        db.durability.wal.sync()
        db.durability.crash()  # kill -9 with the transaction open
        with pytest.raises(SimulatedCrashError):
            db.execute("COMMIT")

        recovered, report = recover(str(tmp_path / "storage"))
        ids = {r[0] for r in recovered.execute("SELECT id FROM pts").rows}
        assert 500 in ids
        assert 600 not in ids
        assert _count(recovered) == _index_count(recovered) == 21
        assert report.losers >= 1
        recovered.close()

    def test_update_and_delete_replay(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("UPDATE pts SET id = 777 WHERE id = 3")
        db.execute("DELETE FROM pts WHERE id = 4")
        db.durability.crash()

        recovered, _report = recover(str(tmp_path / "storage"))
        ids = {r[0] for r in recovered.execute("SELECT id FROM pts").rows}
        assert 777 in ids and 3 not in ids and 4 not in ids
        assert _count(recovered) == 19
        recovered.close()

    def test_rolled_back_transaction_stays_rolled_back(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("BEGIN")
        db.execute("INSERT INTO pts VALUES (800, ST_GeomFromText("
                   "'POINT(8 8)'))")
        db.execute("ROLLBACK")
        db.durability.crash()
        recovered, _report = recover(str(tmp_path / "storage"))
        ids = {r[0] for r in recovered.execute("SELECT id FROM pts").rows}
        assert 800 not in ids
        recovered.close()

    def test_ddl_replayed(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("CREATE TABLE extra (id INTEGER, g GEOMETRY)")
        db.execute("INSERT INTO extra VALUES (1, ST_GeomFromText("
                   "'POINT(1 1)'))")
        db.execute("CREATE SPATIAL INDEX extra_g ON extra (g)")
        db.execute("DROP INDEX pts_g")
        db.durability.crash()

        recovered, report = recover(str(tmp_path / "storage"))
        assert _count(recovered, "extra") == 1
        assert _index_count(recovered, "extra") == 1
        names = {e.name for e in recovered.catalog.indexes()}
        assert "extra_g" in names and "pts_g" not in names
        assert report.tables["extra"] == 1
        recovered.close()

    def test_dropped_table_stays_dropped(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("CREATE TABLE doomed (id INTEGER)")
        db.execute("INSERT INTO doomed VALUES (1)")
        db.execute("DROP TABLE doomed")
        db.durability.crash()
        recovered, _report = recover(str(tmp_path / "storage"))
        names = {t.name for t in recovered.catalog.tables()}
        assert "doomed" not in names
        recovered.close()

    def test_recovery_is_idempotent(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("INSERT INTO pts VALUES (900, ST_GeomFromText("
                   "'POINT(9 9)'))")
        db.durability.crash()
        first, _ = recover(str(tmp_path / "storage"))
        count = _count(first)
        first.durability.crash()  # crash again immediately
        second, _ = recover(str(tmp_path / "storage"))
        assert _count(second) == count
        second.close()


class TestCheckpoint:
    def test_checkpoint_truncates_wal_and_recovery_still_correct(
            self, tmp_path):
        db = _durable(tmp_path)
        for i in range(30):
            db.execute(
                "INSERT INTO pts VALUES (?, ?)",
                (1000 + i, f"POINT({i} {i})"),
            )
        before = db.durability.wal.records_total
        report = db.checkpoint()
        assert report.wal_records_kept < before
        # post-checkpoint writes land in the (short) WAL
        db.execute("INSERT INTO pts VALUES (2000, ST_GeomFromText("
                   "'POINT(2 2)'))")
        db.durability.crash()

        recovered, rec = recover(str(tmp_path / "storage"))
        ids = {r[0] for r in recovered.execute("SELECT id FROM pts").rows}
        assert 2000 in ids and 1029 in ids
        assert _count(recovered) == 51
        assert rec.checkpoint_lsn > 0
        recovered.close()

    def test_checkpoint_with_open_transaction_keeps_its_records(
            self, tmp_path):
        db = _durable(tmp_path)
        db.execute("BEGIN")
        db.execute("INSERT INTO pts VALUES (3000, ST_GeomFromText("
                   "'POINT(3 3)'))")
        db.checkpoint()  # must keep the active transaction's row ops
        db.durability.crash()  # dies before COMMIT
        recovered, _rec = recover(str(tmp_path / "storage"))
        ids = {r[0] for r in recovered.execute("SELECT id FROM pts").rows}
        assert 3000 not in ids  # undone as a loser, not resurrected
        assert _count(recovered) == _index_count(recovered) == 20
        recovered.close()


class TestCrashMatrix:
    """The acceptance criterion: kill -9 at every armed durable fault
    site, mid concurrent commit workload, with and without a background
    checkpointer — recovery must lose nothing committed and leak
    nothing uncommitted."""

    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_kill_at_site_recovers_consistently(self, site, tmp_path):
        outcome = run_crash_workload(
            str(tmp_path / "storage"),
            clients=3,
            site=site,
            on_call=40,
            deadline=5.0,
            # page.write is only reachable through write-back: run the
            # checkpointer aggressively so the site actually fires
            checkpoint_interval=0.02,
        )
        assert outcome.fired, f"site {site} never fired"
        recovered, report = recover(str(tmp_path / "storage"))
        violations = verify_recovery(outcome, recovered)
        assert not violations, violations
        assert report.total_seconds > 0
        recovered.close()

    def test_kill_without_checkpointer(self, tmp_path):
        outcome = run_crash_workload(
            str(tmp_path / "storage"),
            clients=2,
            site="wal.append",
            on_call=60,
            deadline=5.0,
        )
        assert outcome.fired
        recovered, _report = recover(str(tmp_path / "storage"))
        assert not verify_recovery(outcome, recovered)
        recovered.close()


class TestRecoveryReport:
    def test_report_counts_and_describe(self, tmp_path):
        db = _durable(tmp_path, rows=10)
        db.execute("INSERT INTO pts VALUES (50, ST_GeomFromText("
                   "'POINT(4 4)'))")
        db.durability.crash()
        recovered, report = recover(str(tmp_path / "storage"))
        assert report.tables == {"pts": 11}
        assert report.indexes == ["pts_g"]
        assert report.winners >= 1
        assert report.total_seconds >= (
            report.analysis_seconds + report.redo_seconds
            + report.undo_seconds
        )
        text = report.describe()
        assert "pts" not in text or True  # describe is free-form
        assert "recovered" in text
        assert recovered.recovery_report is report
        recovered.close()

    def test_post_recovery_database_accepts_durable_writes(self, tmp_path):
        db = _durable(tmp_path, rows=5)
        db.durability.crash()
        recovered, _report = recover(str(tmp_path / "storage"))
        recovered.execute("INSERT INTO pts VALUES (60, ST_GeomFromText("
                          "'POINT(6 1)'))")
        recovered.close()
        final = Database.open(str(tmp_path / "storage"))
        assert _count(final) == 6
        final.close()


def test_kill_at_context_manager_disarms(tmp_path):
    db = _durable(tmp_path, rows=2)
    with kill_at("wal.append", on_call=1):
        with pytest.raises(SimulatedCrashError):
            db.execute("INSERT INTO pts VALUES (9, ST_GeomFromText("
                       "'POINT(9 9)'))")
    assert not FAULTS.active
    assert db.durability.crashed


def test_checkpoint_cli_recovers_then_checkpoints(tmp_path, capsys):
    from repro.cli import main

    db = _durable(tmp_path, rows=8)
    db.execute("INSERT INTO pts VALUES (70, ST_GeomFromText("
               "'POINT(7 7)'))")
    db.durability.crash()
    assert main(["checkpoint", str(tmp_path / "storage")]) == 0
    out = capsys.readouterr().out
    assert "recovered" in out
    assert "checkpoint at lsn" in out
    final = Database.open(str(tmp_path / "storage"))
    assert _count(final) == 9
    final.close()
