"""Unit tests for Envelope: construction, relations, distances."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Envelope


class TestConstruction:
    def test_basic(self):
        env = Envelope(1, 2, 3, 4)
        assert env.as_tuple() == (1.0, 2.0, 3.0, 4.0)

    def test_degenerate_point_envelope_allowed(self):
        env = Envelope(5, 5, 5, 5)
        assert env.width == 0.0
        assert env.height == 0.0
        assert env.area == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            Envelope(3, 0, 1, 5)
        with pytest.raises(GeometryError):
            Envelope(0, 5, 5, 1)

    def test_from_coords(self):
        env = Envelope.from_coords([(3, 7), (-1, 2), (5, 4)])
        assert env.as_tuple() == (-1.0, 2.0, 5.0, 7.0)

    def test_from_coords_empty_rejected(self):
        with pytest.raises(GeometryError):
            Envelope.from_coords([])

    def test_union_all(self):
        env = Envelope.union_all(
            [Envelope(0, 0, 1, 1), Envelope(5, -2, 6, 0.5)]
        )
        assert env.as_tuple() == (0.0, -2.0, 6.0, 1.0)

    def test_union_all_empty_rejected(self):
        with pytest.raises(GeometryError):
            Envelope.union_all([])


class TestDerived:
    def test_dimensions(self):
        env = Envelope(0, 0, 4, 3)
        assert env.width == 4.0
        assert env.height == 3.0
        assert env.area == 12.0
        assert env.perimeter == 14.0
        assert env.center == (2.0, 1.5)

    def test_expanded(self):
        env = Envelope(0, 0, 2, 2).expanded(1.0)
        assert env.as_tuple() == (-1.0, -1.0, 3.0, 3.0)


class TestRelations:
    def test_intersects_overlap(self):
        assert Envelope(0, 0, 2, 2).intersects(Envelope(1, 1, 3, 3))

    def test_intersects_edge_touch(self):
        assert Envelope(0, 0, 2, 2).intersects(Envelope(2, 0, 4, 2))

    def test_intersects_corner_touch(self):
        assert Envelope(0, 0, 2, 2).intersects(Envelope(2, 2, 4, 4))

    def test_disjoint(self):
        assert not Envelope(0, 0, 2, 2).intersects(Envelope(3, 3, 4, 4))

    def test_contains(self):
        outer = Envelope(0, 0, 10, 10)
        assert outer.contains(Envelope(1, 1, 9, 9))
        assert outer.contains(outer)
        assert not Envelope(1, 1, 9, 9).contains(outer)

    def test_contains_point(self):
        env = Envelope(0, 0, 2, 2)
        assert env.contains_point(1, 1)
        assert env.contains_point(0, 0)  # boundary inclusive
        assert not env.contains_point(2.01, 1)

    def test_intersection(self):
        got = Envelope(0, 0, 4, 4).intersection(Envelope(2, 2, 6, 6))
        assert got is not None
        assert got.as_tuple() == (2.0, 2.0, 4.0, 4.0)

    def test_intersection_disjoint_is_none(self):
        assert Envelope(0, 0, 1, 1).intersection(Envelope(5, 5, 6, 6)) is None

    def test_union(self):
        got = Envelope(0, 0, 1, 1).union(Envelope(5, 5, 6, 6))
        assert got.as_tuple() == (0.0, 0.0, 6.0, 6.0)


class TestDistance:
    def test_distance_overlapping_is_zero(self):
        assert Envelope(0, 0, 2, 2).distance(Envelope(1, 1, 3, 3)) == 0.0

    def test_distance_horizontal(self):
        assert Envelope(0, 0, 1, 1).distance(Envelope(4, 0, 5, 1)) == 3.0

    def test_distance_diagonal(self):
        got = Envelope(0, 0, 1, 1).distance(Envelope(4, 4, 5, 5))
        assert got == pytest.approx(math.hypot(3, 3))

    def test_distance_to_point_inside(self):
        assert Envelope(0, 0, 2, 2).distance_to_point(1, 1) == 0.0

    def test_distance_to_point_outside(self):
        assert Envelope(0, 0, 2, 2).distance_to_point(5, 2) == 3.0


class TestDunder:
    def test_equality_and_hash(self):
        a = Envelope(0, 0, 1, 1)
        b = Envelope(0, 0, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Envelope(0, 0, 1, 2)

    def test_repr(self):
        assert "Envelope" in repr(Envelope(0, 0, 1, 1))
