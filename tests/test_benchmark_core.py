"""Integration tests for the Jackpine benchmark core: micro suites, macro
scenarios, the orchestrator and report rendering."""

import math

import pytest

from repro.core import BenchmarkConfig, Jackpine, render_full
from repro.core.macro import ALL_SCENARIOS, SCENARIOS_BY_NAME
from repro.core.micro import analysis_queries, bind_dataset, topology_queries
from repro.core.micro.loading import run_loading
from repro.core.report import (
    render_loading,
    render_macro,
    render_micro_analysis,
    render_micro_topology,
)
from repro.core.stats import QueryTiming, run_timed
from repro.dbapi import connect


class TestQueryCatalogues:
    def test_topology_suite_shape(self):
        queries = topology_queries()
        assert len(queries) >= 20
        assert len({q.query_id for q in queries}) == len(queries)
        assert all(q.category == "topology" for q in queries)
        relations = {"equals", "disjoint", "intersects", "touches",
                     "crosses", "within", "contains", "overlaps"}
        for relation in relations:
            assert any(relation in q.query_id for q in queries), relation

    def test_analysis_suite_shape(self):
        queries = analysis_queries()
        assert len(queries) >= 15
        functions = {"buffer", "convex_hull", "centroid", "union",
                     "intersection", "distance", "area", "length"}
        for fn in functions:
            assert any(fn in q.query_id for q in queries), fn

    def test_bind_dataset_substitutes_fips(self, tiny_dataset):
        bound = bind_dataset(analysis_queries(), tiny_dataset)
        union_agg = next(q for q in bound if q.query_id.endswith("union_aggregate"))
        assert "(SELECT_FIPS)" not in union_agg.sql


class TestQueryTiming:
    def test_statistics(self):
        timing = QueryTiming("q")
        for value in (0.2, 0.4, 0.3):
            timing.record(value)
        assert timing.runs == 3
        assert timing.mean == pytest.approx(0.3)
        assert timing.median == pytest.approx(0.3)
        assert timing.minimum == 0.2
        assert timing.maximum == 0.4
        assert timing.total == pytest.approx(0.9)
        assert timing.stddev == pytest.approx(0.1)

    def test_empty_stats_are_nan(self):
        timing = QueryTiming("q")
        assert math.isnan(timing.mean)
        assert math.isnan(timing.median)

    def test_run_timed_protocol(self):
        calls = []
        timing = run_timed(
            QueryTiming("q"), lambda: calls.append(1) or 42,
            repeats=3, warmups=2,
        )
        assert len(calls) == 5
        assert timing.runs == 3
        assert timing.result_value == 42

    def test_run_timed_unsupported(self):
        from repro.errors import UnsupportedFeatureError

        def boom():
            raise UnsupportedFeatureError("nope")

        timing = run_timed(QueryTiming("q"), boom, repeats=2, warmups=1)
        assert not timing.supported
        assert timing.runs == 0


class TestMicroOnEngines:
    def test_exact_engines_agree_on_counts(self, greenwood_db, ironbark_db):
        for query in topology_queries():
            g_cur = connect(database=greenwood_db).cursor()
            i_cur = connect(database=ironbark_db).cursor()
            assert query.run(g_cur) == query.run(i_cur), query.query_id

    def test_mbr_engine_never_undercounts_intersects(
        self, greenwood_db, bluestem_db
    ):
        positives = [
            q for q in topology_queries()
            if "intersects" in q.query_id or "within" in q.query_id
        ]
        for query in positives:
            exact = query.run(connect(database=greenwood_db).cursor())
            approx = query.run(connect(database=bluestem_db).cursor())
            assert approx >= exact, query.query_id


class TestMacroScenarios:
    def test_registry(self):
        assert len(ALL_SCENARIOS) == 6
        assert set(SCENARIOS_BY_NAME) == {
            "map_search", "geocoding", "reverse_geocoding",
            "flood_risk", "land_information", "toxic_spill",
        }

    @pytest.mark.parametrize("name", sorted(SCENARIOS_BY_NAME))
    def test_scenario_runs_on_greenwood(self, name, greenwood_db,
                                        small_dataset):
        scenario = SCENARIOS_BY_NAME[name]()
        conn = connect(database=greenwood_db)
        result = scenario.run(conn, small_dataset, seed=3, engine_name="greenwood")
        assert result.executed > 0
        assert result.skipped == 0  # greenwood supports everything
        assert result.total_seconds > 0
        assert result.queries_per_minute > 0

    def test_scenarios_deterministic_given_seed(self, greenwood_db,
                                                small_dataset):
        scenario = SCENARIOS_BY_NAME["geocoding"]()
        conn = connect(database=greenwood_db)
        first = scenario.run(conn, small_dataset, seed=9)
        second = scenario.run(conn, small_dataset, seed=9)
        assert [s.label for s in first.steps] == [s.label for s in second.steps]
        assert [s.rows for s in first.steps] == [s.rows for s in second.steps]

    def test_geocoding_finds_addresses(self, greenwood_db, small_dataset):
        scenario = SCENARIOS_BY_NAME["geocoding"]()
        conn = connect(database=greenwood_db)
        result = scenario.run(conn, small_dataset, seed=3)
        hits = sum(1 for s in result.steps if s.rows > 0)
        assert hits == len(result.steps)  # every lookup resolves

    def test_bluestem_skips_unsupported_steps(self, bluestem_db,
                                              small_dataset):
        scenario = SCENARIOS_BY_NAME["reverse_geocoding"]()
        conn = connect(database=bluestem_db)
        result = scenario.run(conn, small_dataset, seed=3, engine_name="bluestem")
        assert result.skipped > 0
        assert result.executed > 0  # the nearest-road half still runs


class TestLoadingSuite:
    def test_loading_result_shape(self, tiny_dataset):
        result = run_loading("greenwood", tiny_dataset)
        assert result.engine == "greenwood"
        assert {t.layer for t in result.layers} == set(tiny_dataset.layers)
        for timing in result.layers:
            assert timing.insert_seconds > 0
            assert timing.index_seconds >= 0
            assert timing.rows == len(tiny_dataset.layer(timing.layer).rows)
        assert result.total_insert > 0


class TestOrchestrator:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        config = BenchmarkConfig(
            engines=["greenwood", "bluestem"],
            scale=0.1,
            repeats=1,
            warmups=0,
            scenarios=["geocoding", "toxic_spill"],
        )
        return Jackpine(config, dataset=tiny_dataset).run()

    def test_runs_all_engines(self, result):
        assert result.engines() == ["greenwood", "bluestem"]

    def test_micro_results_present(self, result):
        run = result.runs["greenwood"]
        assert len(run.micro) == len(topology_queries()) + len(analysis_queries())

    def test_unsupported_marked(self, result):
        run = result.runs["bluestem"]
        hull = run.micro["analysis.convex_hull"]
        assert not hull.supported

    def test_macro_limited_to_requested(self, result):
        assert set(result.runs["greenwood"].macro) == {
            "geocoding", "toxic_spill",
        }

    def test_report_renders(self, result):
        text = render_full(result)
        assert "J-T1" in text
        assert "J-F3" in text
        assert "n/s" in text  # bluestem's gaps visible
        for section in (render_micro_topology, render_micro_analysis,
                        render_macro, render_loading):
            assert section(result)
