"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t WHERE x = 1.5")
        kinds = [t.type for t in tokens]
        assert kinds[-1] is TokenType.END
        values = [t.value for t in tokens[:-1]]
        assert values == [
            "select", "a", ",", "b", "from", "t", "where", "x", "=", "1.5",
        ]

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'O''Hara'")
        assert tokens[1].type is TokenType.STRING
        assert tokens[1].value == "O'Hara"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_quoted_identifier_preserves_keyword(self):
        tokens = tokenize('SELECT "select" FROM t')
        assert tokens[1].type is TokenType.IDENT
        assert tokens[1].value == "select"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing\n/* block */ + 2")
        values = [t.value for t in tokens[:-1]]
        assert values == ["select", "1", "+", "2"]

    def test_multi_char_operators(self):
        tokens = tokenize("a <= b >= c <> d != e && f || g")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<=", ">=", "<>", "!=", "&&", "||"]

    def test_params(self):
        tokens = tokenize("WHERE x = ? AND y = ?")
        assert sum(1 for t in tokens if t.type is TokenType.PARAM) == 2

    def test_scientific_numbers(self):
        tokens = tokenize("1e3 2.5E-2 .5")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == ["1e3", "2.5E-2", ".5"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @foo")


class TestParserStatements:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INTEGER, name VARCHAR(30), geom GEOMETRY)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["id", "name", "geom"]

    def test_create_table_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (id INTEGER)")
        assert stmt.if_not_exists

    def test_create_spatial_index(self):
        stmt = parse("CREATE SPATIAL INDEX idx ON t (geom) USING quadtree")
        assert isinstance(stmt, ast.CreateSpatialIndex)
        assert stmt.using == "quadtree"

    def test_drop_statements(self):
        assert isinstance(parse("DROP TABLE t"), ast.DropTable)
        drop = parse("DROP INDEX IF EXISTS idx")
        assert isinstance(drop, ast.DropIndex)
        assert drop.if_exists

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_delete_with_where(self):
        stmt = parse("DELETE FROM t WHERE id = 3")
        assert isinstance(stmt, ast.Delete)
        assert stmt.where is not None

    def test_update_statement(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert [c for c, _e in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("ALTER TABLE t ADD COLUMN x INTEGER")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 SELECT 2")

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse("SELECT 1;"), ast.Select)


class TestParserSelect:
    def test_star_and_items(self):
        stmt = parse("SELECT *, a.x AS ax, COUNT(*) FROM t a")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].alias == "ax"
        assert isinstance(stmt.items[2].expr, ast.FuncCall)

    def test_qualified_star(self):
        stmt = parse("SELECT a.* FROM t a")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[0].expr.table == "a"

    def test_implicit_alias(self):
        stmt = parse("SELECT x foo FROM t")
        assert stmt.items[0].alias == "foo"

    def test_join_on(self):
        stmt = parse("SELECT 1 FROM a JOIN b ON a.id = b.id")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].condition is not None

    def test_inner_join(self):
        stmt = parse("SELECT 1 FROM a INNER JOIN b ON a.id = b.id")
        assert len(stmt.joins) == 1

    def test_cross_join_and_comma(self):
        stmt = parse("SELECT 1 FROM a CROSS JOIN b, c")
        assert len(stmt.joins) == 2
        assert all(j.condition is None for j in stmt.joins)

    def test_full_clause_stack(self):
        stmt = parse(
            "SELECT DISTINCT kind, COUNT(*) c FROM t WHERE x > 0 "
            "GROUP BY kind HAVING COUNT(*) > 1 "
            "ORDER BY c DESC, kind ASC LIMIT 5 OFFSET 2"
        )
        assert stmt.distinct
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert isinstance(stmt.limit, ast.Literal)
        assert isinstance(stmt.offset, ast.Literal)

    def test_select_without_from(self):
        stmt = parse("SELECT 1 + 2")
        assert stmt.source is None


class TestParserExpressions:
    def _expr(self, sql_fragment):
        return parse(f"SELECT {sql_fragment}").items[0].expr

    def test_precedence_arithmetic(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_precedence_bool(self):
        expr = self._expr("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = self._expr("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "not"

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = self._expr("-x")
        assert isinstance(expr, ast.UnaryOp)

    def test_between(self):
        expr = self._expr("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = self._expr("x NOT BETWEEN 1 AND 5")
        assert expr.negated

    def test_in_list(self):
        expr = self._expr("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.options) == 3

    def test_is_null(self):
        assert isinstance(self._expr("x IS NULL"), ast.IsNull)
        expr = self._expr("x IS NOT NULL")
        assert expr.negated

    def test_like(self):
        expr = self._expr("name LIKE 'a%'")
        assert expr.op == "like"

    def test_function_nested(self):
        expr = self._expr("ST_Area(ST_Buffer(geom, 10))")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "st_area"
        assert isinstance(expr.args[0], ast.FuncCall)

    def test_count_distinct(self):
        expr = self._expr("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_envelope_operator(self):
        expr = self._expr("a.geom && b.geom")
        assert expr.op == "&&"

    def test_qualified_column(self):
        expr = self._expr("t.col")
        assert isinstance(expr, ast.ColumnRef)
        assert expr.table == "t"

    def test_params_numbered_in_order(self):
        stmt = parse("SELECT ? FROM t WHERE a = ? AND b = ?")
        params = []

        def walk(e):
            if isinstance(e, ast.Param):
                params.append(e.index)
            elif isinstance(e, ast.BinaryOp):
                walk(e.left)
                walk(e.right)

        walk(stmt.items[0].expr)
        walk(stmt.where)
        assert params == [0, 1, 2]

    def test_null_true_false_literals(self):
        assert self._expr("NULL").value is None
        assert self._expr("TRUE").value is True
        assert self._expr("FALSE").value is False
