"""Unit tests for geodetic (spherical) measurements."""

import math

import pytest

from repro.algorithms.geodesy import (
    EARTH_RADIUS_M,
    destination,
    haversine_m,
    sphere_area_m2,
    sphere_distance_m,
    sphere_length_m,
)
from repro.engines import Database
from repro.errors import GeometryError, UnsupportedFeatureError
from repro.geometry import LineString, Point, Polygon


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m((10, 20), (10, 20)) == 0.0

    def test_one_degree_longitude_at_equator(self):
        got = haversine_m((0, 0), (1, 0))
        expected = math.radians(1) * EARTH_RADIUS_M
        assert got == pytest.approx(expected, rel=1e-9)

    def test_one_degree_longitude_at_60_north_is_half(self):
        at_equator = haversine_m((0, 0), (1, 0))
        at_60 = haversine_m((0, 60), (1, 60))
        assert at_60 == pytest.approx(at_equator / 2.0, rel=1e-3)

    def test_pole_to_pole(self):
        got = haversine_m((0, -90), (0, 90))
        assert got == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)

    def test_known_city_pair(self):
        # London (-0.1276, 51.5072) to Paris (2.3522, 48.8566) ~ 343-344 km
        got = haversine_m((-0.1276, 51.5072), (2.3522, 48.8566))
        assert got == pytest.approx(343_500, rel=0.01)

    def test_symmetry(self):
        a, b = (-97.7, 30.3), (-95.4, 29.8)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))

    def test_rejects_non_lonlat(self):
        with pytest.raises(GeometryError):
            haversine_m((200, 0), (0, 0))
        with pytest.raises(GeometryError):
            haversine_m((0, 0), (0, 91))


class TestDestination:
    def test_east_at_equator(self):
        lon, lat = destination((0, 0), 90.0, 111_195.0)
        assert lat == pytest.approx(0.0, abs=1e-9)
        assert lon == pytest.approx(1.0, rel=1e-3)

    def test_north(self):
        lon, lat = destination((10, 0), 0.0, 111_195.0)
        assert lon == pytest.approx(10.0, abs=1e-9)
        assert lat == pytest.approx(1.0, rel=1e-3)

    def test_roundtrip_with_haversine(self):
        start = (-97.7, 30.3)
        end = destination(start, 37.0, 25_000.0)
        assert haversine_m(start, end) == pytest.approx(25_000.0, rel=1e-6)


class TestSphereLengthArea:
    def test_line_length(self):
        line = LineString([(0, 0), (1, 0), (2, 0)])
        expected = 2 * haversine_m((0, 0), (1, 0))
        assert sphere_length_m(line) == pytest.approx(expected)

    def test_point_has_no_length(self):
        assert sphere_length_m(Point(5, 5)) == 0.0

    def test_small_square_area_close_to_planar(self):
        # a 0.1 x 0.1 degree square at the equator
        side = haversine_m((0, 0), (0.1, 0))
        square = Polygon([(0, 0), (0.1, 0), (0.1, 0.1), (0, 0.1)])
        got = sphere_area_m2(square)
        assert got == pytest.approx(side * side, rel=1e-3)

    def test_area_shrinks_with_latitude(self):
        at_equator = sphere_area_m2(
            Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        )
        at_60 = sphere_area_m2(
            Polygon([(0, 60), (1, 60), (1, 61), (0, 61)])
        )
        assert at_60 < at_equator * 0.6

    def test_hole_subtracts(self):
        outer = Polygon(
            [(0, 0), (2, 0), (2, 2), (0, 2)],
            holes=[[(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)]],
        )
        full = sphere_area_m2(Polygon([(0, 0), (2, 0), (2, 2), (0, 2)]))
        hole = sphere_area_m2(
            Polygon([(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)])
        )
        assert sphere_area_m2(outer) == pytest.approx(full - hole, rel=1e-9)

    def test_lineal_geometry_has_no_area(self):
        assert sphere_area_m2(LineString([(0, 0), (1, 1)])) == 0.0


class TestSphereDistance:
    def test_point_geometries(self):
        a, b = Point(-0.1276, 51.5072), Point(2.3522, 48.8566)
        assert sphere_distance_m(a, b) == pytest.approx(
            haversine_m(a.coord, b.coord)
        )

    def test_vertex_sampled_minimum(self):
        line = LineString([(0, 0), (0, 10)])
        point = Point(1, 5)
        got = sphere_distance_m(point, line)
        assert got <= haversine_m((1, 5), (0, 0))


class TestSqlIntegration:
    def test_geodetic_functions_on_exact_engines(self):
        for engine in ("greenwood", "ironbark"):
            db = Database(engine)
            got = db.execute(
                "SELECT ST_DistanceSphere(ST_Point(0, 0), ST_Point(1, 0))"
            ).scalar()
            assert got == pytest.approx(
                math.radians(1) * EARTH_RADIUS_M, rel=1e-9
            )

    def test_bluestem_lacks_geodetic_support(self):
        db = Database("bluestem")
        with pytest.raises(UnsupportedFeatureError):
            db.execute(
                "SELECT ST_DistanceSphere(ST_Point(0, 0), ST_Point(1, 0))"
            )

    def test_planar_vs_geodetic_divergence(self):
        # the motivating example: planar 'distance' of one degree of
        # longitude is the same at every latitude; geodetic is not
        db = Database("greenwood")
        planar_eq = db.execute(
            "SELECT ST_Distance(ST_Point(0, 0), ST_Point(1, 0))"
        ).scalar()
        planar_60 = db.execute(
            "SELECT ST_Distance(ST_Point(0, 60), ST_Point(1, 60))"
        ).scalar()
        assert planar_eq == planar_60 == 1.0
        sphere_eq = db.execute(
            "SELECT ST_DistanceSphere(ST_Point(0, 0), ST_Point(1, 0))"
        ).scalar()
        sphere_60 = db.execute(
            "SELECT ST_DistanceSphere(ST_Point(0, 60), ST_Point(1, 60))"
        ).scalar()
        assert sphere_60 < sphere_eq * 0.6
