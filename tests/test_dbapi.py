"""Unit tests for the PEP 249 driver surface."""

import pytest

import repro.dbapi as dbapi
from repro.dbapi import connect
from repro.errors import SqlError


class TestModuleGlobals:
    def test_pep249_attributes(self):
        assert dbapi.apilevel == "2.0"
        assert dbapi.paramstyle == "qmark"
        assert dbapi.threadsafety in (0, 1, 2, 3)

    def test_exception_hierarchy(self):
        assert issubclass(dbapi.DatabaseError, dbapi.Error)
        assert issubclass(dbapi.ProgrammingError, dbapi.Error)
        assert issubclass(dbapi.NotSupportedError, dbapi.Error)


@pytest.fixture
def conn():
    connection = connect("greenwood")
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (id INTEGER, name TEXT)")
    cur.executemany(
        "INSERT INTO t VALUES (?, ?)",
        [(1, "a"), (2, "b"), (3, "c")],
    )
    yield connection
    connection.close()


class TestCursor:
    def test_description_after_select(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id, name FROM t")
        assert [d[0] for d in cur.description] == ["id", "name"]

    def test_description_none_for_ddl(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE TABLE other (x INTEGER)")
        assert cur.description is None

    def test_rowcount_insert(self, conn):
        cur = conn.cursor()
        cur.execute("INSERT INTO t VALUES (4, 'd'), (5, 'e')")
        assert cur.rowcount == 2

    def test_rowcount_before_execute(self, conn):
        assert conn.cursor().rowcount == -1

    def test_fetchone_sequencing(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM t ORDER BY id")
        assert cur.fetchone() == (1,)
        assert cur.fetchone() == (2,)
        assert cur.fetchone() == (3,)
        assert cur.fetchone() is None

    def test_fetchmany_default_arraysize(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM t ORDER BY id")
        assert cur.fetchmany() == [(1,)]
        cur.arraysize = 2
        assert cur.fetchmany() == [(2,), (3,)]

    def test_fetchall_after_partial(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM t ORDER BY id")
        cur.fetchone()
        assert cur.fetchall() == [(2,), (3,)]

    def test_iteration(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM t ORDER BY id")
        assert [row for row in cur] == [(1,), (2,), (3,)]

    def test_fetch_before_execute_raises(self, conn):
        with pytest.raises(SqlError):
            conn.cursor().fetchone()

    def test_executemany_total_rowcount(self, conn):
        cur = conn.cursor()
        cur.executemany("INSERT INTO t VALUES (?, ?)", [(7, "x"), (8, "y")])
        assert cur.rowcount == 2

    def test_closed_cursor_rejects_use(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(SqlError):
            cur.execute("SELECT 1")

    def test_context_manager(self, conn):
        with conn.cursor() as cur:
            cur.execute("SELECT 1")
            assert cur.fetchone() == (1,)

    def test_execute_returns_cursor_for_chaining(self, conn):
        got = conn.cursor().execute("SELECT id FROM t ORDER BY id").fetchone()
        assert got == (1,)


class TestConnection:
    def test_closed_connection_rejects_cursor(self):
        conn = connect("greenwood")
        conn.close()
        with pytest.raises(SqlError):
            conn.cursor()

    def test_commit_rollback_are_noops(self, conn):
        conn.commit()
        conn.rollback()

    def test_shared_database(self):
        from repro.engines import Database

        db = Database("greenwood")
        first = connect(database=db)
        first.cursor().execute("CREATE TABLE shared (x INTEGER)")
        second = connect(database=db)
        second.cursor().execute("INSERT INTO shared VALUES (1)")
        cur = first.cursor()
        cur.execute("SELECT COUNT(*) FROM shared")
        assert cur.fetchone() == (1,)

    def test_stats_exposed(self, conn):
        conn.stats.reset()
        cur = conn.cursor()
        cur.execute("SELECT COUNT(*) FROM t")
        cur.fetchall()
        assert conn.stats.rows_scanned >= 3

    def test_not_supported_error_raised(self):
        conn = connect("bluestem")
        cur = conn.cursor()
        cur.execute("CREATE TABLE g (geom GEOMETRY)")
        cur.execute("INSERT INTO g VALUES (ST_Point(0, 0))")
        with pytest.raises(dbapi.NotSupportedError):
            cur.execute("SELECT ST_ConvexHull(geom) FROM g")


def _all_public_errors():
    """Every public exception class defined in repro.errors."""
    import inspect

    from repro import errors as errors_module
    from repro.errors import ReproError

    return sorted(
        (
            obj
            for _name, obj in inspect.getmembers(errors_module, inspect.isclass)
            if issubclass(obj, ReproError)
            and obj.__module__ == errors_module.__name__
        ),
        key=lambda cls: cls.__name__,
    )


class TestErrorMapping:
    """The PEP 249 mapping must stay total over the library hierarchy."""

    @pytest.mark.parametrize(
        "error_cls", _all_public_errors(),
        ids=lambda cls: cls.__name__,
    )
    def test_every_library_error_has_a_pep249_home(self, error_cls):
        assert error_cls in dbapi.ERROR_MAP, (
            f"{error_cls.__name__} is missing from dbapi.ERROR_MAP — "
            f"map it to a PEP 249 name"
        )
        pep_name = dbapi.ERROR_MAP[error_cls]
        # catching the mapped PEP 249 name must catch the library error
        assert issubclass(error_cls, pep_name)
        # and every mapped name must itself be catchable as dbapi.Error
        assert issubclass(pep_name, dbapi.Error)

    @pytest.mark.parametrize(
        "error_cls", _all_public_errors(),
        ids=lambda cls: cls.__name__,
    )
    def test_error_class_resolves_via_mro(self, error_cls):
        assert dbapi.error_class(error_cls) is dbapi.ERROR_MAP[error_cls]

    def test_error_class_accepts_instances_and_subclasses(self):
        from repro.errors import QueryTimeoutError

        class Custom(QueryTimeoutError):
            pass

        assert dbapi.error_class(Custom("x")) is dbapi.OperationalError

    def test_operational_errors_for_guardrails(self):
        from repro.errors import (
            InjectedFaultError,
            MemoryBudgetError,
            QueryCancelledError,
            QueryTimeoutError,
        )

        for cls in (QueryTimeoutError, QueryCancelledError,
                    MemoryBudgetError, InjectedFaultError):
            assert issubclass(cls, dbapi.OperationalError)

    def test_integrity_error_for_dump_corruption(self):
        from repro.errors import DumpCorruptionError

        assert issubclass(DumpCorruptionError, dbapi.IntegrityError)

    def test_interface_error_is_its_own_family(self):
        conn = connect("greenwood")
        conn.close()
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()
