"""End-to-end request tracing: trace-context propagation, the linked
client+server+executor span tree, the tail-sampling flight recorder, the
``jackpine_requests`` system view, the slow log, and the server-side
wait attribution for ``--server`` workloads."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.datagen.tiger import generate
from repro.engines import Database
from repro.obs.requests import (
    RECORDER,
    FlightRecorder,
    RequestRecord,
    SlowLog,
    TraceContext,
    chrome_trace,
    new_trace_id,
    read_slow_log,
)
from repro.obs.waits import NET_RECV, NET_SEND, SERVICE_QUEUE, WAITS
from repro.service import JackpineServer, ServerConfig, ServiceClient


@pytest.fixture(scope="module")
def database():
    db = Database("greenwood")
    generate(scale=0.05, seed=7).load_into(db)
    return db


@pytest.fixture()
def fresh_recorder():
    """The module global, zeroed before and after — servers always file
    into RECORDER, so tests share it the way jackpine_waits tests share
    WAITS."""
    RECORDER.reset()
    RECORDER.configure(slow_threshold=0.1)
    yield RECORDER
    RECORDER.reset()
    RECORDER.disable()


def _traced_server(database, **overrides):
    config = dict(pool_size=2, trace=True, trace_slow_ms=0.0)
    config.update(overrides)
    return JackpineServer(database, ServerConfig(**config))


# ---------------------------------------------------------------------------
# trace context + ids
# ---------------------------------------------------------------------------


def test_trace_ids_are_unique_and_stringy():
    ids = {new_trace_id() for _ in range(1000)}
    assert len(ids) == 1000
    assert all(isinstance(t, str) and len(t) == 20 for t in ids)


def test_trace_context_wire_round_trip():
    ctx = TraceContext.fresh()
    back = TraceContext.from_wire(ctx.to_wire())
    assert back.trace_id == ctx.trace_id
    assert back.span_id == ctx.span_id
    assert back.sent_at == pytest.approx(ctx.sent_at)


def test_malformed_trace_context_is_dropped_not_fatal():
    # compatibility rule: bad trace metadata must never fail a request
    for junk in (None, 42, "x", [], {"trace_id": 7}, {"trace_id": ""},
                 {"span_id": "only"}):
        assert TraceContext.from_wire(junk) is None
    tolerated = TraceContext.from_wire(
        {"trace_id": "t" * 200, "sent_at": "not-a-float"}
    )
    assert tolerated is not None
    assert len(tolerated.trace_id) == 64  # clamped
    assert tolerated.sent_at is None


# ---------------------------------------------------------------------------
# tail sampling (recorder unit level)
# ---------------------------------------------------------------------------


def _finish(recorder, outcome="ok", cache_status=None, sleep=0.0,
            sent_at=None):
    ctx = TraceContext.fresh()
    if sent_at is not None:
        ctx.sent_at = sent_at
    pending = recorder.begin(ctx, "SELECT 1")
    if sleep:
        time.sleep(sleep)
    pending.cache_status = cache_status
    pending.complete(outcome)
    return recorder.finish(pending)


def test_fast_ok_requests_are_compact_not_retained(fresh_recorder):
    record = _finish(fresh_recorder)
    assert not record.retained
    assert record.root is None
    assert fresh_recorder.stats()["retained"] == 0
    assert fresh_recorder.stats()["total"] == 1


@pytest.mark.parametrize("outcome", ["sql", "timeout", "overloaded",
                                     "shed_queue_full", "internal"])
def test_non_ok_outcomes_are_tail_sampled(fresh_recorder, outcome):
    record = _finish(fresh_recorder, outcome=outcome)
    assert record.retained
    assert record.root is not None


def test_slow_requests_are_tail_sampled(fresh_recorder):
    fresh_recorder.configure(slow_threshold=0.005)
    record = _finish(fresh_recorder, sleep=0.02)
    assert record.retained


def test_cache_stale_adjacent_requests_are_tail_sampled(fresh_recorder):
    assert _finish(fresh_recorder, cache_status="stale").retained
    assert not _finish(fresh_recorder, cache_status="hit").retained


def test_shed_flag_tracks_outcome(fresh_recorder):
    assert _finish(fresh_recorder, outcome="shed_queue_full").shed
    assert _finish(fresh_recorder, outcome="overloaded").shed
    assert not _finish(fresh_recorder, outcome="sql").shed


def test_ring_is_bounded(fresh_recorder):
    fresh_recorder.configure(capacity=8)
    for _ in range(20):
        _finish(fresh_recorder)
    stats = fresh_recorder.stats()
    assert stats["buffered"] == 8
    assert stats["total"] == 20
    assert stats["dropped"] == 12
    fresh_recorder.configure(capacity=FlightRecorder.DEFAULT_CAPACITY)


def test_clock_skew_is_clamped_by_causality(fresh_recorder):
    # a client clock running ahead claims it sent *after* the server
    # started — impossible; the skew is normalized out and reported
    record = _finish(fresh_recorder, outcome="sql",
                     sent_at=time.time() + 5.0)
    assert record.clock_skew_seconds == pytest.approx(5.0, abs=0.5)
    client_span = record.root
    assert client_span.op == "client.request"
    server_span = client_span.children[0]
    assert server_span.op == "service.request"
    assert client_span.started <= server_span.started


def test_record_dict_round_trip(fresh_recorder):
    record = _finish(fresh_recorder, outcome="timeout")
    back = RequestRecord.from_dict(
        json.loads(json.dumps(record.as_dict()))
    )
    assert back.trace_id == record.trace_id
    assert back.outcome == "timeout"
    assert back.retained
    assert back.root is not None and back.root.op == record.root.op


# ---------------------------------------------------------------------------
# slow log
# ---------------------------------------------------------------------------


def test_slow_log_rotates_by_size(tmp_path):
    path = str(tmp_path / "slow.jsonl")
    log = SlowLog(path, max_bytes=2048)
    recorder = FlightRecorder(slow_threshold=0.0)
    recorder.configure(slow_log=log)
    for _ in range(40):
        ctx = TraceContext.fresh()
        pending = recorder.begin(ctx, "SELECT * FROM counties")
        pending.complete("ok")
        recorder.finish(pending)
    recorder.close_log()
    assert os.path.exists(path)
    assert os.path.exists(path + ".1")
    assert os.path.getsize(path) <= 2048
    assert os.path.getsize(path + ".1") <= 2048
    records = read_slow_log(path)
    assert records, "rotation must not lose every record"
    assert all(r.retained for r in records)
    # oldest-first merge: trace ids carry a monotonic per-process
    # counter suffix, so the merged read must come back sorted
    assert [r.trace_id for r in records] == sorted(
        r.trace_id for r in records
    )


def test_slow_log_only_gets_retained_records(tmp_path, fresh_recorder):
    path = str(tmp_path / "slow.jsonl")
    fresh_recorder.configure(slow_log=SlowLog(path))
    _finish(fresh_recorder)                      # fast ok: not logged
    _finish(fresh_recorder, outcome="sql")       # errored: logged
    fresh_recorder.close_log()
    records = read_slow_log(path)
    assert len(records) == 1
    assert records[0].outcome == "sql"


# ---------------------------------------------------------------------------
# the acceptance path: one linked trace across both processes
# ---------------------------------------------------------------------------


def test_one_request_yields_one_linked_tree(database, fresh_recorder):
    with _traced_server(database) as server:
        client = ServiceClient.from_address(server.address)
        try:
            result = client.execute(
                "SELECT COUNT(*) FROM counties WHERE gid < ?", (50,)
            )
        finally:
            client.close()
        assert result.trace_id is not None
        record = RECORDER.lookup(result.trace_id)
        assert record is not None and record.retained
        # client span -> service.request -> lifecycle stages, in order
        root = record.root
        assert root.op == "client.request"
        (request,) = root.children
        assert request.op == "service.request"
        ops = [child.op for child in request.children]
        assert ops == ["net.recv", "queue.wait", "session.acquire",
                       "cache.lookup", "execute", "net.send"]
        # the cache missed (first execution) and the executor SpanNode
        # tree is parented under the execute stage
        assert record.cache_status == "miss"
        execute = request.children[ops.index("execute")]
        assert execute.children, "executor trace must parent here"
        operator_ops = {s.op for _d, s in execute.children[0].walk()}
        assert operator_ops & {"SeqScan", "IndexScan", "Project",
                               "Aggregate", "Filter"}
        # stage timings are also on the compact record
        for stage in ("net.recv", "queue.wait", "session.acquire",
                      "cache.lookup", "execute", "net.send"):
            assert stage in record.stage_seconds
        # timestamps are epoch-normalized and causally ordered
        assert root.started <= request.started
        for child in request.children:
            assert child.started >= root.started - 1e-6


def test_trace_queryable_via_jackpine_requests_view(database,
                                                    fresh_recorder):
    with _traced_server(database) as server:
        client = ServiceClient.from_address(server.address)
        try:
            result = client.execute("SELECT COUNT(*) FROM pointlm")
            # queried THROUGH the server: the view reads the recorder
            rows = client.execute(
                "SELECT trace_id, outcome, retained, exec_seconds "
                "FROM jackpine_requests"
            ).rows
        finally:
            client.close()
    by_id = {row[0]: row for row in rows}
    assert result.trace_id in by_id
    row = by_id[result.trace_id]
    assert row[1] == "ok"
    assert row[2] == 1
    assert row[3] is not None and row[3] >= 0.0


def test_chrome_trace_merges_client_and_server_tracks(database,
                                                      fresh_recorder):
    with _traced_server(database) as server:
        client = ServiceClient.from_address(server.address)
        try:
            result = client.execute("SELECT COUNT(*) FROM counties")
        finally:
            client.close()
    record = RECORDER.lookup(result.trace_id)
    doc = chrome_trace(record)
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    pids = {e["pid"] for e in events}
    assert pids == {1, 2}, "client and server tracks"
    names = {e["name"] for e in events}
    assert {"client.request", "service.request", "execute"} <= names
    assert all(e["ts"] >= 0 for e in events)
    metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {"client", "server"}
    assert doc["otherData"]["trace_id"] == record.trace_id
    json.dumps(doc)  # must be a writable chrome://tracing file


def test_chrome_trace_refuses_unretained_records(fresh_recorder):
    record = _finish(fresh_recorder)  # fast ok: compact only
    with pytest.raises(ValueError):
        chrome_trace(record)


def test_trace_cli_dumps_chrome_file(database, fresh_recorder, tmp_path,
                                     capsys):
    from repro.cli import main

    with _traced_server(database) as server:
        client = ServiceClient.from_address(server.address)
        try:
            result = client.execute("SELECT COUNT(*) FROM areawater")
        finally:
            client.close()
    out = str(tmp_path / "req.trace.json")
    assert main(["trace", result.trace_id, "-o", out]) == 0
    doc = json.loads(open(out).read())
    assert doc["otherData"]["trace_id"] == result.trace_id
    # listing mode prints every buffered request
    assert main(["trace"]) == 0
    assert result.trace_id in capsys.readouterr().out
    # unknown ids are a clean nonzero exit, not a stack trace
    assert main(["trace", "does-not-exist", "-o", out]) == 1


def test_cache_hit_and_stale_statuses_reach_records(database,
                                                    fresh_recorder):
    with _traced_server(database) as server:
        client = ServiceClient.from_address(server.address)
        try:
            client.execute(
                "CREATE TABLE trace_probe (gid INTEGER, geom GEOMETRY)"
            )
            client.execute(
                "INSERT INTO trace_probe VALUES (1, ST_Point(0, 0))"
            )
            first = client.execute("SELECT COUNT(*) FROM trace_probe")
            second = client.execute("SELECT COUNT(*) FROM trace_probe")
            # a committed write bumps the watermark: next lookup is stale
            client.execute(
                "INSERT INTO trace_probe VALUES (2, ST_Point(1, 1))"
            )
            third = client.execute("SELECT COUNT(*) FROM trace_probe")
        finally:
            client.close()
    assert RECORDER.lookup(first.trace_id).cache_status == "miss"
    hit = RECORDER.lookup(second.trace_id)
    assert hit.cache_status == "hit"
    assert second.cached
    stale = RECORDER.lookup(third.trace_id)
    assert stale.cache_status == "stale"
    assert stale.retained, "stale-adjacent requests are tail-sampled"


# ---------------------------------------------------------------------------
# compatibility: old clients, untraced servers
# ---------------------------------------------------------------------------


def test_contextless_old_client_still_works_and_is_traced(database,
                                                          fresh_recorder):
    with _traced_server(database) as server:
        client = ServiceClient.from_address(server.address, trace=False)
        try:
            result = client.execute("SELECT COUNT(*) FROM counties")
        finally:
            client.close()
        # the wire request carried no trace field; the server minted a
        # context so the request is still diagnosable server-side
        assert result.trace_id is not None
        record = RECORDER.lookup(result.trace_id)
        assert record is not None
        assert record.sent_at is None
        assert record.root.op == "service.request"  # no client span


def test_traced_client_against_untraced_server(database, fresh_recorder):
    before = RECORDER.stats()["total"]
    with JackpineServer(database, ServerConfig(pool_size=2)) as server:
        client = ServiceClient.from_address(server.address)  # trace=True
        try:
            result = client.execute("SELECT COUNT(*) FROM counties")
        finally:
            client.close()
    # the server ignored the additive field entirely: no echo, no record
    assert result.trace_id is None
    assert RECORDER.stats()["total"] == before


def test_untraced_server_stats_have_no_requests_key(database,
                                                    fresh_recorder):
    with JackpineServer(database, ServerConfig(pool_size=2)) as server:
        client = ServiceClient.from_address(server.address)
        try:
            stats = client.server_stats()
        finally:
            client.close()
    assert "requests" not in stats


# ---------------------------------------------------------------------------
# 16 concurrent clients: complete, correctly-parented, uncontaminated
# ---------------------------------------------------------------------------


def test_trace_trees_complete_under_16_concurrent_clients(database,
                                                          fresh_recorder):
    tables = ["counties", "edges", "pointlm", "arealm"]
    results = {}
    failures = []

    def body(slot: int) -> None:
        try:
            client = ServiceClient.from_address(server.address,
                                                timeout=30.0)
            try:
                mine = []
                for i in range(4):
                    table = tables[(slot + i) % len(tables)]
                    # distinct literal per (slot, i): every request is a
                    # cache miss, so every trace has an executor tree
                    sql = (f"SELECT COUNT(*) FROM {table} "
                           f"WHERE gid > {slot * 1000 + i}")
                    result = client.execute(sql)
                    mine.append((result.trace_id, sql))
                results[slot] = mine
            finally:
                client.close()
        except Exception as exc:  # noqa: BLE001 - reported below
            failures.append(exc)

    with _traced_server(database, pool_size=4, max_queue=128,
                        deadline=30.0, trace_capacity=256) as server:
        threads = [threading.Thread(target=body, args=(slot,))
                   for slot in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not failures, failures
    assert len(results) == 16
    for slot, mine in results.items():
        for trace_id, sql in mine:
            record = RECORDER.lookup(trace_id)
            assert record is not None, f"client {slot} lost {trace_id}"
            # no cross-thread contamination: the record's sql is the one
            # this client sent under this trace id
            assert record.sql == sql
            assert record.outcome == "ok"
            assert record.retained
            root = record.root
            assert root.op == "client.request"
            (request,) = root.children
            ops = [child.op for child in request.children]
            assert ops == ["net.recv", "queue.wait", "session.acquire",
                           "cache.lookup", "execute", "net.send"], (
                f"client {slot} {trace_id}: {ops}"
            )
            execute = request.children[ops.index("execute")]
            assert execute.children, (
                f"client {slot} {trace_id}: executor trace missing"
            )
            # the executor statement under this trace is the same sql
            statement_detail = execute.children[0]
            spans = [s for _d, s in statement_detail.walk()]
            assert spans, "non-empty statement subtree"


# ---------------------------------------------------------------------------
# satellite: Net/Service wait attribution for --server workloads
# ---------------------------------------------------------------------------


def test_server_workload_attributes_net_and_service_waits(database):
    from repro.workload.driver import WorkloadConfig, run_workload

    WAITS.enable()
    WAITS.reset()
    try:
        with JackpineServer(database, ServerConfig(pool_size=2)) as server:
            config = WorkloadConfig(
                clients=4, duration=0.6, mix="browse", mode="open",
                rate=10.0, seed=3, scale=0.05, waits=True,
                server=server.address,
            )
            report = run_workload(config)
    finally:
        WAITS.disable()
    attribution = report.attribution
    assert attribution is not None, \
        "--server --waits must produce a decomposition"
    summary = attribution.summary
    for event in (NET_RECV, NET_SEND, SERVICE_QUEUE):
        assert event in summary, f"{event} missing from {sorted(summary)}"
        assert summary[event]["count"] > 0
    assert attribution.busy_seconds == pytest.approx(
        report.wall_seconds * 2, rel=0.01
    )
    # and the decomposition reaches the telemetry document
    document = report.telemetry_document()
    assert "waits" in document
    assert NET_RECV in document["waits"]["events"]


def test_server_workload_config_rejects_storage_not_waits():
    from repro.workload.driver import WorkloadConfig

    WorkloadConfig(server="127.0.0.1:1", waits=True).validate()
    with pytest.raises(ValueError):
        WorkloadConfig(server="127.0.0.1:1", storage_dir="/tmp/x").validate()


# ---------------------------------------------------------------------------
# disabled-path discipline
# ---------------------------------------------------------------------------


def test_recorder_reset_and_stop_preserve_readability(database,
                                                      fresh_recorder):
    server = _traced_server(database)
    server.start()
    client = ServiceClient.from_address(server.address)
    try:
        result = client.execute("SELECT COUNT(*) FROM counties")
    finally:
        client.close()
        server.stop()
    # records survive the server that produced them (post-mortem reads)
    assert RECORDER.lookup(result.trace_id) is not None
    assert not RECORDER.enabled


def test_untraced_server_never_touches_the_recorder(database,
                                                    fresh_recorder,
                                                    monkeypatch):
    def explode(*_a, **_k):  # pragma: no cover - must not be called
        raise AssertionError("recorder touched on the untraced path")

    monkeypatch.setattr(RECORDER, "begin", explode)
    monkeypatch.setattr(RECORDER, "finish", explode)
    with JackpineServer(database, ServerConfig(pool_size=2)) as server:
        client = ServiceClient.from_address(server.address)
        try:
            result = client.execute("SELECT COUNT(*) FROM counties")
        finally:
            client.close()
    assert result.rows
