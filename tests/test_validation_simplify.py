"""Unit tests for validity/simplicity checks and Douglas-Peucker simplify."""

import pytest

from repro.algorithms.simplify import simplify, simplify_coords
from repro.algorithms.validation import (
    is_simple,
    is_valid,
    line_is_simple,
    polygon_validity_errors,
    ring_is_simple,
)
from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    Point,
    Polygon,
)


class TestRingSimple:
    def test_square_is_simple(self):
        assert ring_is_simple(((0, 0), (4, 0), (4, 4), (0, 4), (0, 0)))

    def test_bowtie_not_simple(self):
        assert not ring_is_simple(((0, 0), (4, 4), (4, 0), (0, 4), (0, 0)))

    def test_repeated_edge_not_simple(self):
        assert not ring_is_simple(
            ((0, 0), (4, 0), (0, 0), (4, 0), (4, 4), (0, 0))
        )


class TestLineSimple:
    def test_plain_line(self):
        assert line_is_simple(LineString([(0, 0), (5, 0), (5, 5)]))

    def test_self_crossing(self):
        assert not line_is_simple(
            LineString([(0, 0), (4, 4), (4, 0), (0, 4)])
        )

    def test_closed_ring_is_simple(self):
        assert line_is_simple(LineString([(0, 0), (4, 0), (4, 4), (0, 0)]))

    def test_self_touching_vertex(self):
        # passes through (2, 2) twice without crossing
        line = LineString([(0, 0), (2, 2), (4, 0), (4, 4), (2, 2), (0, 4)])
        assert not line_is_simple(line)


class TestPolygonValidity:
    def test_valid_donut(self, donut):
        assert is_valid(donut)
        assert polygon_validity_errors(donut) == []

    def test_hole_outside_shell(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(20, 20), (22, 20), (22, 22), (20, 22)]],
        )
        errors = polygon_validity_errors(poly)
        assert any("outside" in e for e in errors)
        assert not is_valid(poly)

    def test_hole_crossing_shell(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(5, 5), (15, 5), (15, 8), (5, 8)]],
        )
        assert not is_valid(poly)

    def test_nested_holes(self):
        poly = Polygon(
            [(0, 0), (20, 0), (20, 20), (0, 20)],
            holes=[
                [(2, 2), (18, 2), (18, 18), (2, 18)],
                [(5, 5), (8, 5), (8, 8), (5, 8)],
            ],
        )
        errors = polygon_validity_errors(poly)
        assert any("nested" in e for e in errors)

    def test_bowtie_shell_invalid(self):
        # asymmetric bowtie: nonzero signed area, so it constructs,
        # but the shell self-intersects
        poly = Polygon([(0, 0), (4, 4), (4, 0), (0, 6)])
        assert not is_valid(poly)

    def test_symmetric_bowtie_rejected_at_construction(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            Polygon([(0, 0), (4, 4), (4, 0), (0, 4)])

    def test_points_and_lines_trivially_valid(self, diagonal_line):
        assert is_valid(Point(1, 1))
        assert is_valid(diagonal_line)


class TestIsSimple:
    def test_multipoint_duplicates(self):
        assert not is_simple(MultiPoint([(0, 0), (0, 0)]))
        assert is_simple(MultiPoint([(0, 0), (1, 1)]))

    def test_multiline_crossing_members(self):
        crossing = MultiLineString([[(0, 0), (4, 4)], [(0, 4), (4, 0)]])
        assert not is_simple(crossing)

    def test_multiline_endpoint_touch_ok(self):
        chain = MultiLineString([[(0, 0), (2, 2)], [(2, 2), (4, 0)]])
        assert is_simple(chain)


class TestSimplifyCoords:
    def test_collinear_middle_dropped(self):
        got = simplify_coords([(0, 0), (5, 0.0), (10, 0)], 0.1)
        assert got == [(0, 0), (10, 0)]

    def test_significant_kink_kept(self):
        got = simplify_coords([(0, 0), (5, 3), (10, 0)], 0.1)
        assert len(got) == 3

    def test_tolerance_controls_detail(self):
        zigzag = [(i, (i % 2) * 0.5) for i in range(11)]
        fine = simplify_coords(zigzag, 0.01)
        coarse = simplify_coords(zigzag, 1.0)
        assert len(coarse) < len(fine)

    def test_two_points_unchanged(self):
        assert simplify_coords([(0, 0), (1, 1)], 10.0) == [(0, 0), (1, 1)]


class TestSimplifyGeometry:
    def test_linestring(self):
        line = LineString([(0, 0), (1, 0.001), (2, 0), (3, 0.001), (4, 0)])
        got = simplify(line, 0.1)
        assert got.num_points == 2
        assert got.length() == pytest.approx(4.0, rel=1e-3)

    def test_polygon_never_collapses(self):
        triangle = Polygon([(0, 0), (10, 0), (5, 0.5)])
        got = simplify(triangle, 5.0)
        assert isinstance(got, Polygon)
        assert got.area() > 0

    def test_point_unchanged(self, center_point):
        assert simplify(center_point, 100) == center_point

    def test_negative_tolerance_rejected(self, diagonal_line):
        with pytest.raises(ValueError):
            simplify(diagonal_line, -1.0)

    def test_endpoints_preserved(self):
        line = LineString([(0, 0), (3, 1), (7, -1), (10, 0)])
        got = simplify(line, 100.0)
        assert got.coords[0] == (0.0, 0.0)
        assert got.coords[-1] == (10.0, 0.0)
