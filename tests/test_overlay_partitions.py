"""Partition-based overlay stress tests.

A partition of a region (counties tiling the state, parcels tiling a
block) is the hardest practical overlay input: every internal border is a
shared edge. These tests check conservation laws over real generated
partitions rather than synthetic pairs.
"""

import pytest

from repro.algorithms import (
    area,
    difference,
    intersection,
    touches,
    union_all,
)
from repro.datagen import WORLD_SIZE, generate
from repro.geometry import Polygon


@pytest.fixture(scope="module")
def dataset():
    return generate(seed=17, scale=0.1)


class TestCountyPartition:
    def test_union_of_all_counties_is_the_state(self, dataset):
        counties = dataset.layer("counties").geometries()
        merged = union_all(counties)
        assert merged.area() == pytest.approx(
            WORLD_SIZE * WORLD_SIZE, rel=1e-9
        )

    def test_union_of_all_counties_is_one_polygon(self, dataset):
        counties = dataset.layer("counties").geometries()
        merged = union_all(counties)
        assert isinstance(merged, Polygon)
        assert len(merged.holes) == 0

    def test_pairwise_intersections_have_no_area(self, dataset):
        counties = dataset.layer("counties").geometries()
        for i in range(len(counties)):
            for j in range(i + 1, len(counties)):
                inter = intersection(counties[i], counties[j])
                if not inter.is_empty:
                    assert inter.dimension <= 1  # shared border only

    def test_row_union_area_is_sum(self, dataset):
        counties = dataset.layer("counties").geometries()[:5]  # first row
        merged = union_all(counties)
        assert merged.area() == pytest.approx(
            sum(area(c) for c in counties), rel=1e-9
        )

    def test_state_minus_county_leaves_complement(self, dataset):
        counties = dataset.layer("counties").geometries()
        state = Polygon(
            [(0, 0), (WORLD_SIZE, 0), (WORLD_SIZE, WORLD_SIZE),
             (0, WORLD_SIZE)]
        )
        victim = counties[7]
        rest = difference(state, victim)
        assert rest.area() == pytest.approx(
            state.area() - area(victim), rel=1e-9
        )


class TestParcelBlocks:
    def test_block_union_is_rectangle(self, dataset):
        parcels = dataset.layer("parcels")
        fips_idx = parcels.columns.index("county_fips")
        geom_idx = parcels.columns.index("geom")
        first_fips = parcels.rows[0][fips_idx]
        block = [
            row[geom_idx]
            for row in parcels.rows
            if row[fips_idx] == first_fips
        ]
        merged = union_all(block)
        assert isinstance(merged, Polygon)
        assert merged.area() == pytest.approx(
            sum(area(p) for p in block), rel=1e-9
        )
        # the merged block is an axis-aligned rectangle: area == envelope area
        assert merged.area() == pytest.approx(merged.envelope.area, rel=1e-9)

    def test_neighbours_touch_not_overlap(self, dataset):
        parcels = dataset.layer("parcels").geometries()[:12]
        for i in range(len(parcels)):
            for j in range(i + 1, len(parcels)):
                if touches(parcels[i], parcels[j]):
                    inter = intersection(parcels[i], parcels[j])
                    assert inter.dimension <= 1

    def test_checkerboard_union(self):
        """Union of alternating cells: corner-touching squares merge into
        one valid multipart or connected result without losing area."""
        cells = [
            Polygon([(i, j), (i + 1, j), (i + 1, j + 1), (i, j + 1)])
            for i in range(4)
            for j in range(4)
            if (i + j) % 2 == 0
        ]
        merged = union_all(cells)
        assert area(merged) == pytest.approx(len(cells) * 1.0, rel=1e-9)
