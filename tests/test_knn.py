"""Tests for the KNN operator (<->) and the best-first KNN scan rewrite."""

import random

import pytest

from repro.engines import Database


@pytest.fixture
def db():
    database = Database("greenwood")
    database.execute("CREATE TABLE sites (id INTEGER, geom GEOMETRY)")
    rng = random.Random(4)
    rows = ", ".join(
        f"({i}, ST_Point({rng.uniform(0, 1000):.3f}, {rng.uniform(0, 1000):.3f}))"
        for i in range(300)
    )
    database.execute(f"INSERT INTO sites VALUES {rows}")
    database.execute("CREATE SPATIAL INDEX six ON sites (geom)")
    return database


KNN_SQL = (
    "SELECT id FROM sites ORDER BY geom <-> ST_Point(500, 500) LIMIT 5"
)
BRUTE_SQL = (
    "SELECT id FROM sites "
    "ORDER BY ST_Distance(geom, ST_Point(500, 500)) LIMIT 5"
)


class TestOperator:
    def test_distance_value(self, db):
        got = db.execute(
            "SELECT ST_Point(0, 0) <-> ST_Point(3, 4)"
        ).scalar()
        assert got == 5.0

    def test_null_propagates(self, db):
        got = db.execute("SELECT NULL <-> ST_Point(0, 0)").scalar()
        assert got is None

    def test_non_geometry_rejected(self, db):
        from repro.errors import SqlPlanError

        with pytest.raises(SqlPlanError):
            db.execute("SELECT 1 <-> 2")


class TestKnnRewrite:
    def test_plan_uses_knn_scan(self, db):
        assert "KNNScan" in db.explain(KNN_SQL)

    def test_results_match_brute_force(self, db):
        knn = [r[0] for r in db.execute(KNN_SQL).rows]
        brute = [r[0] for r in db.execute(BRUTE_SQL).rows]
        assert knn == brute

    def test_many_probe_points_match(self, db):
        rng = random.Random(9)
        for _ in range(10):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            knn = db.execute(
                f"SELECT id FROM sites ORDER BY geom <-> ST_Point({x:.2f}, {y:.2f}) "
                f"LIMIT 7"
            ).rows
            brute = db.execute(
                f"SELECT id FROM sites "
                f"ORDER BY ST_Distance(geom, ST_Point({x:.2f}, {y:.2f})) LIMIT 7"
            ).rows
            assert knn == brute

    def test_offset_respected(self, db):
        full = db.execute(
            "SELECT id FROM sites ORDER BY geom <-> ST_Point(1, 1) LIMIT 6"
        ).rows
        tail = db.execute(
            "SELECT id FROM sites ORDER BY geom <-> ST_Point(1, 1) "
            "LIMIT 3 OFFSET 3"
        ).rows
        assert tail == full[3:]

    def test_k_larger_than_table(self, db):
        got = db.execute(
            "SELECT id FROM sites ORDER BY geom <-> ST_Point(0, 0) LIMIT 9999"
        )
        assert len(got.rows) == 300

    def test_no_rewrite_without_index(self, db):
        db.execute("CREATE TABLE bare (id INTEGER, geom GEOMETRY)")
        db.execute("INSERT INTO bare VALUES (1, ST_Point(0, 0))")
        plan = db.explain(
            "SELECT id FROM bare ORDER BY geom <-> ST_Point(1, 1) LIMIT 1"
        )
        assert "KNNScan" not in plan
        assert "Sort" in plan

    def test_no_rewrite_with_where(self, db):
        plan = db.explain(
            "SELECT id FROM sites WHERE id > 10 "
            "ORDER BY geom <-> ST_Point(1, 1) LIMIT 1"
        )
        assert "KNNScan" not in plan

    def test_unoptimized_path_still_correct(self, db):
        with_where = db.execute(
            "SELECT id FROM sites WHERE id < 50 "
            "ORDER BY geom <-> ST_Point(500, 500) LIMIT 3"
        ).rows
        brute = db.execute(
            "SELECT id FROM sites WHERE id < 50 "
            "ORDER BY ST_Distance(geom, ST_Point(500, 500)) LIMIT 3"
        ).rows
        assert with_where == brute

    def test_non_point_probe_falls_back_exactly(self, db):
        knn = db.execute(
            "SELECT id FROM sites ORDER BY geom <-> "
            "ST_MakeEnvelope(400, 400, 600, 600) LIMIT 4"
        ).rows
        brute = db.execute(
            "SELECT id FROM sites ORDER BY ST_Distance(geom, "
            "ST_MakeEnvelope(400, 400, 600, 600)) LIMIT 4"
        ).rows
        assert knn == brute

    def test_knn_scan_on_lines(self, greenwood_db):
        """Exactness on extended geometries: envelope bound != exact."""
        from repro.dbapi import connect

        cur = connect(database=greenwood_db).cursor()
        cur.execute(
            "SELECT gid FROM edges ORDER BY geom <-> ST_Point(50000, 50000) "
            "LIMIT 5"
        )
        knn = cur.fetchall()
        cur.execute(
            "SELECT gid FROM edges "
            "ORDER BY ST_Distance(geom, ST_Point(50000, 50000)) LIMIT 5"
        )
        assert knn == cur.fetchall()


class TestAllIndexKinds:
    @pytest.mark.parametrize("kind", ["rtree", "grid", "quadtree"])
    def test_knn_per_index_kind(self, kind):
        db = Database("greenwood")
        db.execute("CREATE TABLE p (id INTEGER, geom GEOMETRY)")
        rng = random.Random(11)
        rows = ", ".join(
            f"({i}, ST_Point({rng.uniform(0, 100):.2f}, "
            f"{rng.uniform(0, 100):.2f}))"
            for i in range(80)
        )
        db.execute(f"INSERT INTO p VALUES {rows}")
        db.execute(f"CREATE SPATIAL INDEX px ON p (geom) USING {kind}")
        knn = db.execute(
            "SELECT id FROM p ORDER BY geom <-> ST_Point(50, 50) LIMIT 5"
        ).rows
        brute = db.execute(
            "SELECT id FROM p ORDER BY ST_Distance(geom, ST_Point(50, 50)) "
            "LIMIT 5"
        ).rows
        assert knn == brute
