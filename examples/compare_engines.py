"""Engine comparison: the paper's headline experiment in one script.

Runs a representative slice of the benchmark against all three engine
profiles and prints the comparison table, including the answer-cardinality
gap the MBR-only engine exhibits — the *functional* difference the paper
highlights alongside raw performance.

Run with::

    python examples/compare_engines.py [--scale 0.3]
"""

import argparse
import time

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import ENGINE_NAMES, Database
from repro.errors import UnsupportedFeatureError

PROBES = [
    (
        "window query (indexed)",
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(20000, 20000, 45000, 45000))",
    ),
    (
        "point-in-polygon join",
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)",
    ),
    (
        "county adjacency (touches)",
        "SELECT COUNT(*) FROM counties a JOIN counties b "
        "ON ST_Touches(a.geom, b.geom) WHERE a.gid < b.gid",
    ),
    (
        "water overlap (exact refine)",
        "SELECT COUNT(*) FROM arealm a JOIN areawater w "
        "ON ST_Overlaps(a.geom, w.geom)",
    ),
    (
        "convex hull analysis",
        "SELECT SUM(ST_Area(ST_ConvexHull(geom))) FROM areawater",
    ),
    (
        "buffer + intersect pipeline",
        "SELECT COUNT(*) FROM rivers r JOIN parcels p "
        "ON ST_Intersects(p.geom, ST_Buffer(r.geom, 1500, 4))",
    ),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    dataset = generate(seed=args.seed, scale=args.scale)
    print(f"dataset: {dataset.total_rows()} rows across "
          f"{len(dataset.layers)} layers\n")

    cursors = {}
    for engine in ENGINE_NAMES:
        db = Database(engine)
        dataset.load_into(db)
        cursors[engine] = connect(database=db).cursor()

    header = f"{'query':32s}" + "".join(f"{e:>22s}" for e in ENGINE_NAMES)
    print(header)
    print("-" * len(header))
    for label, sql in PROBES:
        cells = []
        answers = {}
        for engine in ENGINE_NAMES:
            cur = cursors[engine]
            try:
                cur.execute(sql)  # warmup
                start = time.perf_counter()
                cur.execute(sql)
                value = cur.fetchone()[0]
                elapsed = (time.perf_counter() - start) * 1000
                answers[engine] = value
                cells.append(f"{elapsed:9.1f}ms ({_short(value)})")
            except UnsupportedFeatureError:
                cells.append(f"{'not supported':>15s}")
        print(f"{label:32s}" + "".join(f"{c:>22s}" for c in cells))
        exact = {v for e, v in answers.items() if e != "bluestem"}
        if "bluestem" in answers and answers["bluestem"] not in exact and exact:
            print(f"{'':32s}  ^ bluestem's MBR-only answer differs "
                  f"from the exact engines")
    print(
        "\nbluestem answers on bounding boxes only (fast, approximate); "
        "ironbark refines through full DE-9IM matrices (exact, slower); "
        "greenwood uses exact fast-path predicates."
    )


def _short(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


if __name__ == "__main__":
    main()
