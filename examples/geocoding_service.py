"""A miniature geocoding / reverse-geocoding service.

Shows the two lookup workloads from the paper's macro suite as library
calls: forward geocoding (street + house number -> coordinate via
address-range interpolation) and reverse geocoding (coordinate ->
nearest road + interpolated house number).

Run with::

    python examples/geocoding_service.py
"""

import random

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database


class GeocodingService:
    """Forward and reverse geocoding over the `edges` road layer."""

    def __init__(self, connection, search_radius: float = 3_000.0):
        self.cursor = connection.cursor()
        self.search_radius = search_radius

    def geocode(self, street: str, house_number: int, county_fips: str):
        """(x, y) of a street address, or None when no range matches."""
        self.cursor.execute(
            "SELECT gid, lfromadd, ltoadd FROM edges "
            "WHERE fullname = ? AND county_fips = ? "
            "AND lfromadd <= ? AND ltoadd >= ? LIMIT 1",
            (street, county_fips, house_number, house_number),
        )
        row = self.cursor.fetchone()
        if row is None:
            return None
        gid, lfrom, lto = row
        fraction = (house_number - lfrom) / max(lto - lfrom, 1)
        self.cursor.execute(
            "SELECT ST_X(ST_LineInterpolatePoint(geom, ?)), "
            "ST_Y(ST_LineInterpolatePoint(geom, ?)) "
            "FROM edges WHERE gid = ?",
            (round(fraction, 6), round(fraction, 6), gid),
        )
        return self.cursor.fetchone()

    def reverse_geocode(self, x: float, y: float):
        """Nearest road and interpolated address for a coordinate."""
        r = self.search_radius
        window = (
            f"ST_MakeEnvelope({x - r}, {y - r}, {x + r}, {y + r})"
        )
        self.cursor.execute(
            f"SELECT gid, fullname, lfromadd, ltoadd, "
            f"ST_LineLocatePoint(geom, ST_Point({x}, {y})) frac, "
            f"ST_Distance(geom, ST_Point({x}, {y})) d "
            f"FROM edges WHERE ST_Intersects(geom, {window}) "
            f"ORDER BY d LIMIT 1"
        )
        row = self.cursor.fetchone()
        if row is None:
            return None
        _gid, fullname, lfrom, lto, fraction, dist = row
        house = int(lfrom + fraction * (lto - lfrom))
        house -= house % 2  # even side of the street
        return f"{max(house, lfrom)} {fullname}", dist


def main() -> None:
    dataset = generate(seed=42, scale=0.5)
    db = Database("greenwood")
    dataset.load_into(db)
    service = GeocodingService(connect(database=db))
    rng = random.Random(7)

    # forward geocode a handful of real addresses from the dataset
    edges = dataset.layer("edges")
    name_i = edges.columns.index("fullname")
    fips_i = edges.columns.index("county_fips")
    from_i = edges.columns.index("lfromadd")
    to_i = edges.columns.index("ltoadd")
    local = [r for r in edges.rows if r[edges.columns.index("road_class")] == "local"]
    print("forward geocoding:")
    for row in rng.sample(local, 5):
        house = rng.randrange(row[from_i], row[to_i] + 1, 2)
        address = f"{house} {row[name_i]} (county {row[fips_i]})"
        location = service.geocode(row[name_i], house, row[fips_i])
        print(f"  {address:45s} -> {location}")

    print("\nreverse geocoding:")
    from repro.datagen import WORLD_SIZE

    for _ in range(5):
        x = rng.uniform(0.2, 0.8) * WORLD_SIZE
        y = rng.uniform(0.2, 0.8) * WORLD_SIZE
        result = service.reverse_geocode(x, y)
        if result is None:
            print(f"  ({x:.0f}, {y:.0f}) -> no road within range")
        else:
            address, dist = result
            print(f"  ({x:.0f}, {y:.0f}) -> {address} ({dist:.0f} m away)")


if __name__ == "__main__":
    main()
