"""Quickstart: spin up an engine, load spatial data, run spatial SQL.

Demonstrates the three layers a user touches: the DB-API driver, the
spatial SQL dialect, and the geometry API underneath.

Run with::

    python examples/quickstart.py
"""

from repro.dbapi import connect
from repro.geometry import Point, Polygon


def main() -> None:
    # 1. connect to an embedded engine (PostGIS-like profile)
    conn = connect(engine="greenwood")
    cur = conn.cursor()

    # 2. schema + data: a few city parks and sensor locations
    cur.execute(
        "CREATE TABLE parks (id INTEGER, name TEXT, geom GEOMETRY)"
    )
    cur.execute(
        "INSERT INTO parks VALUES "
        "(1, 'Riverside',  ST_GeomFromText("
        "'POLYGON((0 0, 400 0, 400 300, 0 300, 0 0))')), "
        "(2, 'Hilltop',    ST_GeomFromText("
        "'POLYGON((600 100, 900 100, 900 500, 600 500, 600 100))')), "
        "(3, 'Greenbelt',  ST_GeomFromText("
        "'POLYGON((350 250, 700 250, 700 400, 350 400, 350 250))'))"
    )
    cur.execute("CREATE TABLE sensors (sid INTEGER, geom GEOMETRY)")
    cur.executemany(
        "INSERT INTO sensors VALUES (?, ?)",
        [
            (101, Point(100, 100).wkb()),
            (102, Point(650, 300).wkb()),
            (103, Point(2000, 2000).wkb()),
        ],
    )

    # 3. a spatial index makes window/containment queries selective
    cur.execute("CREATE SPATIAL INDEX parks_idx ON parks (geom)")

    # which parks overlap each other?
    cur.execute(
        "SELECT a.name, b.name FROM parks a JOIN parks b "
        "ON ST_Overlaps(a.geom, b.geom) WHERE a.id < b.id"
    )
    print("overlapping parks:", cur.fetchall())

    # which sensors sit inside a park?
    cur.execute(
        "SELECT s.sid, p.name FROM sensors s JOIN parks p "
        "ON ST_Contains(p.geom, s.geom) ORDER BY s.sid"
    )
    print("sensors in parks:", cur.fetchall())

    # spatial analysis: total green area, buffered perimeter
    cur.execute("SELECT SUM(ST_Area(geom)) FROM parks")
    print("total park area:", cur.fetchone()[0])
    cur.execute(
        "SELECT name, ST_Area(ST_Buffer(geom, 50)) - ST_Area(geom) "
        "FROM parks ORDER BY id"
    )
    for name, fringe in cur.fetchall():
        print(f"  50m fringe around {name}: {fringe:.0f} m^2")

    # 4. the same SQL runs on every engine profile — that's the benchmark's
    #    portability story; here against the MBR-only engine the overlap
    #    answer can differ:
    mbr = connect(engine="bluestem").cursor()
    mbr.execute("CREATE TABLE t (geom GEOMETRY)")
    mbr.execute(
        "INSERT INTO t VALUES "
        "(ST_GeomFromText('POLYGON((0 0, 10 0, 0 10, 0 0))'))"
    )
    mbr.execute(
        "SELECT COUNT(*) FROM t WHERE ST_Contains(geom, ST_Point(9, 9))"
    )
    print("bluestem (MBR semantics) says the triangle contains (9,9):",
          bool(mbr.fetchone()[0]))

    # 5. and the geometry API works standalone too
    triangle = Polygon([(0, 0), (10, 0), (0, 10)])
    print("exact geometry says:", triangle.contains(Point(9, 9)))
    print("DE-9IM matrix:", triangle.relate(Point(9, 9)))


if __name__ == "__main__":
    main()
