"""Flood risk analysis over the synthetic TIGER-like state.

Reproduces the paper's flood-risk macro scenario as a readable script:
for every river, build a floodplain buffer proportional to the river's
width, then report exposed parcels (count + assessed value), threatened
landmarks, and flooded area per county.

Run with::

    python examples/flood_risk_analysis.py [--engine greenwood] [--scale 0.5]
"""

import argparse

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="greenwood",
                        choices=["greenwood", "bluestem", "ironbark"])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--buffer-multiplier", type=float, default=20.0)
    args = parser.parse_args()

    print(f"generating state (seed={args.seed}, scale={args.scale})...")
    dataset = generate(seed=args.seed, scale=args.scale)
    db = Database(args.engine)
    dataset.load_into(db)
    conn = connect(database=db)
    cur = conn.cursor()

    cur.execute("SELECT gid, name, width FROM rivers ORDER BY gid")
    rivers = cur.fetchall()
    print(f"assessing {len(rivers)} rivers on engine '{args.engine}'\n")

    for gid, name, width in rivers:
        radius = round(width * args.buffer_multiplier, 1)
        print(f"{name} (width {width:.0f} m, floodplain +/-{radius:.0f} m)")

        cur.execute(
            f"SELECT COUNT(*), SUM(p.assessed_value) "
            f"FROM rivers r JOIN parcels p "
            f"ON ST_Intersects(p.geom, ST_Buffer(r.geom, {radius}, 4)) "
            f"WHERE r.gid = {gid}"
        )
        parcel_count, value = cur.fetchone()
        value_text = f"${value:,.0f}" if value else "$0"
        print(f"  parcels at risk: {parcel_count} (assessed {value_text})")

        cur.execute(
            f"SELECT COUNT(*) FROM rivers r JOIN pointlm p "
            f"ON ST_Within(p.geom, ST_Buffer(r.geom, {radius}, 4)) "
            f"WHERE r.gid = {gid}"
        )
        print(f"  landmarks in the floodplain: {cur.fetchone()[0]}")

        cur.execute(
            f"SELECT c.name, "
            f"SUM(ST_Area(ST_Intersection(c.geom, ST_Buffer(r.geom, {radius}, 4)))) "
            f"FROM rivers r JOIN counties c ON ST_Intersects(c.geom, r.geom) "
            f"WHERE r.gid = {gid} GROUP BY c.name ORDER BY 2 DESC LIMIT 3"
        )
        for county, flooded in cur.fetchall():
            print(f"  {county}: {flooded / 1e6:.2f} km^2 flooded")
        print()

    print("buffer-pipeline statistics:", conn.stats.snapshot())


if __name__ == "__main__":
    main()
