"""Deterministic fault injection for chaos testing.

Named failure points are compiled into the engine at the places a real
spatial DBMS fails in practice — storage writes, index maintenance and
probes, geometry refinement, dump I/O. Tests arm a point with either a
seeded probability or a fire-on-Nth-call trigger, run a workload, and
get *reproducible* chaos: the same seed always fails the same calls.

The hot-path contract matches the observability switchboard: call sites
guard on the precomputed :attr:`FaultRegistry.active` flag, so a fully
disarmed registry costs one attribute read per site.

>>> from repro import faults
>>> with faults.injected("index.probe", on_call=1):
...     db.execute("SELECT ...")      # first probe raises InjectedFaultError
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Type

from repro.errors import InjectedFaultError

#: every failure point compiled into the engine, site -> description
FAULT_POINTS: Dict[str, str] = {
    "storage.insert": "Table.insert_row, before the heap is touched",
    "index.insert": "Database._index_insert, before index maintenance",
    "index.probe": "index search in IndexScan / IndexNestedLoopJoin",
    "geometry.refine": "EngineProfile.evaluate_predicate refinement",
    "dump.write": "per dump record written by dump_database",
    "dump.read": "per dump record parsed by restore_database",
    "txn.commit": "TxnManager.commit, before any commit state changes",
    "wal.append": "WriteAheadLog.append, before the record is buffered",
    "wal.fsync": "WriteAheadLog.sync, after write() but before fsync()",
    "page.write": "DiskManager.write_page, before the page hits the file",
}


class _Arm:
    """One armed failure point."""

    __slots__ = ("site", "probability", "on_call", "error", "rng", "calls",
                 "fired", "max_fires")

    def __init__(
        self,
        site: str,
        probability: Optional[float],
        on_call: Optional[int],
        error: Type[Exception],
        seed: int,
        max_fires: Optional[int],
    ):
        self.site = site
        self.probability = probability
        self.on_call = on_call
        self.error = error
        self.rng = random.Random(seed)
        self.calls = 0
        self.fired = 0
        self.max_fires = max_fires

    def should_fire(self) -> bool:
        self.calls += 1
        if self.max_fires is not None and self.fired >= self.max_fires:
            return False
        if self.on_call is not None:
            return self.calls == self.on_call
        if self.probability is not None:
            return self.rng.random() < self.probability
        return False


class FaultRegistry:
    """Named failure points with deterministic seeded triggers."""

    def __init__(self, points: Optional[Dict[str, str]] = None):
        self._points = dict(FAULT_POINTS if points is None else points)
        self._arms: Dict[str, _Arm] = {}
        #: precomputed "anything armed?" flag read by hot call sites
        self.active = False
        self.fired_total = 0
        # serialises trigger state (call counts, rng draws) under the
        # concurrent workload driver; disarmed call sites never take it
        self._mutex = threading.Lock()

    # -- configuration -----------------------------------------------------

    def points(self) -> Tuple[str, ...]:
        """Every registered failure point, sorted."""
        return tuple(sorted(self._points))

    def describe(self, site: str) -> str:
        return self._points[site]

    def register(self, site: str, description: str = "") -> None:
        """Add a failure point (extensions register theirs at import)."""
        self._points.setdefault(site, description)

    def arm(
        self,
        site: str,
        probability: Optional[float] = None,
        on_call: Optional[int] = None,
        error: Type[Exception] = InjectedFaultError,
        seed: int = 0,
        max_fires: Optional[int] = None,
    ) -> None:
        """Arm ``site``; exactly one of ``probability`` / ``on_call``.

        ``probability`` fires each call with that chance from a
        ``random.Random(seed)`` stream; ``on_call=N`` fires on the Nth
        call only. ``error`` is the exception *class* to raise and
        ``max_fires`` caps the total number of firings.
        """
        if site not in self._points:
            raise KeyError(
                f"unknown fault point {site!r}; "
                f"registered: {', '.join(self.points())}"
            )
        if (probability is None) == (on_call is None):
            raise ValueError(
                "arm() needs exactly one of probability= or on_call="
            )
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if on_call is not None and on_call < 1:
            raise ValueError(f"on_call must be >= 1, got {on_call}")
        self._arms[site] = _Arm(
            site, probability, on_call, error, seed, max_fires
        )
        self.active = True

    def arm_all(
        self,
        probability: float,
        seed: int = 0,
        error: Type[Exception] = InjectedFaultError,
        max_fires: Optional[int] = None,
    ) -> None:
        """Chaos mode: arm every registered point with one probability.

        Each site gets its own stream seeded from ``seed`` and the site
        name, so firing patterns are independent but reproducible.
        """
        for index, site in enumerate(self.points()):
            self.arm(
                site,
                probability=probability,
                error=error,
                seed=seed * 1000003 + index,
                max_fires=max_fires,
            )

    def disarm(self, site: str) -> None:
        self._arms.pop(site, None)
        self.active = bool(self._arms)

    def disarm_all(self) -> None:
        self._arms.clear()
        self.active = False

    def reset(self) -> None:
        """Disarm everything and zero the counters."""
        self.disarm_all()
        self.fired_total = 0

    # -- the hot path ------------------------------------------------------

    def hit(self, site: str) -> None:
        """Called by instrumented code; raises when the site's trigger fires.

        Call sites guard with ``if FAULTS.active:`` so the disarmed cost
        is a single attribute read.
        """
        if not self.active:
            return
        with self._mutex:
            arm = self._arms.get(site)
            if arm is None or not arm.should_fire():
                return
            arm.fired += 1
            self.fired_total += 1
        from repro.obs.metrics import GLOBAL

        GLOBAL.counter(
            "faults_fired_total", "injected faults that fired"
        ).inc()
        raise arm.error(
            f"injected fault at {site} (call #{arm.calls})"
        )

    def fire_counts(self) -> Dict[str, int]:
        """site -> times fired, for armed sites."""
        return {site: arm.fired for site, arm in sorted(self._arms.items())}


#: the process-wide registry every engine call site consults
FAULTS = FaultRegistry()


@contextmanager
def injected(site: str, **kwargs) -> Iterator[FaultRegistry]:
    """Arm one site for the duration of a ``with`` block."""
    FAULTS.arm(site, **kwargs)
    try:
        yield FAULTS
    finally:
        FAULTS.disarm(site)
