"""Command-line interface: ``jackpine run`` / ``jackpine explain``.

Examples::

    jackpine run --engines greenwood bluestem --scale 0.5 --suite micro
    jackpine run --suite macro --scenarios geocoding toxic_spill
    jackpine explain --engine greenwood \
        "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, ST_MakeEnvelope(0,0,1000,1000))"
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import BenchmarkConfig, Jackpine, render_full
from repro.core.report import (
    render_loading,
    render_macro,
    render_micro_analysis,
    render_micro_topology,
)
from repro.datagen import generate
from repro.engines import ENGINE_NAMES, Database


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jackpine",
        description="Jackpine spatial database benchmark (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run benchmark suites")
    run.add_argument(
        "--engines", nargs="+", default=list(ENGINE_NAMES),
        choices=list(ENGINE_NAMES),
    )
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--repeats", type=int, default=3)
    run.add_argument("--warmups", type=int, default=1)
    run.add_argument(
        "--suite",
        choices=["all", "micro", "macro", "loading"],
        default="all",
    )
    run.add_argument("--scenarios", nargs="*", default=None)
    run.add_argument(
        "--no-index", action="store_true",
        help="skip CREATE SPATIAL INDEX (index-effect experiments)",
    )
    run.add_argument(
        "--out", default=None, metavar="DIR",
        help="also export every figure's data series as CSV into DIR",
    )
    run.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write structured per-query JSON telemetry artifacts "
             "(percentiles + operator breakdowns) into DIR",
    )
    run.add_argument(
        "--details", action="store_true",
        help="with --suite macro: print per-step timings",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-query deadline; a query that trips it is reported "
             "with outcome 'timeout' instead of failing the run",
    )
    run.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries per query for transient faults "
             "(exponential backoff with full jitter)",
    )

    explain = sub.add_parser("explain", help="show a query plan")
    explain.add_argument("--engine", default="greenwood",
                         choices=list(ENGINE_NAMES))
    explain.add_argument("--seed", type=int, default=42)
    explain.add_argument("--scale", type=float, default=0.5)
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the query and report per-operator rows, times "
             "and counters (EXPLAIN ANALYZE)",
    )
    explain.add_argument("sql")

    stats = sub.add_parser(
        "stats", help="run a probe workload and print the metrics registry"
    )
    stats.add_argument("--engine", default="greenwood",
                       choices=list(ENGINE_NAMES))
    stats.add_argument("--seed", type=int, default=42)
    stats.add_argument("--scale", type=float, default=0.1)
    stats.add_argument(
        "--sql", action="append", default=None, metavar="STMT",
        help="statement(s) to run instead of the default probe workload "
             "(repeatable)",
    )
    stats.add_argument(
        "--waits", action="store_true",
        help="also record wait events and print the per-event summary",
    )
    stats.add_argument(
        "--statements", action="store_true",
        help="record per-statement fingerprint aggregates and print the "
             "pg_stat_statements-style table (plus any plan flips)",
    )
    stats.add_argument(
        "--storage", default=None, metavar="DIR",
        help="attach durable storage in DIR and print the buffer-pool / "
             "write-ahead-log counters after the probe workload",
    )
    stats.add_argument(
        "--reset", action="store_true",
        help="zero every counter family first (metrics registries, wait "
             "events, statement store, engine counters)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the full counter set (metrics, resilience counters, "
             "waits, statements, storage) as one machine-readable JSON "
             "document on stdout instead of human tables",
    )

    experiment = sub.add_parser(
        "experiment", help="run one of the standalone experiments"
    )
    experiment.add_argument(
        "which",
        choices=["jf5", "jf6", "ja1", "ja2", "jx1", "jx2", "jx3", "jx4",
                 "jx5", "jx6"],
        help="jf5=index effect, jf6=scalability, "
             "ja1=refinement ablation, ja2=index-structure ablation, "
             "jx1=selectivity sweep (extension), "
             "jx2=concurrent clients (extension), "
             "jx3=spatial join strategies (extension), "
             "jx4=mixed read/write workload (extension), "
             "jx5=crash recovery (extension), "
             "jx6=query service saturation/overload/cache (extension)",
    )
    experiment.add_argument("--seed", type=int, default=42)
    experiment.add_argument("--scale", type=float, default=0.25)
    experiment.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="jx5/jx6: write the telemetry JSON artifact into DIR",
    )
    experiment.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="jx6: seconds per load phase (default 2.0; CI uses less)",
    )
    experiment.add_argument(
        "--distribution", choices=["uniform", "clustered"],
        default="uniform",
        help="landmark placement for ja2 (clustered = urban skew)",
    )
    experiment.add_argument(
        "--waits", action="store_true",
        help="jx2/jx4: record wait events and append the wall-time "
             "decomposition per client count",
    )

    checkpoint = sub.add_parser(
        "checkpoint",
        help="open a durable storage directory (running crash recovery "
             "if it was not shut down cleanly), take a checkpoint, and "
             "report what was flushed and truncated",
    )
    checkpoint.add_argument(
        "directory", metavar="DIR",
        help="storage directory (wal.log + pages.db + catalog.json)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the query service: a TCP server over one embedded "
             "engine (session pool, admission control, result cache)",
    )
    serve.add_argument("--engine", default="greenwood",
                       choices=list(ENGINE_NAMES))
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = let the kernel pick; the bound port is "
             "printed on startup)",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--scale", type=float, default=0.25)
    serve.add_argument(
        "--pool", type=int, default=4, metavar="N",
        help="engine sessions in the pool (bounds concurrent execution)",
    )
    serve.add_argument(
        "--queue", type=int, default=32, metavar="N",
        help="admission queue limit; requests beyond it are shed with a "
             "typed 'overloaded' response",
    )
    serve.add_argument(
        "--deadline", type=float, default=1.0, metavar="SECONDS",
        help="per-request deadline (queue wait + execution)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=256, metavar="N",
        help="result-cache entries (0 disables the cache)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="SECONDS",
        help="idle pooled sessions older than this are reaped",
    )
    serve.add_argument(
        "--waits", action="store_true",
        help="record wait events (Net:Recv/Net:Send/Service:QueueWait) "
             "while serving",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="end-to-end request tracing: every request gets a compact "
             "flight-recorder record, and slow/errored/shed requests "
             "keep their full linked span tree (jackpine_requests view, "
             "'jackpine trace' command)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="with --trace: tail-sampling threshold — requests at or "
             "above this keep their full trace (default 100)",
    )
    serve.add_argument(
        "--slow-log", default=None, metavar="PATH",
        help="with --trace: append one JSON line per tail-sampled "
             "request to PATH (size-rotated, survives process exit)",
    )
    serve.add_argument(
        "--slow-log-max-bytes", type=int, default=4 * 1024 * 1024,
        metavar="N",
        help="rotate the slow log past this size (one .1 backup kept)",
    )

    trace = sub.add_parser(
        "trace",
        help="inspect flight-recorder request traces: list tail-sampled "
             "requests, or dump one trace as Chrome-trace JSON "
             "(chrome://tracing / Perfetto)",
    )
    trace.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id to dump (omit to list buffered requests)",
    )
    trace.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="read records from a running traced server over the wire",
    )
    trace.add_argument(
        "--slow-log", default=None, metavar="PATH",
        help="read records from a slow-log file written by "
             "'jackpine serve --trace --slow-log PATH'",
    )
    trace.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="write the Chrome-trace JSON to FILE "
             "(default: <trace_id>.trace.json)",
    )

    workload = sub.add_parser(
        "workload",
        help="drive N concurrent clients against one engine "
             "(MVCC transactions, commit/abort accounting)",
    )
    workload.add_argument("--engine", default="greenwood",
                          choices=list(ENGINE_NAMES))
    workload.add_argument("--clients", type=int, default=4)
    workload.add_argument(
        "--duration", type=float, default=2.0, metavar="SECONDS",
        help="how long each client issues operations",
    )
    workload.add_argument(
        "--mix", choices=["read_only", "mixed", "browse"], default="mixed",
        help="read_only=map-search reads (J-X2 style), "
             "mixed=80/20 read/write transactions (J-X4 style), "
             "browse=skewed map-browsing reads (cache-friendly, J-X6)",
    )
    workload.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed=saturation loop, open=fixed arrival rate",
    )
    workload.add_argument(
        "--rate", type=float, default=8.0, metavar="OPS_PER_SEC",
        help="open loop: operation arrivals per second per client",
    )
    workload.add_argument("--seed", type=int, default=42)
    workload.add_argument("--scale", type=float, default=0.25)
    workload.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write the workload telemetry JSON artifact into DIR "
             "(same schema family as 'jackpine run --telemetry')",
    )
    workload.add_argument(
        "--waits", action="store_true",
        help="record wait events + ASH samples; print the wall-time "
             "decomposition and hottest rows, and export both in the "
             "telemetry artifact. With --server: diff the serve "
             "process's wait summary (Net:Recv/Net:Send/"
             "Service:QueueWait) around the round instead — the server "
             "must be running with --waits",
    )
    workload.add_argument(
        "--statements", action="store_true",
        help="record per-statement fingerprint aggregates and export the "
             "additive 'statements' telemetry section",
    )
    workload.add_argument(
        "--storage", default=None, metavar="DIR",
        help="attach durable storage (write-ahead log + heap pages) in "
             "DIR; every committed write survives a crash",
    )
    workload.add_argument(
        "--checkpoint-interval", type=float, default=0.0,
        metavar="SECONDS",
        help="with --storage: run a background checkpointer at this "
             "period (0 = no background checkpoints)",
    )
    workload.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="drive a running 'jackpine serve' process instead of the "
             "embedded engine (open-loop asyncio client fleet)",
    )

    top = sub.add_parser(
        "top",
        help="live active-session view (pg_stat_activity style) over a "
             "workload driven in the background",
    )
    top.add_argument("--engine", default="greenwood",
                     choices=list(ENGINE_NAMES))
    top.add_argument("--clients", type=int, default=4)
    top.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="how long the background workload runs",
    )
    top.add_argument(
        "--mix", choices=["read_only", "mixed"], default="mixed",
    )
    top.add_argument("--seed", type=int, default=42)
    top.add_argument("--scale", type=float, default=0.25)
    top.add_argument(
        "--refresh", type=float, default=0.5, metavar="SECONDS",
        help="screen refresh period",
    )
    top.add_argument(
        "--plain", action="store_true",
        help="print each frame instead of redrawing in place "
             "(for logs, pipes and tests)",
    )

    bench = sub.add_parser(
        "bench",
        help="record or compare the benchmark trajectory "
             "(median join latencies + J-X4 abort rates over time)",
    )
    bench.add_argument("--engine", default="greenwood",
                       choices=list(ENGINE_NAMES))
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--scale", type=float, default=0.1)
    bench.add_argument(
        "--record", default=None, metavar="FILE",
        help="append a dated trajectory record to FILE (created if absent)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare a fresh measurement against the last record in "
             "BASELINE and print per-metric deltas",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="with --compare: exit nonzero when any latency regresses "
             "by more than this fraction (default 0.25)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiment":
        from repro.core import experiments as exp

        if args.which == "jf5":
            print(exp.render_index_effect(
                exp.run_index_effect(seed=args.seed, scale=args.scale)
            ))
        elif args.which == "jf6":
            print(exp.render_scalability(exp.run_scalability(seed=args.seed)))
        elif args.which == "ja1":
            print(exp.render_refinement(
                exp.run_refinement_ablation(seed=args.seed, scale=args.scale)
            ))
        elif args.which == "ja2":
            print(exp.render_index_ablation(
                exp.run_index_ablation(
                    seed=args.seed, scale=args.scale,
                    distribution=args.distribution,
                )
            ))
        elif args.which == "jx1":
            print(exp.render_selectivity(
                exp.run_selectivity_sweep(seed=args.seed, scale=args.scale)
            ))
        elif args.which == "jx2":
            print(exp.render_concurrency(
                exp.run_concurrency(seed=args.seed, scale=args.scale,
                                    waits=args.waits)
            ))
        elif args.which == "jx4":
            print(exp.render_mixed_workload(
                exp.run_mixed_workload(seed=args.seed, scale=args.scale,
                                       waits=args.waits)
            ))
        elif args.which == "jx5":
            result = exp.run_recovery(seed=args.seed, scale=args.scale)
            print(exp.render_recovery(result))
            if args.telemetry:
                path = exp.write_recovery_telemetry(result, args.telemetry)
                print(f"wrote {path}")
        elif args.which == "jx6":
            kwargs = {"seed": args.seed, "scale": args.scale}
            if args.duration is not None:
                kwargs["duration"] = args.duration
            result = exp.run_service(**kwargs)
            print(exp.render_service(result))
            if args.telemetry:
                path = exp.write_service_telemetry(result, args.telemetry)
                print(f"wrote {path}")
        else:
            print(exp.render_spatial_join(
                exp.run_spatial_join(seed=args.seed, scale=args.scale)
            ))
        return 0
    if args.command == "explain":
        db = Database(args.engine)
        generate(seed=args.seed, scale=args.scale).load_into(db)
        if args.analyze:
            print(db.explain_analyze(args.sql))
        else:
            print(db.explain(args.sql))
        return 0
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "checkpoint":
        return _run_checkpoint(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "workload":
        return _run_workload(args)
    if args.command == "top":
        return _run_top(args)
    if args.command == "bench":
        return _run_bench(args)

    return _run_suites(args)


#: default probe workload for ``jackpine stats`` — exercises scans,
#: index probes and a spatial join so every counter family moves
_STATS_PROBES = (
    "SELECT COUNT(*) FROM edges",
    "SELECT COUNT(*) FROM edges "
    "WHERE ST_Intersects(geom, ST_MakeEnvelope(10000, 10000, 40000, 40000))",
    "SELECT COUNT(*) FROM arealm a, areawater w "
    "WHERE ST_Overlaps(a.geom, w.geom)",
)


#: resilience counters shown by ``jackpine stats`` even at zero, so the
#: guardrail/fault machinery is visible before anything ever trips
_RESILIENCE_COUNTERS = (
    ("query_timeouts_total", "queries stopped by their deadline"),
    ("query_cancellations_total",
     "queries stopped by cooperative cancellation"),
    ("memory_budget_trips_total",
     "queries stopped by the row/byte memory budget"),
    ("degraded_results_total", "exact refinements degraded to MBR verdicts"),
    ("faults_fired_total", "injected faults that fired"),
    ("harness_retries_total",
     "transient-fault retries spent by the benchmark harness"),
    ("txn_commits_total", "transactions committed"),
    ("txn_aborts_total", "transactions rolled back"),
    ("txn_conflicts_total",
     "write-write conflicts lost (first-updater-wins)"),
)


def _run_checkpoint(args) -> int:
    """``jackpine checkpoint DIR``: reopen (recovering if necessary),
    checkpoint, report, close."""
    db = Database.open(args.directory)
    try:
        recovery = getattr(db, "recovery_report", None)
        if recovery is not None:
            print(recovery.describe())
        report = db.durability.checkpoint()
        print(
            f"checkpoint at lsn {report.lsn}: "
            f"{report.pages_flushed} page(s) flushed, "
            f"wal truncated to {report.wal_records_kept} record(s) "
            f"({report.wal_bytes} bytes)"
        )
    finally:
        db.close()
    return 0


def _run_stats(args) -> int:
    db = Database(args.engine)
    generate(seed=args.seed, scale=args.scale).load_into(db)
    if args.storage:
        db.attach_storage(args.storage)
    if args.reset:
        from repro.obs.metrics import GLOBAL
        from repro.obs.waits import WAITS

        GLOBAL.reset()
        db.obs.metrics.reset()
        db.obs.statements.reset()
        db.stats.reset()
        WAITS.reset()
        print("-- counters reset (metrics, waits, statements, engine) --")
    db.obs.enable_metrics()
    db.obs.enable_tracing()
    if args.statements:
        db.obs.enable_statements()
    if args.waits:
        from repro.obs.waits import WAITS

        WAITS.enable()
        WAITS.reset()
    for name, help_text in _RESILIENCE_COUNTERS:
        db.obs.metrics.counter(name, help_text)
    as_json = bool(getattr(args, "json", False))
    probes = []
    for sql in args.sql or _STATS_PROBES:
        db.execute(sql)
        trace = db.last_trace()
        probes.append({
            "sql": sql,
            "seconds": trace.seconds,
            "rows": trace.rows,
            "counters": dict(trace.counters),
        })
        if not as_json:
            deltas = ", ".join(
                f"{k}={v}" for k, v in sorted(trace.counters.items())
            )
            print(f"-- {sql}")
            print(f"   {trace.seconds * 1e3:.2f}ms, {trace.rows} rows"
                  + (f", {deltas}" if deltas else ""))
    if not as_json:
        print()
        print(db.obs.metrics.render(), end="")
    # degradation/fault/retry counters live on the process-wide registry
    # (they can fire outside any one connection's scope)
    from repro.obs.metrics import GLOBAL

    resilience = {
        name: GLOBAL.counter(name, help_text).value
        for name, help_text in _RESILIENCE_COUNTERS
    }
    if not as_json:
        print()
        print("-- process-wide resilience counters")
        for name, _help_text in _RESILIENCE_COUNTERS:
            print(f"jackpine_{name} {resilience[name]}")
    hist = db.txn.lock_wait_histogram()
    lock_waits = {"count": hist.count}
    if hist.count:
        lock_waits.update(sum=hist.sum, p95=hist.p95)
    if not as_json:
        print(f"jackpine_txn_lock_wait_seconds_count {hist.count}")
        if hist.count:
            print(f"jackpine_txn_lock_wait_seconds_sum {hist.sum:.6f}")
            print(f"jackpine_txn_lock_wait_seconds_p95 {hist.p95:.6f}")
    waits_summary = None
    if args.waits:
        from repro.obs.waits import WAITS

        waits_summary = WAITS.summary()
        if not as_json:
            print()
            print("-- wait events (count, seconds, p95)")
            if not waits_summary:
                print("(none recorded)")
            for event, entry in sorted(waits_summary.items()):
                p95 = entry.get("p95")
                p95_text = (
                    f" p95={p95 * 1e3:.3f}ms" if p95 is not None else ""
                )
                print(
                    f"{event:<28s} count={entry['count']:<7d} "
                    f"seconds={entry['seconds']:.6f}{p95_text}"
                )
        WAITS.disable()
    statements_export = None
    if args.statements:
        statements_export = db.obs.statements.export()
        if not as_json:
            print()
            print(db.obs.statements.render())
        db.obs.disable_statements()
    storage_stats = None
    if db.durability is not None:
        storage_stats = db.durability.stats()
        if not as_json:
            print()
            print("-- durable storage (buffer pool + write-ahead log)")
            for name, value in sorted(storage_stats.items()):
                if isinstance(value, float):
                    print(f"jackpine_storage_{name} {value:.4f}")
                else:
                    print(f"jackpine_storage_{name} {value}")
        db.close()
    if as_json:
        import json

        document = {
            "engine": args.engine,
            "seed": args.seed,
            "scale": args.scale,
            "probes": probes,
            "metrics": db.obs.metrics.snapshot(),
            "resilience": resilience,
            "lock_waits": lock_waits,
        }
        if waits_summary is not None:
            document["waits"] = waits_summary
        if statements_export is not None:
            document["statements"] = statements_export
        if storage_stats is not None:
            document["storage"] = storage_stats
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def _run_serve(args) -> int:
    """``jackpine serve``: load the dataset, start the query service,
    and block until interrupted (the sidecar for ``workload --server``)."""
    from repro.service import JackpineServer, ServerConfig

    print(f"loading {args.engine} at scale {args.scale} ...")
    db = Database(args.engine)
    generate(seed=args.seed, scale=args.scale).load_into(db)
    if args.waits:
        from repro.obs.waits import WAITS

        WAITS.enable()
        WAITS.reset()
    server = JackpineServer(db, ServerConfig(
        host=args.host,
        port=args.port,
        pool_size=args.pool,
        max_queue=args.queue,
        deadline=args.deadline,
        cache_capacity=args.cache_capacity,
        idle_timeout=args.idle_timeout,
        trace=args.trace,
        trace_slow_ms=args.slow_ms,
        slow_log=args.slow_log,
        slow_log_max_bytes=args.slow_log_max_bytes,
    ))
    server.start()
    trace_text = ""
    if args.trace:
        trace_text = f", tracing slow>={args.slow_ms:g}ms"
        if args.slow_log:
            trace_text += f" -> {args.slow_log}"
    print(f"jackpine service listening on {server.address} "
          f"(pool {args.pool}, queue {args.queue}, "
          f"deadline {args.deadline}s, "
          f"cache {args.cache_capacity or 'off'}{trace_text})", flush=True)
    try:
        import time as time_mod

        while True:
            time_mod.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down ...")
    finally:
        server.stop()
        if args.waits:
            from repro.obs.waits import WAITS

            print("-- wait events (count, seconds)")
            for event, entry in sorted(WAITS.summary().items()):
                print(f"{event:<24s} count={entry['count']:<7d} "
                      f"seconds={entry['seconds']:.6f}")
            WAITS.disable()
    return 0


def _run_trace(args) -> int:
    """``jackpine trace``: list flight-recorder records, or dump one
    linked client+server trace as Chrome-trace JSON.

    Records come from a running traced server (``--server``, over the
    wire), a slow-log file (``--slow-log``), or — inside a process that
    hosted a traced server, e.g. tests — the in-process recorder."""
    import json

    from repro.obs.requests import (
        RECORDER,
        RequestRecord,
        chrome_trace,
        read_slow_log,
    )

    if args.server is not None:
        from repro.service import ServiceClient

        client = ServiceClient.from_address(args.server)
        try:
            if args.trace_id is None:
                briefs = client.trace_records()
                _print_trace_briefs(briefs)
                return 0
            payload = client.trace_record(args.trace_id)
        finally:
            client.close()
        record = (
            RequestRecord.from_dict(payload) if payload is not None else None
        )
    elif args.slow_log is not None:
        records = read_slow_log(args.slow_log)
        if args.trace_id is None:
            _print_trace_briefs([r.brief() for r in records])
            return 0
        record = next(
            (r for r in records if r.trace_id == args.trace_id), None
        )
    else:
        if args.trace_id is None:
            _print_trace_briefs([r.brief() for r in RECORDER.records()])
            return 0
        record = RECORDER.lookup(args.trace_id)
    if record is None:
        print(f"trace {args.trace_id} not found (evicted, never recorded, "
              f"or a different server)", file=sys.stderr)
        return 1
    if record.root is None:
        print(f"trace {record.trace_id} was not retained by the tail "
              f"sampler (outcome {record.outcome}, "
              f"{record.total_seconds * 1e3:.2f}ms) — only slow, errored, "
              f"shed or cache-stale requests keep their full span tree",
              file=sys.stderr)
        return 1
    path = args.out or f"{record.trace_id}.trace.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(record), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"{record.trace_id}: {record.outcome}, "
          f"{record.total_seconds * 1e3:.2f}ms, "
          f"{record.span_count()} spans "
          f"(clock skew {record.clock_skew_seconds * 1e3:.3f}ms)")
    print(f"wrote {path} (open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _print_trace_briefs(briefs) -> None:
    if not briefs:
        print("(no requests recorded — serve with --trace and send load)")
        return
    print(f"{'trace_id':<22s} {'outcome':<14s} {'total':>10s} "
          f"{'kept':>4s}  sql")
    for brief in briefs:
        print(
            f"{brief['trace_id']:<22s} {brief['outcome']:<14s} "
            f"{brief['total_ms']:>8.2f}ms "
            f"{'yes' if brief['retained'] else 'no':>4s}  "
            f"{brief['sql']}"
        )


def _run_workload(args) -> int:
    from repro.workload import (
        WorkloadConfig,
        render_workload,
        run_workload,
        write_workload_telemetry,
    )

    config = WorkloadConfig(
        clients=args.clients,
        duration=args.duration,
        mix=args.mix,
        engine=args.engine,
        mode=args.mode,
        rate=args.rate,
        seed=args.seed,
        scale=args.scale,
        waits=args.waits,
        statements=args.statements,
        storage_dir=args.storage,
        checkpoint_interval=args.checkpoint_interval,
        server=args.server,
    )
    report = run_workload(config)
    print(render_workload(report))
    if args.telemetry:
        print(f"wrote {write_workload_telemetry(report, args.telemetry)}")
    return 0


def _run_top(args) -> int:
    """``jackpine top``: drive a workload on a background thread and
    live-render the active-session table from ASH snapshots.

    The engine is embedded (no server process to attach to), so the
    workload and the view share this process — exactly how the other
    experiments run, but with the monitor's ``pg_stat_activity`` view
    refreshed on screen while they do.
    """
    import threading
    import time as time_mod

    from repro.obs.ash import AshSampler, render_sessions
    from repro.obs.waits import WAITS, WaitAttribution
    from repro.workload import WorkloadConfig, run_workload

    config = WorkloadConfig(
        clients=args.clients,
        duration=args.duration,
        mix=args.mix,
        engine=args.engine,
        seed=args.seed,
        scale=args.scale,
    )
    config.validate()
    print(f"loading {args.engine} at scale {args.scale} ...")
    WAITS.enable()
    WAITS.reset()
    sampler = AshSampler(monitor=WAITS)
    sampler.start()
    reports = {}
    failures = []

    def drive() -> None:
        try:
            reports["report"] = run_workload(config)
        except BaseException as exc:  # noqa: BLE001 - reported below
            failures.append(exc)

    worker = threading.Thread(target=drive, name="jackpine-top-workload",
                              daemon=True)
    worker.start()
    started = time_mod.perf_counter()
    try:
        while worker.is_alive():
            sessions = WAITS.active_sessions()
            elapsed = time_mod.perf_counter() - started
            frame = render_sessions(sessions, now_label=f"{elapsed:.1f}s")
            if args.plain:
                print(frame)
            else:
                # ANSI clear + home, then the frame — a live refresh
                print(f"\x1b[2J\x1b[H{frame}", flush=True)
            worker.join(timeout=args.refresh)
        worker.join()
    finally:
        sampler.stop()
        attribution = WaitAttribution.capture(
            WAITS, busy_seconds=args.duration * args.clients
        )
        WAITS.disable()
    if failures:
        raise failures[0]
    print()
    print(attribution.render(title="wall-time decomposition (all clients)"))
    states = sampler.wait_state_counts()
    if states:
        top_states = ", ".join(
            f"{state}={count}" for state, count in sorted(
                states.items(), key=lambda item: -item[1]
            )[:4]
        )
        print(f"ash: {len(sampler.samples())} samples   "
              f"top states: {top_states}")
    return 0


def _run_bench(args) -> int:
    from repro.core.trajectory import (
        collect_record,
        compare_against,
        record_to,
        render_comparison,
        render_record,
    )

    if not args.record and not args.compare:
        print("jackpine bench: pass --record FILE and/or --compare BASELINE",
              file=sys.stderr)
        return 2
    record = collect_record(
        engine=args.engine, seed=args.seed, scale=args.scale
    )
    print(render_record(record))
    status = 0
    if args.compare:
        comparison = compare_against(args.compare, record,
                                     threshold=args.threshold)
        print()
        print(render_comparison(comparison))
        if comparison.regressed:
            status = 1
    if args.record:
        path = record_to(args.record, record)
        print(f"\nrecorded to {path}")
    return status


def _run_suites(args) -> int:
    config = BenchmarkConfig(
        engines=args.engines,
        seed=args.seed,
        scale=args.scale,
        repeats=args.repeats,
        warmups=args.warmups,
        scenarios=args.scenarios,
        with_indexes=not args.no_index,
        timeout=args.timeout,
        retries=args.retries,
    )
    bench = Jackpine(config)
    if args.suite == "all":
        result = bench.run()
        print(render_full(result))
        if args.out:
            from repro.core.figures import export_all

            for path in export_all(result, args.out):
                print(f"wrote {path}")
        _write_telemetry(result, args.telemetry)
        return 0

    from repro.core.benchmark import BenchmarkResult, EngineRun

    result = BenchmarkResult(config=config,
                             dataset_rows=bench.dataset.total_rows())
    for engine in config.engines:
        run = EngineRun(engine=engine)
        if args.suite == "loading":
            run.loading = bench.run_loading(engine)
        elif args.suite == "micro":
            run.micro = bench.run_micro(engine)
        elif args.suite == "macro":
            run.macro = bench.run_macro(engine)
        result.runs[engine] = run
    if args.suite == "loading":
        print(render_loading(result))
    elif args.suite == "micro":
        print(render_micro_topology(result))
        print()
        print(render_micro_analysis(result))
    else:
        print(render_macro(result))
        if args.details:
            from repro.core.report import render_macro_details

            print()
            print(render_macro_details(result))
    _write_telemetry(result, args.telemetry)
    return 0


def _write_telemetry(result, out_dir) -> None:
    if not out_dir:
        return
    from repro.obs import telemetry

    for path in telemetry.write_artifacts(result, out_dir):
        print(f"wrote {path}")


if __name__ == "__main__":
    sys.exit(main())
