"""Snapshot-isolation MVCC: transaction ids, snapshots, undo, vacuum.

Row versioning follows the classic xmin/xmax design: every heap slot
carries the id of the transaction that created it (``xmin``) and, once
deleted or superseded, the id of the transaction that removed it
(``xmax``). The sentinel :data:`FROZEN_XID` (0) means "committed before
any live snapshot cares" — frozen rows are visible to everyone, and a
table whose every slot is frozen skips visibility checks entirely, so
the pre-MVCC single-user fast path is untouched.

Visibility for a snapshot ``S`` taken by transaction ``T``:

* ``xid == FROZEN_XID`` → treated as committed long ago (visible);
* ``xid == T``          → T's own work (visible);
* ``xid >= S.horizon``  → started after the snapshot (invisible);
* ``xid ∈ S.in_flight`` → uncommitted when the snapshot was taken
  (invisible — readers never see uncommitted writes);
* otherwise             → committed before the snapshot (visible).

A row is visible iff its ``xmin`` is visible and its ``xmax`` is not.
Aborted transactions need no special casing: rollback physically
reverses every stamp before the transaction leaves the active set, and
while the rollback runs its id is still in-flight for every snapshot.

Write-write conflicts are first-updater-wins: a writer locks each target
row (:class:`~repro.txn.locks.RowLockTable`) and then checks for a
committed ``xmax`` it did not see — finding one raises
:class:`~repro.errors.SerializationError`. Cleanup (physically removing
committed-dead versions, freezing committed inserts) is deferred until
the active set drains, so open snapshots never lose the versions they
may still need.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import EngineError
from repro.faults import FAULTS
from repro.txn.locks import RowLockTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engines.database import Database
    from repro.storage.table import Table

#: xmin/xmax sentinel: "committed before any live snapshot" / "not deleted"
FROZEN_XID = 0

#: transaction states
ACTIVE, COMMITTED, ABORTED = "active", "committed", "aborted"


class Snapshot:
    """An immutable visibility horizon: what one statement (or one whole
    transaction) is allowed to see."""

    __slots__ = ("txid", "horizon", "in_flight")

    def __init__(self, txid: int, horizon: int,
                 in_flight: FrozenSet[int]) -> None:
        self.txid = txid
        self.horizon = horizon
        self.in_flight = in_flight

    def xid_visible(self, xid: int) -> bool:
        if xid == self.txid:
            return True
        if xid >= self.horizon:
            return False
        return xid not in self.in_flight

    def row_visible(self, xmin: int, xmax: int) -> bool:
        """The MVCC visibility rule over one slot's stamps."""
        if xmin and not self.xid_visible(xmin):
            return False
        return not (xmax and self.xid_visible(xmax))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot(txid={self.txid}, horizon={self.horizon}, "
            f"in_flight={sorted(self.in_flight)})"
        )


class Transaction:
    """One open transaction: its snapshot plus the undo log that commit
    and rollback replay."""

    __slots__ = ("txid", "snapshot", "status", "undo")

    def __init__(self, txid: int, snapshot: Snapshot) -> None:
        self.txid = txid
        self.snapshot = snapshot
        self.status = ACTIVE
        #: ("insert" | "delete", table, row_id) in execution order;
        #: an UPDATE contributes one of each (delete old, insert new)
        self.undo: List[Tuple[str, "Table", int]] = []

    def record_insert(self, table: "Table", row_id: int) -> None:
        self.undo.append(("insert", table, row_id))

    def record_delete(self, table: "Table", row_id: int) -> None:
        self.undo.append(("delete", table, row_id))

    def record_update(self, table: "Table", old_id: int, new_id: int) -> None:
        self.undo.append(("delete", table, old_id))
        self.undo.append(("insert", table, new_id))


class Session:
    """Per-connection transaction state (the engine's default session
    serves callers that use :class:`Database` directly)."""

    __slots__ = ("txn", "session_id")

    #: process-wide id source so ASH samples can name sessions
    _next_id = itertools.count(1)

    def __init__(self) -> None:
        self.txn: Optional[Transaction] = None
        self.session_id = next(Session._next_id)

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None


class TxnManager:
    """Issues transaction ids, tracks the active set, and applies
    commit/rollback against the owning database's heap and indexes."""

    #: default row-lock wait budget before declaring a deadlock
    LOCK_TIMEOUT = 1.0

    def __init__(self, database: "Database",
                 lock_timeout: float = LOCK_TIMEOUT) -> None:
        self._db = database
        self._lock = threading.RLock()
        self._next_txid = 1
        self._active: Dict[int, Transaction] = {}
        self.locks = RowLockTable(on_wait=self._on_row_lock_wait)
        self.lock_timeout = lock_timeout
        # committed garbage, flushed when the active set drains: versions
        # a still-open snapshot might need
        self._pending_freeze: List[Tuple["Table", int]] = []
        self._pending_vacuum: List[Tuple["Table", int]] = []

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> Transaction:
        with self._lock:
            txid = self._next_txid
            self._next_txid += 1
            snapshot = Snapshot(txid, txid, frozenset(self._active))
            txn = Transaction(txid, snapshot)
            self._active[txid] = txn
            return txn

    def read_snapshot(self) -> Optional[Snapshot]:
        """A single-statement snapshot for an auto-commit reader, or
        ``None`` when no transaction is open anywhere — the fast path
        where visibility checks are skipped entirely."""
        with self._lock:
            if not self._active:
                return None
            return Snapshot(-1, self._next_txid, frozenset(self._active))

    def commit(self, txn: Transaction) -> None:
        if txn.status is not ACTIVE:
            raise EngineError(
                f"cannot commit transaction {txn.txid}: {txn.status}"
            )
        if FAULTS.active:
            # before any state changes: a fired fault leaves the
            # transaction active, and the caller's rollback undoes it
            FAULTS.hit("txn.commit")
        durable = self._db.durability
        if durable is not None:
            # WAL flush point: the COMMIT record is fsynced before any
            # in-memory commit state changes, so a failure here leaves
            # the transaction active for the caller's rollback and the
            # log shows it as a loser
            durable.log_commit(txn.txid)
        with self._lock:
            for op, table, row_id in txn.undo:
                if op == "insert":
                    self._pending_freeze.append((table, row_id))
                else:
                    self._pending_vacuum.append((table, row_id))
            txn.status = COMMITTED
            del self._active[txn.txid]
            self.locks.release_all(txn.txid)
            self._metrics_counter(
                "txn_commits_total", "transactions committed"
            ).inc()
            if not self._active:
                self._flush_garbage()
        if txn.undo:
            # after visibility: the watermark must never get ahead of the
            # rows it vouches for, or a cache fill racing this commit
            # could tag a pre-commit result with the post-commit xid
            self._db.bump_write_marks(
                {table.name for _op, table, _rid in txn.undo}, txn.txid
            )

    def rollback(self, txn: Transaction) -> None:
        if txn.status is not ACTIVE:
            raise EngineError(
                f"cannot roll back transaction {txn.txid}: {txn.status}"
            )
        durable = self._db.durability
        if durable is not None:
            # before the in-memory reversal: the page-effect undo reads
            # old values from heap rows that rollback is about to remove
            durable.log_abort(txn)
        with self._lock:
            # reverse order: an UPDATE's new version disappears before the
            # old version's delete stamp is cleared
            for op, table, row_id in reversed(txn.undo):
                if op == "insert":
                    self._db._index_remove(table, row_id)
                    table.rollback_insert(row_id)
                else:
                    table.clear_deleted(row_id)
            txn.status = ABORTED
            del self._active[txn.txid]
            self.locks.release_all(txn.txid)
            self._metrics_counter(
                "txn_aborts_total", "transactions rolled back"
            ).inc()
            if not self._active:
                self._flush_garbage()

    # -- introspection -----------------------------------------------------

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def pending_garbage(self) -> int:
        with self._lock:
            return len(self._pending_freeze) + len(self._pending_vacuum)

    @property
    def next_txid(self) -> int:
        with self._lock:
            return self._next_txid

    def stamp(self) -> int:
        """Allocate a fresh xid with no transaction attached — the
        write watermark for a non-transactional fast-path write."""
        with self._lock:
            xid = self._next_txid
            self._next_txid += 1
            return xid

    def set_next_txid(self, value: int) -> None:
        """Advance the txid source (recovery: past every logged txid)."""
        with self._lock:
            self._next_txid = max(self._next_txid, value)

    def active_txids(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._active)

    # -- internals ---------------------------------------------------------

    def _flush_garbage(self) -> None:
        """No open snapshot can need old versions any more: physically
        remove committed-dead rows and freeze committed inserts.

        Called with the manager lock held, from a context that holds the
        database's exclusive latch (COMMIT/ROLLBACK statements run
        exclusively), so heap and index mutation is safe.
        """
        for table, row_id in self._pending_freeze:
            if table.rows[row_id] is not None:
                table.freeze_row(row_id)
                table.frozen_rows += 1
        for table, row_id in self._pending_vacuum:
            if table.rows[row_id] is not None:
                self._db._index_remove(table, row_id)
                table.delete_row(row_id)
                table.vacuumed_rows += 1
        self._pending_freeze.clear()
        self._pending_vacuum.clear()

    def _metrics_counter(self, name: str, help_text: str):
        return self._db.obs.metrics.counter(name, help_text)

    def lock_wait_histogram(self):
        return self._db.obs.metrics.histogram(
            "txn_lock_wait_seconds",
            "seconds spent waiting for row write locks",
        )

    def _on_row_lock_wait(self, key, txid, waited: float,
                          timed_out: bool) -> None:
        """The single recording point for row-lock waits: the histogram
        is fed from the same measurement as the ``LockManager:RowLock``
        wait-event records (see :class:`~repro.txn.locks.RowLockTable`),
        so the two views cannot drift. Timed-out waits count too — the
        blocked time was spent either way."""
        self.lock_wait_histogram().observe(waited)

    def conflict_counter(self):
        return self._metrics_counter(
            "txn_conflicts_total",
            "write-write conflicts (first-updater-wins losses and "
            "lock-wait timeouts)",
        )
