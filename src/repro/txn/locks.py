"""Locking primitives for the MVCC transaction subsystem.

Two independent mechanisms with different lifetimes:

* :class:`RowLockTable` — logical row write locks, keyed by
  ``(table_name, row_id)`` and held from the first write to a row until
  the owning transaction commits or rolls back. Readers never take row
  locks (snapshot isolation: readers never block). Deadlocks are broken
  by timeout: a blocked acquirer that exceeds its wait budget raises
  :class:`~repro.errors.SerializationError`, which aborts exactly one of
  the transactions in the cycle.

* :class:`SharedExclusiveLock` — the database *latch*, protecting the
  physical structures (heap arrays, spatial indexes, catalog) for the
  duration of one statement. SELECTs hold it shared, anything that
  mutates holds it exclusive. It is never held across statements, so it
  orders physical access without providing isolation — that is the row
  locks' and the snapshots' job.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Set, Tuple

from repro.errors import SerializationError
from repro.obs.waits import LATCH_EXCLUSIVE, LATCH_SHARED, LOCK_ROW, WAITS

LockKey = Tuple[str, int]


class RowLockTable:
    """Per-row write locks with blocking acquire and timeout.

    One mutex guards the whole table; waiters block on a per-key
    condition sharing that mutex. Locks are reentrant per owner and
    released all at once at transaction end (strict two-phase locking
    on the write set).

    Every blocked :meth:`acquire` is a ``LockManager:RowLock`` wait
    event, and the *same* measurement is what reaches the ``on_wait``
    callback (the transaction manager feeds its lock-wait histogram from
    it) — one recording point, so the two views cannot drift.
    """

    def __init__(self, on_wait=None) -> None:
        self._mutex = threading.Lock()
        self._owners: Dict[LockKey, int] = {}
        self._conds: Dict[LockKey, threading.Condition] = {}
        self._held: Dict[int, Set[LockKey]] = {}
        #: ``on_wait(key, txid, waited_seconds, timed_out)`` after every
        #: blocked acquire, successful or not
        self.on_wait = on_wait

    def try_acquire(self, key: LockKey, txid: int) -> bool:
        """Take the lock if free (or already ours); never blocks."""
        with self._mutex:
            owner = self._owners.get(key)
            if owner is None:
                self._owners[key] = txid
                self._held.setdefault(txid, set()).add(key)
                return True
            return owner == txid

    def acquire(self, key: LockKey, txid: int, timeout: float) -> float:
        """Block until the lock is ours; returns seconds spent waiting.

        Raises :class:`SerializationError` after ``timeout`` seconds —
        the deadlock-detection-by-timeout contract: any wait-for cycle
        eventually trips one waiter's budget and aborts it.
        """
        deadline = time.monotonic() + timeout
        started = time.monotonic()
        token = WAITS.begin_wait(LOCK_ROW, key) if WAITS.enabled else None
        timed_out = False
        try:
            with self._mutex:
                while True:
                    owner = self._owners.get(key)
                    if owner is None or owner == txid:
                        self._owners[key] = txid
                        self._held.setdefault(txid, set()).add(key)
                        return time.monotonic() - started
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        timed_out = True
                        raise SerializationError(
                            f"transaction {txid} timed out after "
                            f"{timeout:.3g}s waiting for row lock {key} "
                            f"held by transaction {owner} "
                            f"(possible deadlock)"
                        )
                    cond = self._conds.get(key)
                    if cond is None:
                        cond = self._conds[key] = threading.Condition(
                            self._mutex
                        )
                    cond.wait(remaining)
        finally:
            waited = time.monotonic() - started
            if token is not None:
                WAITS.end_wait(token)
            if self.on_wait is not None:
                self.on_wait(key, txid, waited, timed_out)

    def release_all(self, txid: int) -> None:
        """Drop every lock the transaction holds and wake its waiters."""
        with self._mutex:
            for key in self._held.pop(txid, ()):
                if self._owners.get(key) == txid:
                    del self._owners[key]
                cond = self._conds.get(key)
                if cond is not None:
                    cond.notify_all()
                    if self._owners.get(key) is None:
                        # nobody owns it; the condition is rebuilt on demand
                        del self._conds[key]

    def owner_of(self, key: LockKey) -> Optional[int]:
        with self._mutex:
            return self._owners.get(key)

    def held_by(self, txid: int) -> Set[LockKey]:
        with self._mutex:
            return set(self._held.get(txid, ()))


class SharedExclusiveLock:
    """A readers-writer latch with writer preference and owner reentrancy.

    ``acquire_exclusive`` is reentrant for the owning thread (a COMMIT
    issued while applying a statement must not self-deadlock), and a
    thread holding the exclusive side passes straight through
    ``acquire_shared``.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0

    def acquire_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # exclusive covers shared; nothing extra to take
                self._writer_depth += 1
                return
            if self._writer is not None or self._waiting_writers:
                self._wait_shared()
            self._readers += 1

    def _wait_shared(self) -> None:
        """Blocked-path wait loop (caller holds ``self._cond``); timed as
        a ``Latch:StatementShared`` wait event when the monitor is on."""
        token = WAITS.begin_wait(LATCH_SHARED) if WAITS.enabled else None
        try:
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
        finally:
            if token is not None:
                WAITS.end_wait(token)

    def release_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._waiting_writers += 1
            try:
                if self._writer is not None or self._readers:
                    self._wait_exclusive()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def _wait_exclusive(self) -> None:
        """Blocked-path wait loop (caller holds ``self._cond``); timed as
        a ``Latch:StatementExclusive`` wait event when the monitor is on."""
        token = WAITS.begin_wait(LATCH_EXCLUSIVE) if WAITS.enabled else None
        try:
            while self._writer is not None or self._readers:
                self._cond.wait()
        finally:
            if token is not None:
                WAITS.end_wait(token)

    def release_exclusive(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def shared(self) -> "_Held":
        return _Held(self.acquire_shared, self.release_shared)

    def exclusive(self) -> "_Held":
        return _Held(self.acquire_exclusive, self.release_exclusive)


class _Held:
    """Context manager pairing one acquire with one release."""

    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release):
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> None:
        self._acquire()

    def __exit__(self, *exc) -> None:
        self._release()
