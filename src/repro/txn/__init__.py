"""MVCC transaction subsystem: snapshot isolation for the embedded engines.

See :mod:`repro.txn.manager` for the versioning/visibility design and
:mod:`repro.txn.locks` for the locking primitives. The full design
document is ``docs/CONCURRENCY.md``.
"""

from repro.txn.locks import RowLockTable, SharedExclusiveLock
from repro.txn.manager import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    FROZEN_XID,
    Session,
    Snapshot,
    Transaction,
    TxnManager,
)

__all__ = [
    "ABORTED",
    "ACTIVE",
    "COMMITTED",
    "FROZEN_XID",
    "RowLockTable",
    "Session",
    "SharedExclusiveLock",
    "Snapshot",
    "Transaction",
    "TxnManager",
]
