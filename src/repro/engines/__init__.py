"""Engines: the embedded spatial database and its capability profiles."""

from repro.engines.database import Database, ResultSet
from repro.engines.profiles import (
    BLUESTEM,
    GREENWOOD,
    IRONBARK,
    PROFILES,
    EngineProfile,
    get_profile,
)

ENGINE_NAMES = tuple(sorted(PROFILES))

__all__ = [
    "BLUESTEM",
    "Database",
    "ENGINE_NAMES",
    "EngineProfile",
    "GREENWOOD",
    "IRONBARK",
    "PROFILES",
    "ResultSet",
    "get_profile",
]
