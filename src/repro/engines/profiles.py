"""Engine capability profiles.

The paper benchmarks two open-source DBMSes and one commercial offering
whose spatial support differs along three axes it calls out explicitly:
available features (function set), predicate evaluation strategy, and
indexing. The three profiles below reproduce those axes mechanically —
no artificial delays, every timing difference comes from doing different
work:

``greenwood``
    PostGIS-like: R-tree index, exact geometry refinement using the
    specialised fast-path predicates, full function set.

``bluestem``
    MySQL-(5.x era)-like: R-tree index but **MBR-only** predicate
    semantics — ``ST_Contains`` et al. are answered on bounding boxes,
    which is fast and *wrong on purpose* (a superset/approximation), and
    a reduced analysis-function set. The answer-cardinality gap this
    creates is measured by ablation J-A1.

``ironbark``
    Commercial-like: quadtree tessellation index and exact refinement
    implemented by computing the **full DE-9IM matrix** and matching the
    predicate's pattern — correct but heavier per candidate pair than the
    fast paths, mirroring the paper's "feature-rich but slower on
    refinement" commercial profile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

from repro.algorithms import de9im
from repro.errors import TopologyError, UnsupportedFeatureError
from repro.faults import FAULTS
from repro.geometry.base import Envelope, Geometry
from repro.obs.waits import CPU_REFINE, WAITS

#: predicate name -> DE-9IM pattern(s) used by full-matrix refinement
_PREDICATE_PATTERNS = {
    "st_equals": ("T*F**FFF*",),
    "st_disjoint": ("FF*FF****",),
    "st_intersects": None,  # complement of disjoint
    "st_touches": ("FT*******", "F**T*****", "F***T****"),
    "st_within": ("T*F**F***",),
    "st_contains": None,  # transpose of within
    "st_covers": ("T*****FF*", "*T****FF*", "***T**FF*", "****T*FF*"),
    "st_coveredby": None,  # transpose of covers
    "st_overlaps": None,  # dimension-dependent
    "st_crosses": None,  # dimension-dependent
}

_FAST_PREDICATES = {
    "st_equals": de9im.equals,
    "st_disjoint": de9im.disjoint,
    "st_intersects": de9im.intersects,
    "st_touches": de9im.touches,
    "st_crosses": de9im.crosses,
    "st_within": de9im.within,
    "st_contains": de9im.contains,
    "st_overlaps": de9im.overlaps,
    "st_covers": de9im.covers,
    "st_coveredby": de9im.covered_by,
}


def _mbr_touches(a: Envelope, b: Envelope) -> bool:
    """Envelope touch: boxes intersect but their interiors do not."""
    if not a.intersects(b):
        return False
    interiors_overlap = (
        a.min_x < b.max_x
        and b.min_x < a.max_x
        and a.min_y < b.max_y
        and b.min_y < a.max_y
    )
    return not interiors_overlap


def _mbr_predicate(name: str, ga: Geometry, gb: Geometry) -> bool:
    a, b = ga.envelope, gb.envelope
    if name == "st_equals":
        return a == b
    if name == "st_disjoint":
        return not a.intersects(b)
    if name == "st_intersects":
        return a.intersects(b)
    if name == "st_touches":
        return _mbr_touches(a, b)
    if name in ("st_within", "st_coveredby"):
        return b.contains(a)
    if name in ("st_contains", "st_covers"):
        return a.contains(b)
    if name in ("st_overlaps", "st_crosses"):
        return a.intersects(b) and not a.contains(b) and not b.contains(a)
    raise UnsupportedFeatureError(f"MBR semantics undefined for {name}")


def _matrix_predicate(name: str, ga: Geometry, gb: Geometry) -> bool:
    """Exact refinement via the full DE-9IM matrix (no fast paths)."""
    if name == "st_intersects":
        return not de9im.relate(ga, gb).matches("FF*FF****")
    if name == "st_contains":
        return de9im.relate(gb, ga).matches("T*F**F***")
    if name == "st_coveredby":
        return _matrix_predicate("st_covers", gb, ga)
    if name == "st_crosses":
        da, db = ga.dimension, gb.dimension
        matrix = de9im.relate(ga, gb)
        if da == 1 and db == 1:
            return matrix.matches("0********")
        if da < db:
            return matrix.matches("T*T******")
        if da > db:
            return matrix.matches("T*****T**")
        return False
    if name == "st_overlaps":
        if ga.dimension != gb.dimension:
            return False
        matrix = de9im.relate(ga, gb)
        if ga.dimension == 1:
            return matrix.matches("1*T***T**")
        return matrix.matches("T*T***T**")
    if name == "st_equals":
        return ga.dimension == gb.dimension and de9im.relate(ga, gb).matches(
            "T*F**FFF*"
        )
    patterns = _PREDICATE_PATTERNS[name]
    assert patterns is not None
    matrix = de9im.relate(ga, gb)
    return any(matrix.matches(p) for p in patterns)


@dataclass(frozen=True)
class EngineProfile:
    """Immutable description of one benchmarked engine's spatial capability."""

    name: str
    description: str
    index_kind: str  # default CREATE SPATIAL INDEX structure
    predicate_mode: str  # 'fast' | 'matrix' | 'mbr'
    unsupported: FrozenSet[str] = frozenset()
    index_options: Dict[str, Any] = field(default_factory=dict)
    #: graceful degradation: answer with the MBR verdict when exact
    #: refinement raises :class:`TopologyError` (MBR-only profiles have
    #: nothing weaker to fall back to and keep failing loudly)
    mbr_fallback: bool = False

    @property
    def exact(self) -> bool:
        return self.predicate_mode != "mbr"

    def check_supported(self, func_name: str) -> None:
        if func_name in self.unsupported:
            raise UnsupportedFeatureError(
                f"engine {self.name!r} does not support {func_name}"
            )

    def evaluate_predicate(self, name: str, ga: Geometry, gb: Geometry) -> bool:
        self.check_supported(name)
        if FAULTS.active:
            FAULTS.hit("geometry.refine")
        if self.predicate_mode == "mbr":
            return _mbr_predicate(name, ga, gb)
        if self.predicate_mode == "matrix":
            return _matrix_predicate(name, ga, gb)
        return _FAST_PREDICATES[name](ga, gb)

    def refine_predicate(
        self, name: str, ga: Geometry, gb: Geometry, stats=None
    ) -> bool:
        """:meth:`evaluate_predicate` with graceful degradation.

        When exact refinement raises :class:`TopologyError` and the
        profile allows it, answer with the (superset) MBR verdict and
        count a degraded result on ``stats`` — mirroring how the paper's
        engines differ in what they do with numerically hostile input.
        """
        if WAITS.enabled:
            # attribute refinement as on-CPU time (CPU:Refine); one bool
            # check when the monitor is off, matching the FAULTS contract
            started = time.perf_counter()
            try:
                return self._refine_fallback(name, ga, gb, stats)
            finally:
                WAITS.record(CPU_REFINE, time.perf_counter() - started)
        return self._refine_fallback(name, ga, gb, stats)

    def _refine_fallback(self, name, ga, gb, stats=None) -> bool:
        try:
            return self.evaluate_predicate(name, ga, gb)
        except TopologyError:
            if not self.mbr_fallback:
                raise
            if stats is not None:
                stats.degraded_results += 1
            from repro.obs.metrics import GLOBAL

            GLOBAL.counter(
                "degraded_results_total",
                "exact refinements degraded to MBR verdicts",
            ).inc()
            return _mbr_predicate(name, ga, gb)


GREENWOOD = EngineProfile(
    name="greenwood",
    description="open-source, PostGIS-like: R-tree + exact fast-path refinement",
    index_kind="rtree",
    predicate_mode="fast",
    mbr_fallback=True,
)

BLUESTEM = EngineProfile(
    name="bluestem",
    description="open-source, MySQL-5.x-like: R-tree + MBR-only predicates",
    index_kind="rtree",
    predicate_mode="mbr",
    unsupported=frozenset(
        {
            "st_convexhull",
            "st_pointonsurface",
            "st_simplify",
            "st_covers",
            "st_coveredby",
            "st_dwithin",
            "st_relate",
            "st_lineinterpolatepoint",
            "st_linelocatepoint",
            # no geodetic support (the paper's MySQL-era gap)
            "st_distancesphere",
            "st_lengthsphere",
            "st_areasphere",
        }
    ),
)

IRONBARK = EngineProfile(
    name="ironbark",
    description="commercial-like: quadtree tessellation + full-matrix refinement",
    index_kind="quadtree",
    predicate_mode="matrix",
    mbr_fallback=True,
)

PROFILES: Dict[str, EngineProfile] = {
    p.name: p for p in (GREENWOOD, BLUESTEM, IRONBARK)
}


def get_profile(name: str) -> EngineProfile:
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine profile {name!r}; expected one of {sorted(PROFILES)}"
        )
