"""The in-process spatial database engine.

One :class:`Database` owns a catalog, a function registry and an engine
profile. It executes parsed statements and returns result sets. The three
benchmarked engines are the same machinery instantiated with the three
profiles — exactly the paper's setup of "one benchmark, N JDBC targets",
with profiles standing in for distinct server products.

Concurrency model (see ``docs/CONCURRENCY.md``): physical access runs
under a per-statement readers-writer latch (SELECTs shared, everything
else exclusive), while *isolation* comes from the snapshot-isolation
MVCC layer in :mod:`repro.txn` — row versions stamped with xmin/xmax,
per-connection sessions, and first-updater-wins row write locks. With no
transaction open anywhere the engine stays on the pre-MVCC fast path:
no version arrays, no visibility checks, auto-commit semantics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engines.profiles import EngineProfile, get_profile
from repro.engines.sysviews import install_system_views
from repro.errors import (
    GuardrailError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    SerializationError,
    SqlPlanError,
    SqlProgrammingError,
)
from repro.faults import FAULTS
from repro.geometry.base import Geometry
from repro.guard import CancelToken, ExecutionGuard, Guardrails
from repro.index import make_index
from repro.index.base import SpatialIndex
from repro.obs import Observability, Trace
from repro.obs.waits import WAITS, WaitAttribution, summary_delta
from repro.sql import ast
from repro.sql.executor import Compiler, ExecContext, Scope, SpanNode, Stats
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse
from repro.sql.planner import Planner, is_txn_control
from repro.storage.catalog import Catalog, IndexEntry
from repro.storage.table import Column, ColumnType, Table
from repro.txn import ACTIVE, Session, TxnManager, Transaction
from repro.txn.locks import SharedExclusiveLock


class ResultSet:
    """Materialised query result: column names + row tuples."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: List[str], rows: List[tuple],
                 rowcount: int = -1):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount if rowcount >= 0 else len(rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (for COUNT-style queries)."""
        if not self.rows:
            raise SqlPlanError("result set is empty")
        return self.rows[0][0]


class Database:
    """An embedded spatial database with one of the benchmark profiles."""

    #: SELECT plans cached per SQL text (the PreparedStatement analogue);
    #: bounded, and flushed whenever the schema changes
    PLAN_CACHE_SIZE = 256

    def __init__(self, profile: "EngineProfile | str" = "greenwood"):
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self.catalog = Catalog()
        self.registry = FunctionRegistry()
        self.stats = Stats()
        self.obs = Observability()
        self.obs.metrics.bind_stats(self.profile.name, self.stats)
        #: default execution limits for every statement on this database;
        #: per-call overrides win (see :meth:`execute`)
        self.guardrails = Guardrails()
        self._planner = Planner(self.catalog, self.registry, self.profile)
        self._plan_cache: "OrderedDict[str, tuple]" = OrderedDict()
        self._parse_cache: "OrderedDict[str, ast.Statement]" = OrderedDict()
        #: the MVCC transaction manager (txn ids, snapshots, row locks)
        self.txn = TxnManager(self)
        #: durable page/WAL storage, attached via :meth:`attach_storage` /
        #: :meth:`open`; ``None`` keeps the engine purely in-memory and
        #: every durability hook at one attribute read
        self.durability = None
        # per-statement physical latch: SELECT shared, mutation exclusive;
        # never held across statements (isolation is the txn layer's job)
        self._latch = SharedExclusiveLock()
        # default session for direct Database callers; each DB-API
        # connection carries its own (transactions are per-session)
        self._session = Session()
        # LRU caches and the shared Stats object are mutated from every
        # client thread; statements run on private Stats shards that are
        # folded in under _stats_lock when the statement finishes
        self._cache_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        #: per-table committed-write watermarks (table name -> xid of the
        #: last committed write), the service result cache's invalidation
        #: source. Plain dict assignment under the GIL — the embedded
        #: write path pays one dict store per committed write statement
        #: (pinned by benchmarks/test_bench_service_overhead.py)
        self.write_marks: Dict[str, int] = {}
        #: the running query service, set by repro.service.JackpineServer
        #: while serving and read by the jackpine_service system view
        self.service = None
        # jackpine_* system views: SQL-queryable windows onto this
        # database's own statistics (scanned like any other table)
        install_system_views(self)

    # -- public API --------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        profile: "EngineProfile | str" = "greenwood",
        page_size: int = 4096,
        buffer_pages: int = 128,
    ) -> "Database":
        """Open (or create) a durable database directory.

        A directory that already holds a WAL goes through crash recovery
        (:func:`repro.storage.durability.recover`) — committed work is
        rebuilt, in-flight work is undone. A fresh directory gets empty
        storage attached.
        """
        import os

        from repro.storage.durability import WAL_FILE, recover

        if isinstance(profile, str):
            profile = get_profile(profile)
        if os.path.exists(os.path.join(directory, WAL_FILE)):
            db, _report = recover(
                directory, profile=profile.name,
                page_size=page_size, buffer_pages=buffer_pages,
            )
            return db
        db = cls(profile)
        db.attach_storage(
            directory, page_size=page_size, buffer_pages=buffer_pages
        )
        return db

    def attach_storage(
        self,
        directory: str,
        page_size: int = 4096,
        buffer_pages: int = 128,
    ) -> None:
        """Attach durable page/WAL storage to this database.

        Any rows already in memory (a loaded benchmark dataset) are
        mirrored to the heap pages and checkpointed, so the attach point
        itself is durable. Use :meth:`open` for a directory that already
        contains storage.
        """
        import os

        from repro.storage.durability import (
            WAL_FILE,
            DurabilityManager,
        )

        if self.durability is not None:
            raise SqlProgrammingError("durable storage is already attached")
        if os.path.exists(os.path.join(directory, WAL_FILE)):
            raise SqlProgrammingError(
                f"{directory!r} already holds a database; "
                f"use Database.open() to recover it"
            )
        manager = DurabilityManager(
            directory, page_size=page_size, buffer_pages=buffer_pages,
            profile=self.profile.name,
        )
        manager.bind(self)
        with self._latch.exclusive():
            self.durability = manager
            manager.mirror_existing_rows()
            manager.checkpoint()

    def attach_durability(self, manager) -> None:
        """Adopt an already-populated durability manager (the recovery
        path — no mirroring, the pages are the source of truth)."""
        manager.bind(self)
        self.durability = manager

    def checkpoint(self):
        """Flush dirty pages, snapshot the catalog, truncate the WAL."""
        if self.durability is None:
            raise SqlProgrammingError("no durable storage attached")
        with self._latch.exclusive():
            report = self.durability.checkpoint()
        self.obs.metrics.counter(
            "checkpoints_total", "checkpoints completed"
        ).inc()
        return report

    def close(self) -> None:
        """Clean shutdown: checkpoint (if durable) and release files."""
        if self.durability is None:
            return
        if not self.durability.crashed:
            self.checkpoint()
        self.durability.close()

    @property
    def join_strategy(self) -> str:
        """Spatial join algorithm: "auto" (cost-based) or a forced one of
        "inlj" / "tree" / "pbsm" / "nlj"."""
        return self._planner.join_strategy

    @join_strategy.setter
    def join_strategy(self, strategy: str) -> None:
        from repro.sql.planner import JOIN_STRATEGIES

        if strategy not in JOIN_STRATEGIES:
            raise SqlPlanError(
                f"unknown join strategy {strategy!r}; "
                f"expected one of {', '.join(JOIN_STRATEGIES)}"
            )
        self._planner.join_strategy = strategy
        with self._cache_lock:
            self._plan_cache.clear()

    def last_trace(self) -> Optional[Trace]:
        """The most recent statement trace (requires ``obs.enable_tracing()``)."""
        return self.obs.last_trace

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
        session: Optional[Session] = None,
    ) -> ResultSet:
        """Parse and run one statement (parse results and SELECT plans are
        cached per SQL text with LRU eviction, the way a driver reuses
        prepared statements).

        ``timeout`` / ``max_rows`` / ``max_bytes`` / ``cancel`` arm
        per-statement guardrails over :attr:`guardrails` defaults; a
        tripped limit raises :class:`QueryTimeoutError`,
        :class:`MemoryBudgetError` or :class:`QueryCancelledError`. The
        failed statement leaves no cached plan poisoned — plans cache the
        *strategy*, never results.

        ``session`` carries per-connection transaction state; without
        one, the database's default session is used. Any
        :class:`ReproError` raised mid-statement while the session has an
        open transaction — a guardrail deadline, a serialization
        conflict, an injected fault — aborts that transaction before the
        error propagates, so a failed statement never leaves a
        half-applied transaction behind.
        """
        if session is None:
            session = self._session
        guard = self.guardrails.start(
            timeout=timeout, max_rows=max_rows, max_bytes=max_bytes,
            cancel=cancel,
        )
        statement = self._parse_statement(sql)
        waits_on = WAITS.enabled
        if waits_on:
            txn = session.txn
            WAITS.begin_statement(
                sql, self.profile.name,
                txn.txid if txn is not None else None,
                session.session_id,
            )
        try:
            if is_txn_control(statement):
                with self._latch.exclusive():
                    return self._run_txn_control(statement, session)
            try:
                if self.obs.active:
                    return self._execute_observed(
                        sql, statement, params, guard, session
                    )
                return self._execute_plain(
                    sql, statement, params, guard, session
                )
            except ReproError:
                self._abort_session(session)
                raise
        finally:
            if waits_on:
                WAITS.end_statement()

    def _execute_plain(
        self,
        sql: str,
        statement: ast.Statement,
        params: Sequence[Any],
        guard: Optional[ExecutionGuard],
        session: Session,
    ) -> ResultSet:
        if isinstance(statement, ast.Select):
            shard = Stats()
            if WAITS.enabled:
                # the live shard is the ASH rows-processed progress counter
                WAITS.attach_shard(shard)
            with self._latch.shared():
                plan, names = self._cached_plan(sql, statement, shard)
                ctx = ExecContext(
                    tuple(params), self.profile, self.registry, self.catalog,
                    shard, guard, self._snapshot_for(session),
                )
                try:
                    rows = self._collect(plan, ctx)
                finally:
                    self._merge_stats(shard)
            return ResultSet(names, rows)
        # any non-SELECT may change schema or data layout: flush plans
        with self._latch.exclusive():
            with self._cache_lock:
                self._plan_cache.clear()
            return self.execute_statement(
                statement, params, guard=guard, session=session
            )

    def _parse_statement(self, sql: str) -> ast.Statement:
        """LRU-cached parse of one SQL text."""
        with self._cache_lock:
            statement = self._parse_cache.get(sql)
            if statement is not None:
                self._parse_cache.move_to_end(sql)
                return statement
        statement = parse(sql)
        with self._cache_lock:
            if len(self._parse_cache) >= self.PLAN_CACHE_SIZE:
                self._parse_cache.popitem(last=False)
            self._parse_cache[sql] = statement
        return statement

    def _cached_plan(
        self, sql: str, statement: ast.Select, stats: Stats
    ) -> tuple:
        """LRU-cached SELECT plan; hit/miss counters land on the caller's
        per-statement shard (never the shared Stats, which would race)."""
        with self._cache_lock:
            cached = self._plan_cache.get(sql)
            if cached is not None:
                stats.plan_cache_hits += 1
                self._plan_cache.move_to_end(sql)
                return cached
        stats.plan_cache_misses += 1
        cached = self._planner.plan_select(statement)
        with self._cache_lock:
            existing = self._plan_cache.get(sql)
            if existing is not None:
                return existing
            if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
                self._plan_cache.popitem(last=False)
            self._plan_cache[sql] = cached
        return cached

    def _merge_stats(self, shard: Stats) -> None:
        with self._stats_lock:
            self.stats.merge(shard)

    def _snapshot_for(self, session: Session):
        """The statement's MVCC snapshot: the open transaction's, a fresh
        single-statement snapshot while other transactions are active, or
        ``None`` on the no-transactions fast path."""
        txn = session.txn
        if txn is not None:
            return txn.snapshot
        return self.txn.read_snapshot()

    def _abort_session(self, session: Session) -> None:
        """Roll back the session's open transaction (statement failed)."""
        txn = session.txn
        if txn is None:
            return
        session.txn = None
        with self._latch.exclusive():
            if txn.status is ACTIVE:
                self.txn.rollback(txn)

    def _collect(self, plan, ctx: ExecContext) -> List[tuple]:
        """Drain a SELECT plan, counting guardrail trips on the way out."""
        try:
            return [row["__out__"] for row in plan.rows(ctx)]
        except GuardrailError as exc:
            self._record_guard_trip(exc)
            raise

    def _record_guard_trip(self, exc: GuardrailError) -> None:
        metrics = self.obs.metrics
        if isinstance(exc, QueryTimeoutError):
            metrics.counter(
                "query_timeouts_total", "queries stopped by their deadline"
            ).inc()
        elif isinstance(exc, QueryCancelledError):
            metrics.counter(
                "query_cancellations_total",
                "queries stopped by cooperative cancellation",
            ).inc()
        else:
            metrics.counter(
                "memory_budget_trips_total",
                "queries stopped by the row/byte memory budget",
            ).inc()

    def _execute_observed(
        self,
        sql: str,
        statement: ast.Statement,
        params: Sequence[Any],
        guard: Optional[ExecutionGuard],
        session: Session,
    ) -> ResultSet:
        """The instrumented twin of :meth:`_execute_plain`.

        Runs whenever any observability feature is on: fires hooks,
        times the statement, reads per-statement engine-counter deltas
        off the statement's private Stats shard, and — when span capture
        is wanted — plans SELECTs afresh under a
        :class:`~repro.sql.executor.SpanNode` tree (span wrapping mutates
        the plan, so cached plans are never traced).
        """
        import time as _time

        obs = self.obs
        store = obs.statements
        record_stmt = store.enabled
        params_tuple = tuple(params)
        if obs.hooks.query_start:
            obs.hooks.fire_query_start(sql, params_tuple)
        shard = Stats()
        if WAITS.enabled:
            WAITS.attach_shard(shard)
        # per-thread wait totals before the statement: the after/before
        # delta is this statement's per-wait-class time attribution
        waits_before = (
            {e: t[1] for e, t in WAITS.state().totals.items()}
            if record_stmt and WAITS.enabled else None
        )
        started_at = _time.time()
        start = _time.perf_counter()
        root = None
        result: Optional[ResultSet] = None
        outcome = "ok"
        try:
            try:
                if isinstance(statement, ast.Select) and obs.capture_spans:
                    with self._latch.shared():
                        plan, names = self._planner.plan_select(statement)
                        if record_stmt:
                            store.record_plan(sql, plan)
                        on_close = (
                            obs.hooks.fire_operator_close
                            if obs.hooks.operator_close else None
                        )
                        wrapped = SpanNode(plan, on_close)
                        ctx = ExecContext(
                            params_tuple, self.profile, self.registry,
                            self.catalog, shard, guard,
                            self._snapshot_for(session),
                        )
                        result = ResultSet(names, self._collect(wrapped, ctx))
                        root = wrapped.span
                elif isinstance(statement, ast.Select):
                    with self._latch.shared():
                        plan, names = self._cached_plan(sql, statement, shard)
                        if record_stmt:
                            store.record_plan(sql, plan)
                        ctx = ExecContext(
                            params_tuple, self.profile, self.registry,
                            self.catalog, shard, guard,
                            self._snapshot_for(session),
                        )
                        result = ResultSet(names, self._collect(plan, ctx))
                else:
                    with self._latch.exclusive():
                        with self._cache_lock:
                            self._plan_cache.clear()
                        result = self._dispatch_statement(
                            statement, params_tuple, guard, session, shard
                        )
            finally:
                self._merge_stats(shard)
        except SerializationError:
            outcome = "abort"
            raise
        except QueryTimeoutError:
            outcome = "timeout"
            raise
        except ReproError:
            outcome = "error"
            raise
        finally:
            if record_stmt:
                if result is None and outcome == "ok":
                    outcome = "error"
                wait_deltas = None
                if waits_before is not None:
                    wait_deltas = {}
                    for event, totals in WAITS.state().totals.items():
                        delta = totals[1] - waits_before.get(event, 0.0)
                        if delta > 0.0:
                            cls = event.split(":", 1)[0]
                            wait_deltas[cls] = (
                                wait_deltas.get(cls, 0.0) + delta
                            )
                store.record(
                    sql,
                    _time.perf_counter() - start,
                    result.rowcount if result is not None else 0,
                    counters={
                        key: value
                        for key, value in shard.snapshot().items()
                        if value
                    },
                    outcome=outcome,
                    wait_class_seconds=wait_deltas,
                )
        elapsed = _time.perf_counter() - start
        trace = Trace(
            sql=sql,
            engine=self.profile.name,
            statement=type(statement).__name__,
            seconds=elapsed,
            started_at=started_at,
            rows=result.rowcount,
            counters={
                key: value
                for key, value in shard.snapshot().items()
                if value
            },
            root=root,
        )
        obs.record(trace)
        return result

    def execute_statement(
        self, statement: ast.Statement, params: Sequence[Any] = (),
        guard: Optional[ExecutionGuard] = None,
        session: Optional[Session] = None,
    ) -> ResultSet:
        if session is None:
            session = self._session
        shard = Stats()
        try:
            return self._dispatch_statement(
                statement, tuple(params), guard, session, shard
            )
        finally:
            self._merge_stats(shard)

    def _dispatch_statement(
        self,
        statement: ast.Statement,
        params: Tuple[Any, ...],
        guard: Optional[ExecutionGuard],
        session: Session,
        shard: Stats,
    ) -> ResultSet:
        if isinstance(statement, ast.Select):
            ctx = ExecContext(
                params, self.profile, self.registry, self.catalog,
                shard, guard, self._snapshot_for(session),
            )
            return self._run_select(statement, ctx)
        if isinstance(statement, (ast.Insert, ast.Delete, ast.Update)):
            return self._run_dml(statement, params, guard, session, shard)
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            return self._run_txn_control(statement, session)
        if isinstance(statement, ast.CreateTable):
            return self._run_create_table(statement)
        if isinstance(statement, ast.CreateSpatialIndex):
            return self._run_create_index(statement)
        if isinstance(statement, ast.DropTable):
            existed = self.catalog.has_table(statement.name)
            self.catalog.drop_table(statement.name, statement.if_exists)
            if existed:
                self.bump_write_marks((statement.name,), self.txn.stamp())
                if self.durability is not None:
                    self.durability.log_ddl(
                        "drop_table", name=statement.name
                    )
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropIndex):
            self.catalog.drop_index(statement.name, statement.if_exists)
            if self.durability is not None:
                self.durability.log_ddl(
                    "drop_index", name=statement.name.lower()
                )
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Analyze):
            return self._run_analyze(statement)
        raise SqlPlanError(f"unsupported statement {type(statement).__name__}")

    # -- transactions ------------------------------------------------------

    def _run_txn_control(
        self, statement: ast.Statement, session: Session
    ) -> ResultSet:
        """BEGIN / COMMIT / ROLLBACK against the session's transaction.

        COMMIT and ROLLBACK with no open transaction are no-ops (PEP 249
        connections call ``commit()`` freely in auto-commit flows). A
        COMMIT that fails mid-flight — e.g. an injected ``txn.commit``
        fault — rolls the transaction back before re-raising, so the
        session is never left wedged on a half-committed transaction.
        """
        if isinstance(statement, ast.Begin):
            if session.txn is not None:
                raise SqlProgrammingError(
                    "a transaction is already in progress"
                )
            session.txn = self.txn.begin()
            return ResultSet([], [], 0)
        txn = session.txn
        if txn is None:
            return ResultSet([], [], 0)
        session.txn = None
        if isinstance(statement, ast.Commit):
            try:
                self.txn.commit(txn)
            except BaseException:
                if txn.status is ACTIVE:
                    self.txn.rollback(txn)
                raise
        else:
            self.txn.rollback(txn)
        return ResultSet([], [], 0)

    def _run_dml(
        self,
        statement: ast.Statement,
        params: Tuple[Any, ...],
        guard: Optional[ExecutionGuard],
        session: Session,
        shard: Stats,
    ) -> ResultSet:
        """INSERT/DELETE/UPDATE, transactional when it has to be.

        Outside a transaction the statement runs on the legacy in-place
        path *unless* other transactions are open somewhere — then it
        wraps itself in an implicit single-statement transaction so open
        snapshots keep the versions they are entitled to.
        """
        txn = session.txn
        implicit = False
        if txn is None and (self.txn.active_count or
                            self.durability is not None):
            # durable databases run *every* write transactionally: the
            # WAL's undo information and the MVCC rollback machinery are
            # one mechanism, so an auto-commit statement is just a
            # single-statement transaction with a group-commit fsync
            txn = self.txn.begin()
            implicit = True
        snapshot = txn.snapshot if txn is not None else None
        ctx = ExecContext(
            params, self.profile, self.registry, self.catalog,
            shard, guard, snapshot,
        )
        try:
            if isinstance(statement, ast.Insert):
                result = self._run_insert(statement, ctx, txn)
            elif isinstance(statement, ast.Delete):
                result = self._run_delete(statement, ctx, txn)
            else:
                result = self._run_update(statement, ctx, txn)
            if implicit:
                self.txn.commit(txn)
            elif txn is None and result.rowcount:
                # legacy in-place path: visible immediately, no commit
                # hook will fire — stamp the watermark here
                self.bump_write_marks((statement.table,), self.txn.stamp())
            return result
        except BaseException:
            if implicit and txn.status is ACTIVE:
                self.txn.rollback(txn)
            raise

    def bump_write_marks(self, tables, xid: int) -> None:
        """Stamp the committed-write watermark for ``tables``.

        Called by :meth:`TxnManager.commit` after the rows are visible,
        and directly by the fast paths that never open a transaction.
        Watermark comparison is by equality, so the only contract is
        that the stamp changes whenever committed contents may have.
        """
        marks = self.write_marks
        for name in tables:
            marks[name.lower()] = xid

    def _lock_row_for_write(
        self, table: Table, row_id: int, txn: Transaction
    ) -> None:
        """Take the row write lock, then decide the write conflict.

        First-updater-wins: after the lock is ours, a ``xmax`` stamped by
        *another* transaction can only come from one that already
        committed (an active writer would still hold the lock; an aborted
        one clears its stamps during rollback) — so finding one means we
        lost the race and must abort. While blocked on a contended lock
        the database latch is released, letting the current owner commit
        or roll back; timeouts surface as :class:`SerializationError`
        (deadlock detection by timeout).
        """
        locks = self.txn.locks
        key = (table.name, row_id)
        if not locks.try_acquire(key, txn.txid):
            self._latch.release_exclusive()
            try:
                try:
                    # acquire records the LockManager:RowLock wait event
                    # and feeds the lock-wait histogram via the manager's
                    # on_wait callback (one measurement, two views)
                    locks.acquire(key, txn.txid, self.txn.lock_timeout)
                except SerializationError:
                    self.txn.conflict_counter().inc()
                    raise
            finally:
                self._latch.acquire_exclusive()
        row = table.rows[row_id]
        if row is None:
            self.txn.conflict_counter().inc()
            raise SerializationError(
                f"row {row_id} of {table.name!r} was deleted by a "
                f"concurrent transaction"
            )
        if table.mvcc_versions:
            _xmin, xmax_arr = table.version_arrays()
            xmax = xmax_arr[row_id]
            if xmax and xmax != txn.txid:
                self.txn.conflict_counter().inc()
                raise SerializationError(
                    f"write-write conflict on row {row_id} of "
                    f"{table.name!r}: already written by committed "
                    f"transaction {xmax}"
                )

    def _run_analyze(self, stmt: ast.Analyze) -> ResultSet:
        """Recompute geometry-column statistics (bounds, sizes, histograms)
        for one table or, with no table name, every table in the catalog."""
        if stmt.table is not None:
            tables = [self.catalog.table(stmt.table)]
        else:
            tables = list(self.catalog.tables())
        for table in tables:
            table.analyze()
        return ResultSet([], [], len(tables))

    def explain(self, sql: str) -> str:
        """The plan tree for a SELECT, as indented text."""
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise SqlPlanError("EXPLAIN supports SELECT statements only")
        plan, _names = self._planner.plan_select(statement)
        return "\n".join(plan.explain())

    def explain_analyze(self, sql: str, params: Sequence[Any] = ()) -> str:
        """Execute a SELECT and report per-operator rows and times.

        Plans afresh (never from the cache — instrumentation rewires the
        tree) and drains the full result before rendering, like
        ``EXPLAIN ANALYZE`` in the DBMSes the paper benchmarks. Each
        operator line shows actual rows, wall time and its exclusive
        engine-counter deltas (``index_probes``, ``join_pairs_…``, …).
        """
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise SqlPlanError("EXPLAIN ANALYZE supports SELECT statements only")
        plan, _names = self._planner.plan_select(statement)
        wrapped = SpanNode(plan)
        shard = Stats()
        waits_on = WAITS.enabled
        waits_before = WAITS.summary() if waits_on else None
        if waits_on:
            WAITS.begin_statement(sql, self.profile.name, None,
                                  self._session.session_id)
            WAITS.attach_shard(shard)
        import time as _time

        started = _time.perf_counter()
        try:
            with self._latch.shared():
                ctx = ExecContext(
                    tuple(params), self.profile, self.registry, self.catalog,
                    shard, None, self._snapshot_for(self._session),
                )
                try:
                    emitted = sum(1 for _row in wrapped.rows(ctx))
                finally:
                    self._merge_stats(shard)
        finally:
            if waits_on:
                WAITS.end_statement()
        elapsed = _time.perf_counter() - started
        lines = wrapped.explain()
        lines.append(f"Total output rows: {emitted}")
        if waits_on:
            delta = summary_delta(waits_before, WAITS.summary())
            lines.append("Waits (this statement):")
            if delta:
                for event, entry in sorted(delta.items()):
                    share = (
                        100.0 * entry["seconds"] / elapsed if elapsed else 0.0
                    )
                    lines.append(
                        f"  {event:<26s} count={entry['count']:<7d} "
                        f"seconds={entry['seconds']:.6f} ({share:.1f}%)"
                    )
            else:
                lines.append("  (none recorded)")
        return "\n".join(lines)

    # -- statement runners -----------------------------------------------------

    def _run_select(self, stmt: ast.Select, ctx: ExecContext) -> ResultSet:
        plan, names = self._planner.plan_select(stmt)
        return ResultSet(names, self._collect(plan, ctx))

    def _run_insert(
        self, stmt: ast.Insert, ctx: ExecContext,
        txn: Optional[Transaction] = None,
    ) -> ResultSet:
        table = self.catalog.table(stmt.table)
        if stmt.columns is None:
            positions = list(range(len(table.columns)))
        else:
            positions = [table.column_index(c) for c in stmt.columns]
        compiler = Compiler(Scope(), self.registry, self.profile)
        # statement atomicity: evaluate and type-check every row before
        # touching the heap, so a failure in row k leaves nothing behind
        pending: List[List[Any]] = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(positions):
                raise SqlPlanError(
                    f"INSERT expects {len(positions)} values, got {len(row_exprs)}"
                )
            values: List[Any] = [None] * len(table.columns)
            for position, expr in zip(positions, row_exprs):
                values[position] = compiler.compile(expr)({}, ctx)
            pending.append(values)
        from repro.storage.table import _coerce

        coerced = [
            tuple(_coerce(v, col) for v, col in zip(vals, table.columns))
            for vals in pending
        ]
        xmin = txn.txid if txn is not None else 0
        for values in coerced:
            row_id = self._insert_one(table, values, xmin=xmin)
            if txn is not None:
                txn.record_insert(table, row_id)
        return ResultSet([], [], len(coerced))

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk insert of Python values (the fast path the loader uses).

        On a durable database the whole batch is one transaction with a
        single group-commit fsync at the end — the bulk-load analogue of
        COPY inside a transaction."""
        table = self.catalog.table(table_name)
        count = 0
        with self._latch.exclusive():
            txn = self.txn.begin() if self.durability is not None else None
            try:
                xmin = txn.txid if txn is not None else 0
                for values in rows:
                    row_id = self._insert_one(table, values, xmin=xmin)
                    if txn is not None:
                        txn.record_insert(table, row_id)
                    count += 1
                if txn is not None:
                    self.txn.commit(txn)
                elif count:
                    self.bump_write_marks((table.name,), self.txn.stamp())
            except BaseException:
                if txn is not None and txn.status is ACTIVE:
                    self.txn.rollback(txn)
                raise
        return count

    def _insert_one(
        self, table: Table, values: Sequence[Any], xmin: int = 0
    ) -> int:
        """Heap insert + index maintenance + WAL; the heap row (and its
        index entries) are rolled back if any later step fails, keeping
        heap, indexes and the durable mirror consistent."""
        row_id = table.insert_row(values, xmin=xmin)
        try:
            self._index_insert(table, row_id)
        except Exception:
            table.rollback_insert(row_id)
            raise
        if self.durability is not None and xmin:
            try:
                self.durability.log_insert(
                    xmin, table.name, row_id, table.get_row(row_id)
                )
            except Exception:
                self._index_remove(table, row_id)
                table.rollback_insert(row_id)
                raise
        return row_id

    def _index_insert(self, table: Table, row_id: int) -> None:
        if FAULTS.active:
            # fires before any index is touched, so the caller's heap
            # rollback restores a fully consistent catalog
            FAULTS.hit("index.insert")
        for entry in self.catalog.indexes():
            if entry.table_name != table.name:
                continue
            idx = table.column_index(entry.column_name)
            geom = table.get_row(row_id)[idx]
            if isinstance(geom, Geometry):
                entry.index.insert(row_id, geom.envelope)

    def _index_remove(self, table: Table, row_id: int) -> None:
        """Drop one heap row's entries from every index on its table."""
        row = table.rows[row_id]
        if row is None:
            return
        for entry in self.catalog.indexes():
            if entry.table_name != table.name:
                continue
            idx = table.column_index(entry.column_name)
            geom = row[idx]
            if isinstance(geom, Geometry):
                entry.index.remove(row_id, geom.envelope)

    def _run_delete(
        self, stmt: ast.Delete, ctx: ExecContext,
        txn: Optional[Transaction] = None,
    ) -> ResultSet:
        table = self.catalog.table(stmt.table)
        scope = Scope()
        scope.add(stmt.table, table)
        predicate = None
        if stmt.where is not None:
            predicate = Compiler(scope, self.registry, self.profile).compile(
                stmt.where
            )
        doomed: List[int] = []
        for row_id, row in table.scan(ctx.snapshot):
            if predicate is None or predicate({table.name: row}, ctx) is True:
                doomed.append(row_id)
        if txn is None:
            for row_id in doomed:
                self._index_remove(table, row_id)
                table.delete_row(row_id)
            return ResultSet([], [], len(doomed))
        # MVCC delete: stamp xmax and keep the version (and its index
        # entries) readable for older snapshots until vacuum
        for row_id in doomed:
            self._lock_row_for_write(table, row_id, txn)
            table.mark_deleted(row_id, txn.txid)
            txn.record_delete(table, row_id)
            if self.durability is not None:
                # the durable mirror tracks committed-state-to-be: the
                # page row goes now (steal), the in-memory version stays
                # for older snapshots until vacuum
                self.durability.log_delete(
                    txn.txid, table.name, row_id, table.get_row(row_id)
                )
        return ResultSet([], [], len(doomed))

    def _run_update(
        self, stmt: ast.Update, ctx: ExecContext,
        txn: Optional[Transaction] = None,
    ) -> ResultSet:
        table = self.catalog.table(stmt.table)
        scope = Scope()
        scope.add(stmt.table, table)
        compiler = Compiler(scope, self.registry, self.profile)
        predicate = (
            compiler.compile(stmt.where) if stmt.where is not None else None
        )
        assignments = [
            (table.column_index(column), compiler.compile(expr))
            for column, expr in stmt.assignments
        ]
        geom_positions = {
            table.column_index(name) for name in table.geometry_columns()
        }
        # two-phase for statement atomicity: evaluate first, apply after
        pending: List[Tuple[int, list]] = []
        alias = table.name
        for row_id, row in table.scan(ctx.snapshot):
            if predicate is not None and predicate({alias: row}, ctx) is not True:
                continue
            values = list(row)
            for position, value_fn in assignments:
                values[position] = value_fn({alias: row}, ctx)
            pending.append((row_id, values))
        if txn is not None:
            # MVCC update = insert the new version + delete-stamp the old
            # one; probes filter the superseded version by visibility
            for row_id, values in pending:
                self._lock_row_for_write(table, row_id, txn)
                new_id = self._insert_one(table, values, xmin=txn.txid)
                table.mark_deleted(row_id, txn.txid)
                txn.record_update(table, row_id, new_id)
                if self.durability is not None:
                    # WAL mirrors the MVCC shape: insert new + delete old
                    self.durability.log_delete(
                        txn.txid, table.name, row_id, table.get_row(row_id)
                    )
            return ResultSet([], [], len(pending))
        for row_id, values in pending:
            old_row = table.get_row(row_id)
            table.update_row(row_id, values)
            new_row = table.get_row(row_id)
            for entry in self.catalog.indexes():
                if entry.table_name != table.name:
                    continue
                position = table.column_index(entry.column_name)
                if position not in geom_positions:
                    continue
                old_geom = old_row[position]
                new_geom = new_row[position]
                if old_geom is new_geom:
                    continue
                if isinstance(old_geom, Geometry):
                    entry.index.remove(row_id, old_geom.envelope)
                if isinstance(new_geom, Geometry):
                    entry.index.insert(row_id, new_geom.envelope)
        return ResultSet([], [], len(pending))

    def _run_create_table(self, stmt: ast.CreateTable) -> ResultSet:
        if stmt.if_not_exists and self.catalog.has_table(stmt.name):
            return ResultSet([], [], 0)
        columns = [
            Column(c.name, ColumnType.parse(c.type_name)) for c in stmt.columns
        ]
        table = self.catalog.create_table(stmt.name, columns)
        self.bump_write_marks((table.name,), self.txn.stamp())
        if self.durability is not None:
            self.durability.log_ddl(
                "create_table",
                name=table.name,
                columns=[[c.name, c.type.value] for c in columns],
            )
        return ResultSet([], [], 0)

    def _run_create_index(self, stmt: ast.CreateSpatialIndex) -> ResultSet:
        table = self.catalog.table(stmt.table)
        column = table.column(stmt.column)
        if column.type is not ColumnType.GEOMETRY:
            raise SqlPlanError(
                f"CREATE SPATIAL INDEX requires a GEOMETRY column, "
                f"{stmt.column!r} is {column.type.value}"
            )
        kind = stmt.using or self.profile.index_kind
        index = self._build_index(table, column.name, kind)
        self.catalog.register_index(
            IndexEntry(stmt.name, table.name, column.name, index)
        )
        if self.durability is not None:
            self.durability.log_ddl(
                "create_index", name=stmt.name.lower(), table=table.name,
                column=column.name, kind=index.kind,
            )
        return ResultSet([], [], len(index))

    def _build_index(
        self, table: Table, column_name: str, kind: str
    ) -> SpatialIndex:
        idx = table.column_index(column_name)
        items = [
            (row_id, row[idx].envelope)
            for row_id, row in table.scan()
            if isinstance(row[idx], Geometry)
        ]
        from repro.index import INDEX_KINDS

        cls = INDEX_KINDS.get(kind)
        if cls is None:
            raise SqlPlanError(f"unknown index kind {kind!r}")
        options = dict(self.profile.index_options)
        return cls.bulk_load(items, **options)
