"""The in-process spatial database engine.

One :class:`Database` owns a catalog, a function registry and an engine
profile. It executes parsed statements and returns result sets. The three
benchmarked engines are the same machinery instantiated with the three
profiles — exactly the paper's setup of "one benchmark, N JDBC targets",
with profiles standing in for distinct server products.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, List, Optional, Sequence, Tuple

from repro.engines.profiles import EngineProfile, get_profile
from repro.errors import (
    GuardrailError,
    QueryCancelledError,
    QueryTimeoutError,
    SqlPlanError,
)
from repro.faults import FAULTS
from repro.geometry.base import Geometry
from repro.guard import CancelToken, ExecutionGuard, Guardrails
from repro.index import make_index
from repro.index.base import SpatialIndex
from repro.obs import Observability, Trace
from repro.sql import ast
from repro.sql.executor import Compiler, ExecContext, Scope, SpanNode, Stats
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.storage.catalog import Catalog, IndexEntry
from repro.storage.table import Column, ColumnType, Table


class ResultSet:
    """Materialised query result: column names + row tuples."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: List[str], rows: List[tuple],
                 rowcount: int = -1):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount if rowcount >= 0 else len(rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (for COUNT-style queries)."""
        if not self.rows:
            raise SqlPlanError("result set is empty")
        return self.rows[0][0]


class Database:
    """An embedded spatial database with one of the benchmark profiles."""

    #: SELECT plans cached per SQL text (the PreparedStatement analogue);
    #: bounded, and flushed whenever the schema changes
    PLAN_CACHE_SIZE = 256

    def __init__(self, profile: "EngineProfile | str" = "greenwood"):
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self.catalog = Catalog()
        self.registry = FunctionRegistry()
        self.stats = Stats()
        self.obs = Observability()
        self.obs.metrics.bind_stats(self.profile.name, self.stats)
        #: default execution limits for every statement on this database;
        #: per-call overrides win (see :meth:`execute`)
        self.guardrails = Guardrails()
        self._planner = Planner(self.catalog, self.registry, self.profile)
        self._plan_cache: "OrderedDict[str, tuple]" = OrderedDict()
        self._parse_cache: "OrderedDict[str, ast.Statement]" = OrderedDict()

    # -- public API --------------------------------------------------------

    @property
    def join_strategy(self) -> str:
        """Spatial join algorithm: "auto" (cost-based) or a forced one of
        "inlj" / "tree" / "pbsm" / "nlj"."""
        return self._planner.join_strategy

    @join_strategy.setter
    def join_strategy(self, strategy: str) -> None:
        from repro.sql.planner import JOIN_STRATEGIES

        if strategy not in JOIN_STRATEGIES:
            raise SqlPlanError(
                f"unknown join strategy {strategy!r}; "
                f"expected one of {', '.join(JOIN_STRATEGIES)}"
            )
        self._planner.join_strategy = strategy
        self._plan_cache.clear()

    def last_trace(self) -> Optional[Trace]:
        """The most recent statement trace (requires ``obs.enable_tracing()``)."""
        return self.obs.last_trace

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> ResultSet:
        """Parse and run one statement (parse results and SELECT plans are
        cached per SQL text with LRU eviction, the way a driver reuses
        prepared statements).

        ``timeout`` / ``max_rows`` / ``max_bytes`` / ``cancel`` arm
        per-statement guardrails over :attr:`guardrails` defaults; a
        tripped limit raises :class:`QueryTimeoutError`,
        :class:`MemoryBudgetError` or :class:`QueryCancelledError`. The
        failed statement leaves no cached plan poisoned — plans cache the
        *strategy*, never results.
        """
        guard = self.guardrails.start(
            timeout=timeout, max_rows=max_rows, max_bytes=max_bytes,
            cancel=cancel,
        )
        if self.obs.active:
            return self._execute_observed(sql, params, guard)
        statement = self._parse_statement(sql)
        if isinstance(statement, ast.Select):
            cached = self._plan_cache.get(sql)
            if cached is None:
                self.stats.plan_cache_misses += 1
                cached = self._planner.plan_select(statement)
                if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
                    self._plan_cache.popitem(last=False)
                self._plan_cache[sql] = cached
            else:
                self.stats.plan_cache_hits += 1
                self._plan_cache.move_to_end(sql)
            plan, names = cached
            ctx = ExecContext(
                tuple(params), self.profile, self.registry, self.catalog,
                self.stats, guard,
            )
            return ResultSet(names, self._collect(plan, ctx))
        # any non-SELECT may change schema or data layout: flush plans
        self._plan_cache.clear()
        return self.execute_statement(statement, params, guard=guard)

    def _parse_statement(self, sql: str) -> ast.Statement:
        """LRU-cached parse of one SQL text."""
        statement = self._parse_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            if len(self._parse_cache) >= self.PLAN_CACHE_SIZE:
                self._parse_cache.popitem(last=False)
            self._parse_cache[sql] = statement
        else:
            self._parse_cache.move_to_end(sql)
        return statement

    def _collect(self, plan, ctx: ExecContext) -> List[tuple]:
        """Drain a SELECT plan, counting guardrail trips on the way out."""
        try:
            return [row["__out__"] for row in plan.rows(ctx)]
        except GuardrailError as exc:
            self._record_guard_trip(exc)
            raise

    def _record_guard_trip(self, exc: GuardrailError) -> None:
        metrics = self.obs.metrics
        if isinstance(exc, QueryTimeoutError):
            metrics.counter(
                "query_timeouts_total", "queries stopped by their deadline"
            ).inc()
        elif isinstance(exc, QueryCancelledError):
            metrics.counter(
                "query_cancellations_total",
                "queries stopped by cooperative cancellation",
            ).inc()
        else:
            metrics.counter(
                "memory_budget_trips_total",
                "queries stopped by the row/byte memory budget",
            ).inc()

    def _execute_observed(
        self, sql: str, params: Sequence[Any],
        guard: Optional[ExecutionGuard] = None,
    ) -> ResultSet:
        """The instrumented twin of :meth:`execute`.

        Runs whenever any observability feature is on: fires hooks,
        times the statement, snapshots per-statement engine-counter
        deltas, and — when span capture is wanted — plans SELECTs afresh
        under a :class:`~repro.sql.executor.SpanNode` tree (span wrapping
        mutates the plan, so cached plans are never traced).
        """
        import time as _time

        obs = self.obs
        params_tuple = tuple(params)
        if obs.hooks.query_start:
            obs.hooks.fire_query_start(sql, params_tuple)
        statement = self._parse_statement(sql)
        before = self.stats.snapshot()
        started_at = _time.time()
        start = _time.perf_counter()
        root = None
        if isinstance(statement, ast.Select) and obs.capture_spans:
            plan, names = self._planner.plan_select(statement)
            on_close = (
                obs.hooks.fire_operator_close
                if obs.hooks.operator_close else None
            )
            wrapped = SpanNode(plan, on_close)
            ctx = ExecContext(
                params_tuple, self.profile, self.registry, self.catalog,
                self.stats, guard,
            )
            result = ResultSet(names, self._collect(wrapped, ctx))
            root = wrapped.span
        elif isinstance(statement, ast.Select):
            cached = self._plan_cache.get(sql)
            if cached is None:
                self.stats.plan_cache_misses += 1
                cached = self._planner.plan_select(statement)
                if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
                    self._plan_cache.popitem(last=False)
                self._plan_cache[sql] = cached
            else:
                self.stats.plan_cache_hits += 1
                self._plan_cache.move_to_end(sql)
            plan, names = cached
            ctx = ExecContext(
                params_tuple, self.profile, self.registry, self.catalog,
                self.stats, guard,
            )
            result = ResultSet(names, self._collect(plan, ctx))
        else:
            self._plan_cache.clear()
            result = self.execute_statement(
                statement, params_tuple, guard=guard
            )
        elapsed = _time.perf_counter() - start
        after = self.stats.snapshot()
        trace = Trace(
            sql=sql,
            engine=self.profile.name,
            statement=type(statement).__name__,
            seconds=elapsed,
            started_at=started_at,
            rows=result.rowcount,
            counters={
                key: value - before[key]
                for key, value in after.items()
                if value != before[key]
            },
            root=root,
        )
        obs.record(trace)
        return result

    def execute_statement(
        self, statement: ast.Statement, params: Sequence[Any] = (),
        guard: Optional[ExecutionGuard] = None,
    ) -> ResultSet:
        if isinstance(statement, ast.Select):
            return self._run_select(statement, params, guard)
        if isinstance(statement, ast.Insert):
            return self._run_insert(statement, params)
        if isinstance(statement, ast.Delete):
            return self._run_delete(statement, params)
        if isinstance(statement, ast.Update):
            return self._run_update(statement, params)
        if isinstance(statement, ast.CreateTable):
            return self._run_create_table(statement)
        if isinstance(statement, ast.CreateSpatialIndex):
            return self._run_create_index(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, statement.if_exists)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.DropIndex):
            self.catalog.drop_index(statement.name, statement.if_exists)
            return ResultSet([], [], 0)
        if isinstance(statement, ast.Analyze):
            return self._run_analyze(statement)
        raise SqlPlanError(f"unsupported statement {type(statement).__name__}")

    def _run_analyze(self, stmt: ast.Analyze) -> ResultSet:
        """Recompute geometry-column statistics (bounds, sizes, histograms)
        for one table or, with no table name, every table in the catalog."""
        if stmt.table is not None:
            tables = [self.catalog.table(stmt.table)]
        else:
            tables = list(self.catalog.tables())
        for table in tables:
            table.analyze()
        return ResultSet([], [], len(tables))

    def explain(self, sql: str) -> str:
        """The plan tree for a SELECT, as indented text."""
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise SqlPlanError("EXPLAIN supports SELECT statements only")
        plan, _names = self._planner.plan_select(statement)
        return "\n".join(plan.explain())

    def explain_analyze(self, sql: str, params: Sequence[Any] = ()) -> str:
        """Execute a SELECT and report per-operator rows and times.

        Plans afresh (never from the cache — instrumentation rewires the
        tree) and drains the full result before rendering, like
        ``EXPLAIN ANALYZE`` in the DBMSes the paper benchmarks. Each
        operator line shows actual rows, wall time and its exclusive
        engine-counter deltas (``index_probes``, ``join_pairs_…``, …).
        """
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise SqlPlanError("EXPLAIN ANALYZE supports SELECT statements only")
        plan, _names = self._planner.plan_select(statement)
        wrapped = SpanNode(plan)
        ctx = ExecContext(
            tuple(params), self.profile, self.registry, self.catalog,
            self.stats,
        )
        emitted = sum(1 for _row in wrapped.rows(ctx))
        lines = wrapped.explain()
        lines.append(f"Total output rows: {emitted}")
        return "\n".join(lines)

    # -- statement runners -----------------------------------------------------

    def _run_select(
        self, stmt: ast.Select, params: Sequence[Any],
        guard: Optional[ExecutionGuard] = None,
    ) -> ResultSet:
        plan, names = self._planner.plan_select(stmt)
        ctx = ExecContext(
            tuple(params), self.profile, self.registry, self.catalog,
            self.stats, guard,
        )
        return ResultSet(names, self._collect(plan, ctx))

    def _run_insert(self, stmt: ast.Insert, params: Sequence[Any]) -> ResultSet:
        table = self.catalog.table(stmt.table)
        if stmt.columns is None:
            positions = list(range(len(table.columns)))
        else:
            positions = [table.column_index(c) for c in stmt.columns]
        compiler = Compiler(Scope(), self.registry, self.profile)
        ctx = ExecContext(
            tuple(params), self.profile, self.registry, self.catalog, self.stats
        )
        # statement atomicity: evaluate and type-check every row before
        # touching the heap, so a failure in row k leaves nothing behind
        pending: List[List[Any]] = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(positions):
                raise SqlPlanError(
                    f"INSERT expects {len(positions)} values, got {len(row_exprs)}"
                )
            values: List[Any] = [None] * len(table.columns)
            for position, expr in zip(positions, row_exprs):
                values[position] = compiler.compile(expr)({}, ctx)
            pending.append(values)
        from repro.storage.table import _coerce

        coerced = [
            tuple(_coerce(v, col) for v, col in zip(vals, table.columns))
            for vals in pending
        ]
        for values in coerced:
            self._insert_one(table, values)
        return ResultSet([], [], len(coerced))

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk insert of Python values (the fast path the loader uses)."""
        table = self.catalog.table(table_name)
        count = 0
        for values in rows:
            self._insert_one(table, values)
            count += 1
        return count

    def _insert_one(self, table: Table, values: Sequence[Any]) -> int:
        """Heap insert + index maintenance; the heap row is rolled back if
        index maintenance fails, keeping heap and indexes consistent."""
        row_id = table.insert_row(values)
        try:
            self._index_insert(table, row_id)
        except Exception:
            table.delete_row(row_id)
            raise
        return row_id

    def _index_insert(self, table: Table, row_id: int) -> None:
        if FAULTS.active:
            # fires before any index is touched, so the caller's heap
            # rollback restores a fully consistent catalog
            FAULTS.hit("index.insert")
        for entry in self.catalog.indexes():
            if entry.table_name != table.name:
                continue
            idx = table.column_index(entry.column_name)
            geom = table.get_row(row_id)[idx]
            if isinstance(geom, Geometry):
                entry.index.insert(row_id, geom.envelope)

    def _run_delete(self, stmt: ast.Delete, params: Sequence[Any]) -> ResultSet:
        table = self.catalog.table(stmt.table)
        scope = Scope()
        scope.add(stmt.table, table)
        ctx = ExecContext(
            tuple(params), self.profile, self.registry, self.catalog, self.stats
        )
        predicate = None
        if stmt.where is not None:
            predicate = Compiler(scope, self.registry, self.profile).compile(
                stmt.where
            )
        doomed: List[int] = []
        for row_id, row in table.scan():
            if predicate is None or predicate({table.name: row}, ctx) is True:
                doomed.append(row_id)
        for row_id in doomed:
            row = table.get_row(row_id)
            for entry in self.catalog.indexes():
                if entry.table_name != table.name:
                    continue
                idx = table.column_index(entry.column_name)
                geom = row[idx]
                if isinstance(geom, Geometry):
                    entry.index.remove(row_id, geom.envelope)
            table.delete_row(row_id)
        return ResultSet([], [], len(doomed))

    def _run_update(self, stmt: ast.Update, params: Sequence[Any]) -> ResultSet:
        table = self.catalog.table(stmt.table)
        scope = Scope()
        scope.add(stmt.table, table)
        compiler = Compiler(scope, self.registry, self.profile)
        ctx = ExecContext(
            tuple(params), self.profile, self.registry, self.catalog, self.stats
        )
        predicate = (
            compiler.compile(stmt.where) if stmt.where is not None else None
        )
        assignments = [
            (table.column_index(column), compiler.compile(expr))
            for column, expr in stmt.assignments
        ]
        geom_positions = {
            table.column_index(name) for name in table.geometry_columns()
        }
        # two-phase for statement atomicity: evaluate first, apply after
        pending: List[Tuple[int, list]] = []
        alias = table.name
        for row_id, row in table.scan():
            if predicate is not None and predicate({alias: row}, ctx) is not True:
                continue
            values = list(row)
            for position, value_fn in assignments:
                values[position] = value_fn({alias: row}, ctx)
            pending.append((row_id, values))
        for row_id, values in pending:
            old_row = table.get_row(row_id)
            table.update_row(row_id, values)
            new_row = table.get_row(row_id)
            for entry in self.catalog.indexes():
                if entry.table_name != table.name:
                    continue
                position = table.column_index(entry.column_name)
                if position not in geom_positions:
                    continue
                old_geom = old_row[position]
                new_geom = new_row[position]
                if old_geom is new_geom:
                    continue
                if isinstance(old_geom, Geometry):
                    entry.index.remove(row_id, old_geom.envelope)
                if isinstance(new_geom, Geometry):
                    entry.index.insert(row_id, new_geom.envelope)
        return ResultSet([], [], len(pending))

    def _run_create_table(self, stmt: ast.CreateTable) -> ResultSet:
        if stmt.if_not_exists and self.catalog.has_table(stmt.name):
            return ResultSet([], [], 0)
        columns = [
            Column(c.name, ColumnType.parse(c.type_name)) for c in stmt.columns
        ]
        self.catalog.create_table(stmt.name, columns)
        return ResultSet([], [], 0)

    def _run_create_index(self, stmt: ast.CreateSpatialIndex) -> ResultSet:
        table = self.catalog.table(stmt.table)
        column = table.column(stmt.column)
        if column.type is not ColumnType.GEOMETRY:
            raise SqlPlanError(
                f"CREATE SPATIAL INDEX requires a GEOMETRY column, "
                f"{stmt.column!r} is {column.type.value}"
            )
        kind = stmt.using or self.profile.index_kind
        index = self._build_index(table, column.name, kind)
        self.catalog.register_index(
            IndexEntry(stmt.name, table.name, column.name, index)
        )
        return ResultSet([], [], len(index))

    def _build_index(
        self, table: Table, column_name: str, kind: str
    ) -> SpatialIndex:
        idx = table.column_index(column_name)
        items = [
            (row_id, row[idx].envelope)
            for row_id, row in table.scan()
            if isinstance(row[idx], Geometry)
        ]
        from repro.index import INDEX_KINDS

        cls = INDEX_KINDS.get(kind)
        if cls is None:
            raise SqlPlanError(f"unknown index kind {kind!r}")
        options = dict(self.profile.index_options)
        return cls.bulk_load(items, **options)
