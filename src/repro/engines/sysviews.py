"""Read-only ``jackpine_*`` system views over the engine's own telemetry.

The ``pg_catalog`` idea turned inward: the observability subsystems —
statement store, wait monitor, ASH sampler, per-table usage counters —
are exposed as *virtual tables* the normal planner and executor can
scan, so ``SELECT * FROM jackpine_statements ORDER BY total_time DESC
LIMIT 5`` runs through the ordinary lexer → parser → planner → executor
path (and therefore over DB-API) with no special casing beyond catalog
name resolution.

A :class:`SystemView` duck-types the narrow :class:`~repro.storage.table
.Table` surface a non-spatial ``SeqScan`` pipeline consumes: schema
lookups, a ``rows`` list, page accounting and MVCC fields. ``rows`` is a
property that calls the view's producer afresh on every scan, so cached
plans always see live data. All mutation entry points raise — the
catalog is strictly read-only.

Views installed on every :class:`~repro.engines.Database`:

========================  ==================================================
``jackpine_statements``   per-fingerprint aggregates (statement store)
``jackpine_plans``        captured plan shapes + flip lineage
``jackpine_waits``        per-event wait totals (wait monitor)
``jackpine_ash``          active-session-history samples (running samplers)
``jackpine_tables``       per-table/index usage: scans, probes, vacuum —
                          plus a ``bufferpool`` row (hit ratio, page I/O)
                          when durable storage is attached
``jackpine_progress``     live per-session phase + rows processed (and
                          the durable checkpoint LSN, when attached)
``jackpine_service``      query service tier: session pool, admission
                          queue, shed counts and result-cache counters
                          (empty unless a server is attached)
``jackpine_requests``     flight recorder: one row per traced service
                          request — trace id, outcome, per-stage
                          timings, tail-sampling verdict (empty unless
                          a server ran with request tracing)
========================  ==================================================
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import SqlPlanError, SqlProgrammingError
from repro.storage.statistics import TableStats
from repro.storage.table import Column, ColumnType

__all__ = ["SystemView", "SYSTEM_VIEW_NAMES", "install_system_views"]

#: every reserved view name, rejected by CREATE TABLE / DROP TABLE
SYSTEM_VIEW_NAMES: Tuple[str, ...] = (
    "jackpine_statements",
    "jackpine_plans",
    "jackpine_waits",
    "jackpine_ash",
    "jackpine_tables",
    "jackpine_progress",
    "jackpine_service",
    "jackpine_requests",
)


def _col(name: str, type_name: str) -> Column:
    return Column(name, ColumnType.parse(type_name))


class SystemView:
    """A read-only virtual table over a row producer.

    Duck-types the Table surface the planner and the non-spatial scan
    pipeline touch; the producer is a zero-argument callable returning a
    list of tuples matching ``columns``. MVCC and page accounting are
    inert: a view has no heap, no versions and a nominal single page.
    """

    ROWS_PER_PAGE = 64

    def __init__(self, name: str, columns: List[Column],
                 producer: Callable[[], List[tuple]]):
        self.name = name.lower()
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, int] = {
            c.name: i for i, c in enumerate(self.columns)
        }
        self._producer = producer
        self.mvcc_versions = 0
        self.stats = TableStats([])
        #: usage counter, bumped by SeqScan like any table's
        self.seq_scans = 0

    # -- schema ------------------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SqlPlanError(
                f"no column {name!r} in system view {self.name!r}"
            )

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def geometry_columns(self) -> List[str]:
        return []

    # -- data (produced fresh per read) ------------------------------------

    @property
    def rows(self) -> List[tuple]:
        return self._producer()

    @property
    def live_count(self) -> int:
        return len(self._producer())

    def __len__(self) -> int:
        return self.live_count

    def scan(self, snapshot: Any = None) -> Iterator[Tuple[int, tuple]]:
        for row_id, row in enumerate(self._producer()):
            yield row_id, row

    def get_row(self, row_id: int) -> tuple:
        return self._producer()[row_id]

    def row_visible(self, row_id: int, snapshot: Any) -> bool:
        return True

    # -- inert physical accounting -----------------------------------------

    @property
    def page_count(self) -> int:
        return 1

    def page_of(self, row_id: int) -> int:
        return 0

    def analyze(self) -> None:
        pass

    def envelopes(self, column_name: str) -> List[Any]:
        raise SqlPlanError(
            f"system view {self.name!r} has no geometry columns"
        )

    def version_arrays(self):  # pragma: no cover - mvcc_versions is 0
        raise SqlProgrammingError(
            f"system view {self.name!r} carries no MVCC versions"
        )

    # -- mutation is always an error ---------------------------------------

    def _read_only(self, *_args: Any, **_kwargs: Any) -> Any:
        raise SqlProgrammingError(
            f"{self.name!r} is a read-only system view"
        )

    insert_row = _read_only
    update_row = _read_only
    delete_row = _read_only
    mark_deleted = _read_only
    clear_deleted = _read_only
    freeze_row = _read_only
    rollback_insert = _read_only
    ensure_versioned = _read_only


# -- producers ---------------------------------------------------------------


def _statements_view(db: Any) -> SystemView:
    columns = [
        _col("fingerprint", "TEXT"),
        _col("statement", "TEXT"),
        _col("calls", "INTEGER"),
        _col("errors", "INTEGER"),
        _col("total_time", "REAL"),
        _col("mean_time", "REAL"),
        _col("p50", "REAL"),
        _col("p95", "REAL"),
        _col("p99", "REAL"),
        _col("rows", "INTEGER"),
        _col("rows_scanned", "INTEGER"),
        _col("index_probes", "INTEGER"),
        _col("pages_read", "INTEGER"),
        _col("pairs_considered", "INTEGER"),
        _col("pairs_emitted", "INTEGER"),
        _col("degraded", "INTEGER"),
        _col("retries", "INTEGER"),
        _col("aborts", "INTEGER"),
        _col("timeouts", "INTEGER"),
        _col("wait_lock_seconds", "REAL"),
        _col("wait_latch_seconds", "REAL"),
        _col("wait_io_seconds", "REAL"),
        _col("wait_net_seconds", "REAL"),
        _col("wait_service_seconds", "REAL"),
        _col("wait_client_seconds", "REAL"),
        _col("wait_guard_seconds", "REAL"),
        _col("cpu_seconds", "REAL"),
    ]

    def produce() -> List[tuple]:
        out: List[tuple] = []
        for entry in db.obs.statements.statements():
            hist = entry.histogram
            counters = entry.counters
            waits = entry.wait_class_seconds
            out.append((
                entry.fingerprint,
                entry.statement,
                entry.calls,
                entry.errors,
                entry.total_seconds,
                entry.mean_seconds,
                hist.p50 if hist.count else None,
                hist.p95 if hist.count else None,
                hist.p99 if hist.count else None,
                entry.rows_returned,
                counters["rows_scanned"],
                counters["index_probes"],
                counters["pages_read"],
                counters["join_pairs_considered"],
                counters["join_pairs_emitted"],
                counters["degraded_results"],
                entry.retries,
                entry.aborts,
                entry.timeouts,
                waits.get("LockManager", 0.0),
                waits.get("Latch", 0.0),
                waits.get("IO", 0.0),
                waits.get("Net", 0.0),
                waits.get("Service", 0.0),
                waits.get("Client", 0.0),
                waits.get("Guard", 0.0),
                waits.get("CPU", 0.0),
            ))
        return out

    return SystemView("jackpine_statements", columns, produce)


def _plans_view(db: Any) -> SystemView:
    columns = [
        _col("statement_fingerprint", "TEXT"),
        _col("statement", "TEXT"),
        _col("plan_fingerprint", "TEXT"),
        _col("plan_shape", "TEXT"),
        _col("executions", "INTEGER"),
        _col("first_seen", "REAL"),
        _col("last_seen", "REAL"),
        _col("is_current", "INTEGER"),
        _col("flipped_from", "TEXT"),
    ]

    def produce() -> List[tuple]:
        return [
            (
                plan.statement_fingerprint,
                plan.statement,
                plan.plan_fingerprint,
                plan.shape,
                plan.executions,
                plan.first_seen,
                plan.last_seen,
                1 if plan.current else 0,
                plan.flipped_from,
            )
            for plan in db.obs.statements.plans()
        ]

    return SystemView("jackpine_plans", columns, produce)


def _waits_view() -> SystemView:
    from repro.obs.waits import WAIT_EVENTS, WAITS

    columns = [
        _col("wait_event", "TEXT"),
        _col("wait_class", "TEXT"),
        _col("site", "TEXT"),
        _col("count", "INTEGER"),
        _col("total_seconds", "REAL"),
        _col("p50", "REAL"),
        _col("p95", "REAL"),
        _col("p99", "REAL"),
    ]

    def produce() -> List[tuple]:
        out: List[tuple] = []
        for event, entry in sorted(WAITS.summary().items()):
            out.append((
                event,
                event.split(":", 1)[0],
                WAIT_EVENTS.get(event, ""),
                int(entry["count"]),
                entry["seconds"],
                entry.get("p50"),
                entry.get("p95"),
                entry.get("p99"),
            ))
        return out

    return SystemView("jackpine_waits", columns, produce)


def _ash_view() -> SystemView:
    columns = [
        _col("sampled_at", "REAL"),
        _col("thread_id", "INTEGER"),
        _col("session_id", "INTEGER"),
        _col("engine", "TEXT"),
        _col("sql", "TEXT"),
        _col("txid", "INTEGER"),
        _col("wait_event", "TEXT"),
        _col("wait_seconds", "REAL"),
        _col("statement_seconds", "REAL"),
        _col("rows_processed", "INTEGER"),
    ]

    def produce() -> List[tuple]:
        from repro.obs.ash import registered_samples

        return [
            (
                sample.sampled_at,
                sample.thread_id,
                sample.session_id,
                sample.engine,
                sample.sql,
                sample.txid,
                sample.wait_event,
                sample.wait_seconds,
                sample.statement_seconds,
                sample.rows_processed,
            )
            for sample in registered_samples()
        ]

    return SystemView("jackpine_ash", columns, produce)


def _tables_view(db: Any) -> SystemView:
    columns = [
        _col("name", "TEXT"),
        _col("kind", "TEXT"),
        _col("table_name", "TEXT"),
        _col("column_name", "TEXT"),
        _col("live_rows", "INTEGER"),
        _col("pages", "INTEGER"),
        _col("seq_scans", "INTEGER"),
        _col("index_probes", "INTEGER"),
        _col("mvcc_versions", "INTEGER"),
        _col("vacuumed_rows", "INTEGER"),
        _col("frozen_rows", "INTEGER"),
        _col("pages_read", "INTEGER"),
        _col("pages_written", "INTEGER"),
        _col("buffer_hit_ratio", "REAL"),
    ]

    def produce() -> List[tuple]:
        out: List[tuple] = []
        for table in db.catalog.tables():
            out.append((
                table.name,
                "table",
                table.name,
                None,
                table.live_count,
                table.page_count,
                table.seq_scans,
                0,
                table.mvcc_versions,
                table.vacuumed_rows,
                table.frozen_rows,
                None,
                None,
                None,
            ))
        for entry in db.catalog.indexes():
            out.append((
                entry.name,
                "index",
                entry.table_name,
                entry.column_name,
                len(entry.index),
                0,
                0,
                entry.probes,
                0,
                0,
                0,
                None,
                None,
                None,
            ))
        durable = db.durability
        if durable is not None:
            stats = durable.stats()
            out.append((
                "buffer_pool",
                "bufferpool",
                None,
                None,
                None,
                stats["pages_on_disk"],
                None,
                None,
                None,
                None,
                None,
                stats["pages_read"],
                stats["pages_written"],
                stats["buffer_hit_ratio"],
            ))
        return out

    return SystemView("jackpine_tables", columns, produce)


def _progress_view(db: Any) -> SystemView:
    from repro.obs.waits import WAITS

    columns = [
        _col("session_id", "INTEGER"),
        _col("thread_id", "INTEGER"),
        _col("engine", "TEXT"),
        _col("txid", "INTEGER"),
        _col("sql", "TEXT"),
        _col("phase", "TEXT"),
        _col("wait_event", "TEXT"),
        _col("seconds", "REAL"),
        _col("rows_processed", "INTEGER"),
        _col("index_probes", "INTEGER"),
        _col("pairs_considered", "INTEGER"),
        _col("pairs_emitted", "INTEGER"),
        _col("checkpoint_lsn", "INTEGER"),
    ]

    def produce() -> List[tuple]:
        now = time.perf_counter()
        durable = db.durability
        checkpoint_lsn = (
            durable.last_checkpoint_lsn if durable is not None else None
        )
        out: List[tuple] = []
        for state in WAITS.thread_states():
            sql = state.statement
            if sql is None:
                continue
            shard = state.shard
            rows_scanned = shard.rows_scanned if shard is not None else 0
            probes = shard.index_probes if shard is not None else 0
            considered = (
                shard.join_pairs_considered if shard is not None else 0
            )
            emitted = shard.join_pairs_emitted if shard is not None else 0
            wait = state.current_wait
            if wait is not None:
                phase = "waiting"
            elif considered:
                phase = "joining"
            elif probes:
                phase = "probing"
            elif rows_scanned:
                phase = "scanning"
            else:
                phase = "planning"
            out.append((
                state.session_id,
                state.thread_id,
                state.engine,
                state.txid,
                sql,
                phase,
                wait,
                now - state.statement_since,
                rows_scanned,
                probes,
                considered,
                emitted,
                checkpoint_lsn,
            ))
        return out

    return SystemView("jackpine_progress", columns, produce)


def _service_view(db: Any) -> SystemView:
    columns = [
        _col("pool_size", "INTEGER"),
        _col("sessions_in_use", "INTEGER"),
        _col("sessions_idle", "INTEGER"),
        _col("sessions_created", "INTEGER"),
        _col("sessions_reaped", "INTEGER"),
        _col("queue_depth", "INTEGER"),
        _col("queue_limit", "INTEGER"),
        _col("executing", "INTEGER"),
        _col("admitted", "INTEGER"),
        _col("shed_queue_full", "INTEGER"),
        _col("shed_deadline", "INTEGER"),
        _col("cache_entries", "INTEGER"),
        _col("cache_hits", "INTEGER"),
        _col("cache_misses", "INTEGER"),
        _col("cache_invalidations", "INTEGER"),
        _col("cache_bypass", "INTEGER"),
    ]

    def produce() -> List[tuple]:
        service = db.service
        if service is None:
            return []
        stats = service.stats()
        pool = stats["pool"]
        admission = stats["admission"]
        cache = stats["cache"]
        return [(
            pool["size"],
            pool["in_use"],
            pool["idle"],
            pool["created"],
            pool["reaped"],
            admission["queue_depth"],
            admission["queue_limit"],
            admission["executing"],
            admission["admitted"],
            admission["shed_queue_full"],
            admission["shed_deadline"],
            cache["entries"],
            cache["hits"],
            cache["misses"],
            cache["invalidations"],
            cache["bypass"],
        )]

    return SystemView("jackpine_service", columns, produce)


def _requests_view() -> SystemView:
    columns = [
        _col("trace_id", "TEXT"),
        _col("started_at", "REAL"),
        _col("sql", "TEXT"),
        _col("fingerprint", "TEXT"),
        _col("outcome", "TEXT"),
        _col("shed", "INTEGER"),
        _col("cached", "INTEGER"),
        _col("cache_status", "TEXT"),
        _col("recv_seconds", "REAL"),
        _col("queue_seconds", "REAL"),
        _col("session_seconds", "REAL"),
        _col("cache_seconds", "REAL"),
        _col("exec_seconds", "REAL"),
        _col("send_seconds", "REAL"),
        _col("total_seconds", "REAL"),
        _col("retained", "INTEGER"),
        _col("spans", "INTEGER"),
        _col("clock_skew_seconds", "REAL"),
    ]

    def produce() -> List[tuple]:
        # reads the process-wide recorder, like jackpine_waits reads
        # WAITS — a query *through* the server sees its own history
        from repro.obs.requests import RECORDER

        out: List[tuple] = []
        for record in RECORDER.records():
            stages = record.stage_seconds
            out.append((
                record.trace_id,
                record.started_at,
                record.sql,
                record.fingerprint,
                record.outcome,
                1 if record.shed else 0,
                1 if record.cached else 0,
                record.cache_status,
                stages.get("net.recv"),
                stages.get("queue.wait"),
                stages.get("session.acquire"),
                stages.get("cache.lookup"),
                stages.get("execute"),
                stages.get("net.send"),
                record.total_seconds,
                1 if record.retained else 0,
                record.span_count(),
                record.clock_skew_seconds,
            ))
        return out

    return SystemView("jackpine_requests", columns, produce)


def install_system_views(db: Any) -> None:
    """Register the full ``jackpine_*`` catalog on one database."""
    for view in (
        _statements_view(db),
        _plans_view(db),
        _waits_view(),
        _ash_view(),
        _tables_view(db),
        _progress_view(db),
        _service_view(db),
        _requests_view(),
    ):
        db.catalog.register_system_view(view)
