"""Timing statistics for benchmark runs."""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

#: per-query outcomes the harness distinguishes; ``n/s`` stays a result
#: (the paper reports feature gaps), the rest are resilience outcomes
OUTCOMES = ("ok", "degraded", "not supported", "timeout", "error")


@dataclass
class QueryTiming:
    """Repeated-measurement record for one benchmark query."""

    query_id: str
    times: List[float] = field(default_factory=list)
    result_value: Optional[object] = None  # e.g. COUNT(*) for answer checks
    supported: bool = True
    error: Optional[str] = None
    #: exemplar operator trace (a :class:`repro.obs.Trace`) captured by
    #: the harness outside the timed runs, for telemetry breakdowns
    trace: Optional[object] = None
    #: one of :data:`OUTCOMES` — how the measurement protocol ended
    outcome: str = "ok"
    #: transient-fault retries spent across all runs of this query
    retries: int = 0

    @property
    def ok(self) -> bool:
        """True when the timings are usable (possibly degraded)."""
        return self.outcome in ("ok", "degraded")

    def record(self, seconds: float) -> None:
        self.times.append(seconds)

    def percentile(self, p: float) -> float:
        """Exact percentile of the recorded runs (``p`` in 0..100)."""
        from repro.obs.metrics import percentile_of

        return percentile_of(self.times, p)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def runs(self) -> int:
        return len(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times) if self.times else math.nan

    @property
    def median(self) -> float:
        if not self.times:
            return math.nan
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def minimum(self) -> float:
        return min(self.times) if self.times else math.nan

    @property
    def maximum(self) -> float:
        return max(self.times) if self.times else math.nan

    @property
    def stddev(self) -> float:
        if len(self.times) < 2:
            return 0.0
        mean = self.mean
        var = sum((t - mean) ** 2 for t in self.times) / (len(self.times) - 1)
        return math.sqrt(var)

    @property
    def total(self) -> float:
        return sum(self.times)


def time_call(fn: Callable[[], object]) -> tuple:
    """(elapsed_seconds, return_value) of one call."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def backoff_delay(
    attempt: int,
    base: float = 0.05,
    cap: float = 1.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Full-jitter exponential backoff for retry ``attempt`` (0-based).

    Sleeping a uniform draw from ``[0, min(cap, base * 2**attempt)]``
    decorrelates retries — the standard cure for retry storms.
    """
    window = min(cap, base * (2.0 ** attempt))
    return (rng or random).uniform(0.0, window)


def run_timed(
    timing: QueryTiming,
    fn: Callable[[], object],
    repeats: int = 3,
    warmups: int = 1,
    retries: int = 0,
    backoff_base: float = 0.05,
    backoff_cap: float = 1.0,
    rng: Optional[random.Random] = None,
) -> QueryTiming:
    """Standard protocol: discard warmups, record ``repeats`` runs.

    Resilience contract: transient faults (:class:`TransientError`) are
    retried up to ``retries`` times per call with full-jitter backoff —
    only the successful attempt is timed. Deadline trips, unsupported
    features and other engine errors end the protocol and are recorded
    on ``timing.outcome`` instead of propagating, so one failing query
    never takes down a suite run.
    """
    from repro.errors import (
        QueryTimeoutError,
        ReproError,
        TransientError,
        UnsupportedFeatureError,
    )

    def attempt(record: bool) -> None:
        tries = 0
        while True:
            try:
                elapsed, value = time_call(fn)
            except TransientError:
                if tries >= retries:
                    raise
                time.sleep(backoff_delay(tries, backoff_base, backoff_cap, rng))
                tries += 1
                timing.retries += 1
                from repro.obs.metrics import GLOBAL

                GLOBAL.counter(
                    "harness_retries_total",
                    "transient-fault retries spent by the benchmark harness",
                ).inc()
                continue
            if record:
                timing.record(elapsed)
                timing.result_value = value
            return

    try:
        for _ in range(warmups):
            attempt(record=False)
        for _ in range(repeats):
            attempt(record=True)
    except UnsupportedFeatureError as exc:
        timing.supported = False
        timing.outcome = "not supported"
        timing.error = str(exc)
    except QueryTimeoutError as exc:
        timing.outcome = "timeout"
        timing.error = str(exc)
    except ReproError as exc:
        timing.outcome = "error"
        timing.error = str(exc)
    return timing
