"""Timing statistics for benchmark runs."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class QueryTiming:
    """Repeated-measurement record for one benchmark query."""

    query_id: str
    times: List[float] = field(default_factory=list)
    result_value: Optional[object] = None  # e.g. COUNT(*) for answer checks
    supported: bool = True
    error: Optional[str] = None
    #: exemplar operator trace (a :class:`repro.obs.Trace`) captured by
    #: the harness outside the timed runs, for telemetry breakdowns
    trace: Optional[object] = None

    def record(self, seconds: float) -> None:
        self.times.append(seconds)

    def percentile(self, p: float) -> float:
        """Exact percentile of the recorded runs (``p`` in 0..100)."""
        from repro.obs.metrics import percentile_of

        return percentile_of(self.times, p)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def runs(self) -> int:
        return len(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times) if self.times else math.nan

    @property
    def median(self) -> float:
        if not self.times:
            return math.nan
        ordered = sorted(self.times)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def minimum(self) -> float:
        return min(self.times) if self.times else math.nan

    @property
    def maximum(self) -> float:
        return max(self.times) if self.times else math.nan

    @property
    def stddev(self) -> float:
        if len(self.times) < 2:
            return 0.0
        mean = self.mean
        var = sum((t - mean) ** 2 for t in self.times) / (len(self.times) - 1)
        return math.sqrt(var)

    @property
    def total(self) -> float:
        return sum(self.times)


def time_call(fn: Callable[[], object]) -> tuple:
    """(elapsed_seconds, return_value) of one call."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def run_timed(
    timing: QueryTiming,
    fn: Callable[[], object],
    repeats: int = 3,
    warmups: int = 1,
) -> QueryTiming:
    """Standard protocol: discard warmups, record ``repeats`` runs."""
    from repro.errors import UnsupportedFeatureError

    try:
        for _ in range(warmups):
            fn()
        for _ in range(repeats):
            elapsed, value = time_call(fn)
            timing.record(elapsed)
            timing.result_value = value
    except UnsupportedFeatureError as exc:
        timing.supported = False
        timing.error = str(exc)
    return timing
