"""Topological micro benchmark: DE-9IM relation × geometry-type-pair matrix.

This reconstructs the paper's primary micro table (J-T1): each query
isolates one named DE-9IM relation over one pair of geometry types drawn
from the TIGER-like layers, counting qualifying pairs so the result is a
single comparable number per engine. Selective queries go through the
spatial index (filter + refine); ``Disjoint`` deliberately cannot, which
is part of what the experiment shows.
"""

from __future__ import annotations

from typing import List

from repro.core.query import BenchmarkQuery


def topology_queries() -> List[BenchmarkQuery]:
    """The full topological micro suite, in report order."""
    q: List[BenchmarkQuery] = []

    def add(query_id: str, title: str, sql: str, description: str = "") -> None:
        q.append(
            BenchmarkQuery(
                query_id=f"topo.{query_id}",
                title=title,
                category="topology",
                sql=sql,
                description=description,
            )
        )

    # --- polygon vs polygon -------------------------------------------------
    add(
        "polygon_equals_polygon",
        "Polygon Equals Polygon",
        "SELECT COUNT(*) FROM arealm a JOIN arealm b "
        "ON ST_Equals(a.geom, b.geom) WHERE a.gid < b.gid",
        "self-join: distinct equal landmark polygons (expected ~0)",
    )
    add(
        "polygon_disjoint_polygon",
        "Polygon Disjoint Polygon",
        "SELECT COUNT(*) FROM counties c JOIN areawater w "
        "ON ST_Disjoint(c.geom, w.geom)",
        "non-indexable relation: full cross-pair evaluation",
    )
    add(
        "polygon_intersects_polygon",
        "Polygon Intersects Polygon",
        "SELECT COUNT(*) FROM counties c JOIN areawater w "
        "ON ST_Intersects(c.geom, w.geom)",
    )
    add(
        "polygon_touches_polygon",
        "Polygon Touches Polygon",
        "SELECT COUNT(*) FROM counties a JOIN counties b "
        "ON ST_Touches(a.geom, b.geom) WHERE a.gid < b.gid",
        "county adjacency via exactly-shared borders",
    )
    add(
        "polygon_within_polygon",
        "Polygon Within Polygon",
        "SELECT COUNT(*) FROM arealm a JOIN counties c "
        "ON ST_Within(a.geom, c.geom)",
    )
    add(
        "polygon_contains_polygon",
        "Polygon Contains Polygon",
        "SELECT COUNT(*) FROM counties c JOIN arealm a "
        "ON ST_Contains(c.geom, a.geom)",
    )
    add(
        "polygon_overlaps_polygon",
        "Polygon Overlaps Polygon",
        "SELECT COUNT(*) FROM arealm a JOIN areawater w "
        "ON ST_Overlaps(a.geom, w.geom)",
    )

    # --- line vs polygon ----------------------------------------------------
    add(
        "line_intersects_polygon",
        "Line Intersects Polygon",
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)",
    )
    add(
        "line_crosses_polygon",
        "Line Crosses Polygon",
        "SELECT COUNT(*) FROM rivers r JOIN counties c "
        "ON ST_Crosses(r.geom, c.geom)",
    )
    add(
        "line_within_polygon",
        "Line Within Polygon",
        "SELECT COUNT(*) FROM edges e JOIN counties c "
        "ON ST_Within(e.geom, c.geom) WHERE e.road_class = 'local'",
    )
    add(
        "polygon_contains_line",
        "Polygon Contains Line",
        "SELECT COUNT(*) FROM counties c JOIN rivers r "
        "ON ST_Contains(c.geom, r.geom)",
        "rivers span the whole state: expected 0",
    )
    add(
        "line_touches_polygon",
        "Line Touches Polygon",
        "SELECT COUNT(*) FROM rivers r JOIN counties c "
        "ON ST_Touches(r.geom, c.geom)",
    )

    # --- line vs line -----------------------------------------------------------
    add(
        "line_intersects_line",
        "Line Intersects Line",
        "SELECT COUNT(*) FROM rivers r JOIN edges e "
        "ON ST_Intersects(r.geom, e.geom)",
    )
    add(
        "line_crosses_line",
        "Line Crosses Line",
        "SELECT COUNT(*) FROM rivers r JOIN edges e "
        "ON ST_Crosses(r.geom, e.geom)",
    )
    add(
        "line_overlaps_line",
        "Line Overlaps Line",
        "SELECT COUNT(*) FROM edges a JOIN edges b "
        "ON ST_Overlaps(a.geom, b.geom) "
        "WHERE a.gid < b.gid AND a.road_class = 'highway'",
    )
    add(
        "line_touches_line",
        "Line Touches Line",
        "SELECT COUNT(*) FROM edges a JOIN edges b "
        "ON ST_Touches(a.geom, b.geom) "
        "WHERE a.gid < b.gid AND a.fullname = b.fullname "
        "AND a.county_fips = b.county_fips",
        "consecutive address-range blocks of the same street",
    )

    # --- point vs polygon ----------------------------------------------------------
    add(
        "point_within_polygon",
        "Point Within Polygon",
        "SELECT COUNT(*) FROM pointlm p JOIN arealm a "
        "ON ST_Within(p.geom, a.geom)",
    )
    add(
        "polygon_contains_point",
        "Polygon Contains Point",
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)",
    )
    add(
        "point_intersects_polygon",
        "Point Intersects Polygon",
        "SELECT COUNT(*) FROM pointlm p JOIN areawater w "
        "ON ST_Intersects(p.geom, w.geom)",
    )

    # --- point vs line / point -------------------------------------------------------
    add(
        "point_intersects_line",
        "Point Intersects Line",
        "SELECT COUNT(*) FROM pointlm p JOIN edges e "
        "ON ST_Intersects(p.geom, e.geom)",
        "points rarely sit exactly on lines: near-zero result, full filter cost",
    )
    add(
        "point_equals_point",
        "Point Equals Point",
        "SELECT COUNT(*) FROM pointlm a JOIN pointlm b "
        "ON ST_Equals(a.geom, b.geom) WHERE a.gid < b.gid",
    )

    # --- window (region) queries: the classic selective filter ----------------------
    window = (
        "ST_MakeEnvelope(20000, 20000, 40000, 40000)"
    )
    add(
        "region_intersects_polygon",
        "Region Intersects Polygon (window)",
        f"SELECT COUNT(*) FROM arealm a WHERE ST_Intersects(a.geom, {window})",
        "single-table index-driven window query",
    )
    add(
        "region_intersects_line",
        "Region Intersects Line (window)",
        f"SELECT COUNT(*) FROM edges e WHERE ST_Intersects(e.geom, {window})",
    )
    add(
        "region_contains_point",
        "Region Contains Point (window)",
        f"SELECT COUNT(*) FROM pointlm p WHERE ST_Within(p.geom, {window})",
    )
    return q
