"""Data-loading micro benchmark (J-T3 / J-F4).

Measures, per layer: (1) table creation + row ingestion through the
DB-API with qmark parameters carrying WKB — the portable path a JDBC
loader uses — and (2) spatial index construction on the populated table.
The paper reports loading as its own micro benchmark because bulk
ingestion and index build dominate real GIS deployment time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dbapi import connect
from repro.engines import Database
from repro.geometry.base import Geometry


@dataclass
class LayerLoadTiming:
    layer: str
    rows: int
    insert_seconds: float
    index_seconds: float

    @property
    def rows_per_second(self) -> float:
        return self.rows / self.insert_seconds if self.insert_seconds else 0.0


@dataclass
class LoadResult:
    engine: str
    layers: List[LayerLoadTiming] = field(default_factory=list)

    @property
    def total_insert(self) -> float:
        return sum(t.insert_seconds for t in self.layers)

    @property
    def total_index(self) -> float:
        return sum(t.index_seconds for t in self.layers)


def run_loading(engine: str, dataset, index_kind: Optional[str] = None,
                batch_size: int = 128) -> LoadResult:
    """Load the dataset into a fresh engine instance, timing each layer."""
    db = Database(engine)
    conn = connect(database=db)
    cur = conn.cursor()
    result = LoadResult(engine=engine)
    for layer in dataset.layers.values():
        cur.execute(layer.create_sql)
        placeholders = ", ".join("?" for _ in layer.columns)
        insert_sql = f"INSERT INTO {layer.name} VALUES ({placeholders})"
        geom_idx = layer.columns.index(layer.geometry_column)

        def encode(row: tuple) -> tuple:
            values = list(row)
            geometry = values[geom_idx]
            if isinstance(geometry, Geometry):
                values[geom_idx] = geometry.wkb()
            return tuple(values)

        encoded = [encode(row) for row in layer.rows]
        start = time.perf_counter()
        for base in range(0, len(encoded), batch_size):
            cur.executemany(insert_sql, encoded[base : base + batch_size])
        insert_seconds = time.perf_counter() - start

        start = time.perf_counter()
        using = f" USING {index_kind}" if index_kind else ""
        cur.execute(
            f"CREATE SPATIAL INDEX idx_{layer.name}_geom "
            f"ON {layer.name} ({layer.geometry_column}){using}"
        )
        index_seconds = time.perf_counter() - start
        result.layers.append(
            LayerLoadTiming(layer.name, len(layer.rows),
                            insert_seconds, index_seconds)
        )
    conn.close()
    return result
