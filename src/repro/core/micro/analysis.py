"""Spatial-analysis micro benchmark (J-T2).

Each query isolates one OGC analysis function over a layer (or a layer
pair) and reduces the result to an aggregate so engines return one
comparable number. Functions missing from an engine's profile are
reported as "not supported" — a first-class outcome in the paper, which
found large feature gaps between the systems under test.
"""

from __future__ import annotations

from typing import List

from repro.core.query import BenchmarkQuery


def analysis_queries() -> List[BenchmarkQuery]:
    q: List[BenchmarkQuery] = []

    def add(query_id: str, title: str, sql: str, description: str = "") -> None:
        q.append(
            BenchmarkQuery(
                query_id=f"analysis.{query_id}",
                title=title,
                category="analysis",
                sql=sql,
                description=description,
            )
        )

    add(
        "dimension",
        "Dimension",
        "SELECT SUM(ST_Dimension(geom)) FROM edges",
    )
    add(
        "envelope",
        "Envelope",
        "SELECT SUM(ST_Area(ST_Envelope(geom))) FROM arealm",
    )
    add(
        "length",
        "Length",
        "SELECT SUM(ST_Length(geom)) FROM edges",
    )
    add(
        "area",
        "Area",
        "SELECT SUM(ST_Area(geom)) FROM counties",
    )
    add(
        "num_points",
        "NumPoints",
        "SELECT SUM(ST_NPoints(geom)) FROM edges",
    )
    add(
        "centroid",
        "Centroid",
        "SELECT SUM(ST_X(ST_Centroid(geom))) FROM counties",
    )
    add(
        "point_on_surface",
        "PointOnSurface",
        "SELECT SUM(ST_X(ST_PointOnSurface(geom))) FROM arealm",
    )
    add(
        "boundary",
        "Boundary",
        "SELECT SUM(ST_Length(ST_Boundary(geom))) FROM arealm",
    )
    add(
        "convex_hull",
        "ConvexHull",
        "SELECT SUM(ST_Area(ST_ConvexHull(geom))) FROM areawater",
    )
    add(
        "buffer_point",
        "Buffer (points)",
        "SELECT SUM(ST_Area(ST_Buffer(geom, 500))) FROM pointlm "
        "WHERE gid <= 100",
    )
    add(
        "buffer_line",
        "Buffer (lines)",
        "SELECT SUM(ST_Area(ST_Buffer(geom, 100, 4))) FROM edges "
        "WHERE road_class = 'highway'",
    )
    add(
        "distance",
        "Distance",
        "SELECT MAX(ST_Distance(geom, ST_Point(50000, 50000))) FROM pointlm",
    )
    add(
        "simplify",
        "Simplify",
        "SELECT SUM(ST_NPoints(ST_Simplify(geom, 200))) FROM edges "
        "WHERE road_class = 'highway'",
    )
    add(
        "intersection",
        "Intersection (areal)",
        "SELECT SUM(ST_Area(ST_Intersection(c.geom, w.geom))) "
        "FROM counties c JOIN areawater w ON ST_Intersects(c.geom, w.geom)",
        "clip lakes to counties: overlay on every qualifying pair",
    )
    add(
        "union_pairwise",
        "Union (pairwise)",
        "SELECT SUM(ST_Area(ST_Union(a.geom, w.geom))) "
        "FROM arealm a JOIN areawater w ON ST_Intersects(a.geom, w.geom)",
    )
    add(
        "difference",
        "Difference",
        "SELECT SUM(ST_Area(ST_Difference(c.geom, w.geom))) "
        "FROM counties c JOIN areawater w ON ST_Intersects(c.geom, w.geom)",
    )
    add(
        "sym_difference",
        "SymDifference",
        "SELECT SUM(ST_Area(ST_SymDifference(a.geom, w.geom))) "
        "FROM arealm a JOIN areawater w ON ST_Overlaps(a.geom, w.geom)",
    )
    add(
        "union_aggregate",
        "Union (aggregate)",
        "SELECT ST_Area(ST_Union(geom)) FROM parcels "
        "WHERE county_fips = (SELECT_FIPS)",
        "dissolve one suburb's parcels into a single shape",
    )
    add(
        "as_text",
        "AsText (serialisation)",
        "SELECT SUM(CHAR_LENGTH(ST_AsText(geom))) FROM arealm",
    )
    add(
        "relate_matrix",
        "Relate (full matrix)",
        "SELECT COUNT(*) FROM arealm a JOIN areawater w "
        "ON a.geom && w.geom WHERE ST_Relate(a.geom, w.geom, 'T********')",
        "explicit DE-9IM pattern evaluation after an envelope filter",
    )
    return q


def bind_dataset(queries: List[BenchmarkQuery], dataset) -> List[BenchmarkQuery]:
    """Substitute dataset-dependent placeholders (e.g. a real FIPS code)."""
    parcels = dataset.layer("parcels")
    fips_idx = parcels.columns.index("county_fips")
    fips = parcels.rows[0][fips_idx] if parcels.rows else "48001"
    bound = []
    for query in queries:
        sql = query.sql.replace("(SELECT_FIPS)", f"'{fips}'")
        bound.append(
            BenchmarkQuery(
                query.query_id, query.title, query.category, sql,
                query.params, query.description,
            )
        )
    return bound
