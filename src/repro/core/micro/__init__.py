"""Micro benchmark suites: topology (DE-9IM), spatial analysis, loading."""

from repro.core.micro.analysis import analysis_queries, bind_dataset
from repro.core.micro.loading import LoadResult, run_loading
from repro.core.micro.topology import topology_queries

__all__ = [
    "LoadResult",
    "analysis_queries",
    "bind_dataset",
    "run_loading",
    "topology_queries",
]
