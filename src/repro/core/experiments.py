"""Self-contained experiment drivers for the non-suite artifacts:

- :func:`run_index_effect`    — J-F5 (spatial index on vs. off)
- :func:`run_scalability`     — J-F6 (dataset-size sweep)
- :func:`run_refinement_ablation` — J-A1 (exact vs MBR refinement,
  time *and* answer cardinality)
- :func:`run_index_ablation`  — J-A2 (R-tree vs grid vs quadtree vs scan)
- :func:`run_spatial_join`    — J-X3 (INLJ vs tree traversal vs PBSM joins)

Each returns a small result object and has a ``render_*`` companion that
prints the paper-style series. The pytest-benchmark modules under
``benchmarks/`` measure the same workloads with full statistical rigour;
these drivers exist so ``jackpine experiment ...`` can regenerate the
figures in one command and EXPERIMENTS.md can cite one source.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database
from repro.errors import UnsupportedFeatureError


def _timed(cursor, sql: str, repeats: int = 3) -> Tuple[float, Any]:
    """(median seconds, scalar answer) over ``repeats`` runs + 1 warmup."""
    cursor.execute(sql)
    value = cursor.fetchall()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        cursor.execute(sql)
        rows = cursor.fetchall()
        times.append(time.perf_counter() - start)
    times.sort()
    answer = rows[0][0] if rows and len(rows[0]) == 1 else len(rows)
    del value
    return times[len(times) // 2], answer


# ---------------------------------------------------------------------------
# J-F5: index effect
# ---------------------------------------------------------------------------

INDEX_EFFECT_QUERIES: Dict[str, str] = {
    "window_small": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(40000, 40000, 44000, 44000))"
    ),
    "window_large": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(10000, 10000, 60000, 60000))"
    ),
    "point_probe": (
        "SELECT COUNT(*) FROM counties "
        "WHERE ST_Contains(geom, ST_Point(51234, 48765))"
    ),
    "spatial_join": (
        "SELECT COUNT(*) FROM areawater w JOIN pointlm p "
        "ON ST_Within(p.geom, w.geom)"
    ),
}


@dataclass
class IndexEffectResult:
    rows: List[Tuple[str, float, float, Any]] = field(default_factory=list)
    # (query, indexed_s, unindexed_s, answer)


def run_index_effect(seed: int = 42, scale: float = 0.25,
                     engine: str = "greenwood") -> IndexEffectResult:
    dataset = generate(seed=seed, scale=scale)
    indexed = Database(engine)
    dataset.load_into(indexed, create_indexes=True)
    unindexed = Database(engine)
    dataset.load_into(unindexed, create_indexes=False)
    cur_idx = connect(database=indexed).cursor()
    cur_seq = connect(database=unindexed).cursor()
    result = IndexEffectResult()
    for name, sql in INDEX_EFFECT_QUERIES.items():
        with_index, answer_idx = _timed(cur_idx, sql)
        without, answer_seq = _timed(cur_seq, sql)
        assert answer_idx == answer_seq, f"{name}: index changed the answer"
        result.rows.append((name, with_index, without, answer_idx))
    return result


def render_index_effect(result: IndexEffectResult) -> str:
    lines = [
        "== J-F5: effect of the spatial index (greenwood) ==",
        f"{'query':16s} {'indexed':>10s} {'no index':>10s} "
        f"{'speedup':>8s} {'answer':>8s}",
    ]
    for name, w_idx, w_seq, answer in result.rows:
        speedup = w_seq / w_idx if w_idx > 0 else float("inf")
        lines.append(
            f"{name:16s} {w_idx * 1e3:9.2f}m {w_seq * 1e3:9.2f}m "
            f"{speedup:7.1f}x {answer!s:>8s}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-F6: scalability
# ---------------------------------------------------------------------------

SCALABILITY_QUERIES: Dict[str, str] = {
    "window": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(20000, 20000, 45000, 45000))"
    ),
    "containment_join": (
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)"
    ),
    "line_water_join": (
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@dataclass
class ScalabilityResult:
    scales: Sequence[float]
    series: Dict[str, List[Tuple[float, float, Any]]] = field(
        default_factory=dict
    )  # query -> [(scale, seconds, answer)]


def run_scalability(
    seed: int = 42,
    scales: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
    engine: str = "greenwood",
) -> ScalabilityResult:
    result = ScalabilityResult(scales=tuple(scales))
    for scale in scales:
        db = Database(engine)
        generate(seed=seed, scale=scale).load_into(db)
        cursor = connect(database=db).cursor()
        for name, sql in SCALABILITY_QUERIES.items():
            seconds, answer = _timed(cursor, sql)
            result.series.setdefault(name, []).append((scale, seconds, answer))
    return result


def render_scalability(result: ScalabilityResult) -> str:
    lines = ["== J-F6: scalability with dataset size (greenwood) =="]
    header = f"{'query':18s}" + "".join(
        f"{f'{s}x':>12s}" for s in result.scales
    )
    lines.append(header)
    for name, points in result.series.items():
        cells = "".join(f"{sec * 1e3:10.1f}ms" for _s, sec, _a in points)
        lines.append(f"{name:18s}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-A1: refinement ablation (time and answer gap)
# ---------------------------------------------------------------------------

REFINEMENT_QUERIES: Dict[str, str] = {
    "contains_points": (
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)"
    ),
    "touches_counties": (
        "SELECT COUNT(*) FROM counties a JOIN counties b "
        "ON ST_Touches(a.geom, b.geom) WHERE a.gid < b.gid"
    ),
    "intersects_lines_water": (
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@dataclass
class RefinementResult:
    engines: Sequence[str]
    rows: List[Tuple[str, Dict[str, Tuple[float, Any]]]] = field(
        default_factory=list
    )  # (query, engine -> (seconds, answer))


def run_refinement_ablation(
    seed: int = 42, scale: float = 0.25,
    engines: Sequence[str] = ("greenwood", "bluestem", "ironbark"),
) -> RefinementResult:
    dataset = generate(seed=seed, scale=scale)
    cursors = {}
    for engine in engines:
        db = Database(engine)
        dataset.load_into(db)
        cursors[engine] = connect(database=db).cursor()
    result = RefinementResult(engines=tuple(engines))
    for name, sql in REFINEMENT_QUERIES.items():
        per_engine: Dict[str, Tuple[float, Any]] = {}
        for engine in engines:
            per_engine[engine] = _timed(cursors[engine], sql)
        result.rows.append((name, per_engine))
    return result


def render_refinement(result: RefinementResult) -> str:
    lines = [
        "== J-A1: exact refinement vs MBR-only (time | answer) ==",
        f"{'query':24s}" + "".join(f"{e:>24s}" for e in result.engines),
    ]
    for name, per_engine in result.rows:
        cells = []
        for engine in result.engines:
            seconds, answer = per_engine[engine]
            cells.append(f"{seconds * 1e3:9.1f}ms | {answer!s:>8s}")
        lines.append(f"{name:24s}" + "".join(f"{c:>24s}" for c in cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-A2: index-structure ablation
# ---------------------------------------------------------------------------

INDEX_ABLATION_QUERIES: Dict[str, str] = {
    "window_selective": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(40000, 40000, 43000, 43000))"
    ),
    "window_broad": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(5000, 5000, 70000, 70000))"
    ),
    "join_roads_water": (
        "SELECT COUNT(*) FROM areawater w JOIN edges e "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
    # landmark window: the query whose cost profile flips under the
    # clustered distribution (dense grid buckets at the urban cores)
    "landmark_window": (
        "SELECT COUNT(*) FROM pointlm "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(35000, 35000, 65000, 65000))"
    ),
}

INDEX_ABLATION_KINDS = ("rtree", "grid", "quadtree", "scan")


@dataclass
class IndexAblationResult:
    kinds: Sequence[str]
    rows: List[Tuple[str, Dict[str, Tuple[float, Any]]]] = field(
        default_factory=list
    )


def run_index_ablation(
    seed: int = 42, scale: float = 0.25,
    kinds: Sequence[str] = INDEX_ABLATION_KINDS,
    distribution: str = "uniform",
) -> IndexAblationResult:
    """``distribution="clustered"`` places landmarks in urban blobs —
    the skew regime where the uniform grid's fixed cells pay for their
    simplicity."""
    dataset = generate(seed=seed, scale=scale, distribution=distribution)
    cursors = {}
    for kind in kinds:
        db = Database("greenwood")
        dataset.load_into(db, create_indexes=False)
        if kind != "scan":
            for layer in dataset.layers.values():
                db.execute(
                    f"CREATE SPATIAL INDEX xidx_{layer.name} "
                    f"ON {layer.name} (geom) USING {kind}"
                )
        cursors[kind] = connect(database=db).cursor()
    result = IndexAblationResult(kinds=tuple(kinds))
    for name, sql in INDEX_ABLATION_QUERIES.items():
        per_kind: Dict[str, Tuple[float, Any]] = {}
        for kind in kinds:
            per_kind[kind] = _timed(cursors[kind], sql)
        answers = {a for _t, a in per_kind.values()}
        assert len(answers) == 1, f"{name}: index structure changed the answer"
        result.rows.append((name, per_kind))
    return result


def render_index_ablation(result: IndexAblationResult) -> str:
    lines = [
        "== J-A2: index structures (greenwood, exact answers identical) ==",
        f"{'query':18s}" + "".join(f"{k:>12s}" for k in result.kinds),
    ]
    for name, per_kind in result.rows:
        cells = "".join(
            f"{per_kind[k][0] * 1e3:10.1f}ms" for k in result.kinds
        )
        lines.append(f"{name:18s}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X1 (extension): selectivity sweep
# ---------------------------------------------------------------------------

#: window side as a fraction of the state's extent, tiny to everything
SELECTIVITY_FRACTIONS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass
class SelectivityResult:
    engines: Sequence[str]
    fractions: Sequence[float]
    # engine -> [(fraction, seconds, result_count, index_candidates)]
    series: Dict[str, List[Tuple[float, float, int, int]]] = field(
        default_factory=dict
    )


def run_selectivity_sweep(
    seed: int = 42, scale: float = 0.25,
    engines: Sequence[str] = ("greenwood", "bluestem", "ironbark"),
    fractions: Sequence[float] = SELECTIVITY_FRACTIONS,
) -> SelectivityResult:
    """Window queries over `edges` at increasing selectivity.

    Extension beyond the paper's figures: shows how the filter-refine
    split behaves as the answer grows from a handful of rows to the whole
    table — exact engines pay refinement per candidate, the MBR engine's
    cost tracks the candidate count alone.
    """
    from repro.datagen.tiger import WORLD_SIZE

    dataset = generate(seed=seed, scale=scale)
    result = SelectivityResult(engines=tuple(engines),
                               fractions=tuple(fractions))
    for engine in engines:
        db = Database(engine)
        dataset.load_into(db)
        conn = connect(database=db)
        cursor = conn.cursor()
        points: List[Tuple[float, float, int, int]] = []
        for fraction in fractions:
            half = fraction * WORLD_SIZE / 2.0
            cx = cy = WORLD_SIZE / 2.0
            sql = (
                f"SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
                f"ST_MakeEnvelope({cx - half}, {cy - half}, "
                f"{cx + half}, {cy + half}))"
            )
            db.stats.reset()
            seconds, answer = _timed(cursor, sql)
            candidates = db.stats.index_candidates // 4  # warmup + 3 runs
            points.append((fraction, seconds, int(answer), candidates))
        result.series[engine] = points
    return result


def render_selectivity(result: SelectivityResult) -> str:
    lines = [
        "== J-X1 (extension): window-selectivity sweep over edges ==",
        f"{'window':>8s} " + "".join(
            f"{e + ' (ms|rows)':>24s}" for e in result.engines
        ),
    ]
    for i, fraction in enumerate(result.fractions):
        cells = []
        for engine in result.engines:
            _f, seconds, answer, _cand = result.series[engine][i]
            cells.append(f"{seconds * 1e3:12.2f} | {answer:>6d}")
        lines.append(f"{fraction:>7.0%} " + "".join(
            f"{c:>24s}" for c in cells
        ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X2 (extension): multi-client macro throughput
# ---------------------------------------------------------------------------


@dataclass
class ConcurrencyResult:
    scenario: str
    engine: str
    # [(clients, wall_seconds, total_queries, aggregate_qpm)]
    points: List[Tuple[int, float, int, float]] = field(default_factory=list)
    #: one wall-time decomposition per point, when run with ``waits=True``
    attributions: List[Any] = field(default_factory=list)


def run_concurrency(
    scenario_name: str = "map_search",
    engine: str = "greenwood",
    clients_series: Sequence[int] = (1, 2, 4),
    seed: int = 42,
    scale: float = 0.25,
    waits: bool = False,
) -> ConcurrencyResult:
    """J-X2: read-only throughput with N concurrent clients (extension).

    Each client replays one deterministic macro scenario on its own
    DB-API connection via the :mod:`repro.workload` client harness, which
    also collects per-client latency histograms from the scenario step
    timings. The embedded engines are pure Python, so the GIL serialises
    CPU work — the experiment therefore measures *contention behaviour*
    (fairness and aggregate throughput stability), not parallel speedup,
    and the report says so.
    """
    from repro.core.macro import SCENARIOS_BY_NAME
    from repro.workload import run_client_threads

    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    result = ConcurrencyResult(scenario=scenario_name, engine=engine)
    for clients in clients_series:

        def body(conn, report) -> None:
            scenario = SCENARIOS_BY_NAME[scenario_name]()
            outcome = scenario.run(
                conn, dataset, seed=seed + report.client_id,
                engine_name=engine,
            )
            report.ops += outcome.executed
            report.reads += outcome.executed
            for step in outcome.steps:
                if not step.skipped:
                    report.latency.observe(step.seconds)

        if waits:
            from repro.obs.waits import WAITS, WaitAttribution

            WAITS.enable()
            WAITS.reset()
            try:
                wall, reports = run_client_threads(db, clients, body)
                result.attributions.append(WaitAttribution.capture(
                    WAITS, busy_seconds=wall * clients
                ))
            finally:
                WAITS.disable()
        else:
            wall, reports = run_client_threads(db, clients, body)
        total_queries = sum(report.ops for report in reports)
        qpm = 60.0 * total_queries / wall if wall else 0.0
        result.points.append((clients, wall, total_queries, qpm))
    return result


def render_concurrency(result: ConcurrencyResult) -> str:
    lines = [
        f"== J-X2 (extension): concurrent clients, "
        f"{result.scenario} on {result.engine} ==",
        "(pure-Python engines: the GIL serialises CPU work, so this shows",
        " contention behaviour, not parallel speedup)",
        f"{'clients':>8s} {'wall':>10s} {'queries':>9s} {'agg q/min':>10s}",
    ]
    for clients, wall, total, qpm in result.points:
        lines.append(
            f"{clients:>8d} {wall:>9.2f}s {total:>9d} {qpm:>10.0f}"
        )
    for (clients, _wall, _total, _qpm), attribution in zip(
        result.points, result.attributions
    ):
        lines.append("")
        lines.append(attribution.render(
            title=f"wall-time decomposition @ {clients} client(s)"
        ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X4 (extension): mixed read/write throughput and abort rate
# ---------------------------------------------------------------------------


@dataclass
class MixedThroughputResult:
    engine: str
    mix: str
    # [(clients, wall_s, ops, qpm, commits, aborts, retries, abort_rate)]
    points: List[Tuple[int, float, int, float, int, int, int, float]] = field(
        default_factory=list
    )
    #: one wall-time decomposition per point, when run with ``waits=True``
    attributions: List[Any] = field(default_factory=list)
    #: per-lock-key hot-row tables matching ``attributions``
    hottest: List[List[Dict[str, Any]]] = field(default_factory=list)


def run_mixed_workload(
    engine: str = "greenwood",
    clients_series: Sequence[int] = (1, 2, 4),
    seed: int = 42,
    scale: float = 0.25,
    duration: float = 2.0,
    mix: str = "mixed",
    waits: bool = False,
) -> MixedThroughputResult:
    """J-X4: mixed read/write throughput and abort rate vs client count.

    The :mod:`repro.workload` driver replays the 80/20 read/write mix in
    a closed loop against one shared datastore; write transactions that
    lose a first-updater-wins conflict abort with
    :class:`~repro.errors.SerializationError` and are retried with
    backoff. The reported abort rate is the real cost of optimistic
    snapshot-isolation writers under contention — the dimension the
    paper's single-user runs cannot see.
    """
    from repro.workload import WorkloadConfig, run_workload

    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    result = MixedThroughputResult(engine=engine, mix=mix)
    for clients in clients_series:
        config = WorkloadConfig(
            clients=clients, duration=duration, mix=mix, engine=engine,
            seed=seed, scale=scale, waits=waits,
        )
        report = run_workload(config, database=db)
        if report.attribution is not None:
            result.attributions.append(report.attribution)
            result.hottest.append(report.hottest_rows)
        result.points.append((
            clients,
            report.wall_seconds,
            report.total_ops,
            report.queries_per_minute,
            report.total_commits,
            report.total_aborts,
            report.total_retries,
            report.abort_rate,
        ))
    return result


def render_mixed_workload(result: MixedThroughputResult) -> str:
    lines = [
        f"== J-X4 (extension): mixed read/write workload, "
        f"{result.mix} mix on {result.engine} ==",
        "(snapshot isolation, first-updater-wins: aborted writers retry",
        " with backoff; the GIL serialises CPU work, so read throughput",
        " measures contention behaviour, not parallel speedup)",
        f"{'clients':>8s} {'wall':>8s} {'ops':>7s} {'agg q/min':>10s} "
        f"{'commits':>8s} {'aborts':>7s} {'retries':>8s} {'abort %':>8s}",
    ]
    for (clients, wall, ops, qpm, commits, aborts, retries,
         abort_rate) in result.points:
        lines.append(
            f"{clients:>8d} {wall:>7.2f}s {ops:>7d} {qpm:>10.0f} "
            f"{commits:>8d} {aborts:>7d} {retries:>8d} "
            f"{abort_rate:>7.1%}"
        )
    for point, attribution in zip(result.points, result.attributions):
        lines.append("")
        lines.append(attribution.render(
            title=f"wall-time decomposition @ {point[0]} client(s)"
        ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X3 (extension): spatial join strategy comparison
# ---------------------------------------------------------------------------

#: (label, SQL) — the topology joins that dominate the paper's micro suite
JOIN_MATRIX: Tuple[Tuple[str, str], ...] = (
    (
        "arealm x areawater (overlaps)",
        "SELECT COUNT(*) FROM arealm a, areawater w "
        "WHERE ST_Overlaps(a.geom, w.geom)",
    ),
    (
        "arealm x counties (intersects)",
        "SELECT COUNT(*) FROM arealm a, counties c "
        "WHERE ST_Intersects(a.geom, c.geom)",
    ),
    (
        "parcels x arealm (intersects)",
        "SELECT COUNT(*) FROM parcels p, arealm a "
        "WHERE ST_Intersects(p.geom, a.geom)",
    ),
    (
        "edges x areawater (crosses)",
        "SELECT COUNT(*) FROM edges e, areawater w "
        "WHERE ST_Crosses(e.geom, w.geom)",
    ),
)

JOIN_STRATEGY_SERIES: Tuple[str, ...] = ("inlj", "tree", "pbsm", "auto")


@dataclass
class SpatialJoinResult:
    engine: str
    strategies: Sequence[str]
    # label -> {strategy: (seconds, answer)}; every strategy must agree
    rows: List[Tuple[str, Dict[str, Tuple[float, Any]]]] = field(
        default_factory=list
    )


def run_spatial_join(
    seed: int = 42, scale: float = 0.25, engine: str = "greenwood",
    strategies: Sequence[str] = JOIN_STRATEGY_SERIES,
) -> SpatialJoinResult:
    """Full topology joins under each join algorithm (J-X3 extension).

    The same indexed database answers every query with the spatial join
    strategy forced to INLJ, synchronized tree traversal and PBSM, plus
    the cost-based default. Answers are asserted identical across
    strategies — only the candidate-generation machinery may differ.
    """
    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    db.execute("ANALYZE")
    conn = connect(database=db)
    cursor = conn.cursor()
    result = SpatialJoinResult(engine=engine, strategies=tuple(strategies))
    for label, sql in JOIN_MATRIX:
        cells: Dict[str, Tuple[float, Any]] = {}
        for strategy in strategies:
            db.join_strategy = strategy
            cells[strategy] = _timed(cursor, sql)
        db.join_strategy = "auto"
        answers = {answer for _s, answer in cells.values()}
        if len(answers) != 1:
            raise AssertionError(
                f"join strategies disagree on {label!r}: {cells}"
            )
        result.rows.append((label, cells))
    return result


def render_spatial_join(result: SpatialJoinResult) -> str:
    from repro.core.report import render_spatial_join_table

    return render_spatial_join_table(result)


# ---------------------------------------------------------------------------
# J-X5 (extension): crash recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryResult:
    """One J-X5 run: crash → recover → verify, per checkpoint interval."""

    profile: str
    seed: int
    scale: float
    site: str
    #: per checkpoint interval: the crash outcome, the recovery timing
    #: breakdown, the WAL length replayed, and the oracle verdict
    points: List[Dict[str, Any]] = field(default_factory=list)


def run_recovery(
    seed: int = 42,
    scale: float = 0.25,
    engine: str = "greenwood",
    intervals: Sequence[float] = (0.0, 0.1, 0.02),
    site: str = "wal.fsync",
    crash_after: int = 2500,
    clients: int = 2,
    deadline: float = 8.0,
) -> RecoveryResult:
    """J-X5: crash recovery time vs WAL length and checkpoint interval.

    For each checkpoint interval, concurrent clients commit single-row
    transactions against a fresh durable directory until a seeded crash
    fires (the ``crash_after``-th visit to ``site``, simulating
    ``kill -9`` at that exact storage instruction). ARIES-lite recovery
    then rebuilds the database, and the oracle asserts both durability
    directions: every committed transaction visible, every uncommitted
    one absent. Frequent checkpoints keep the WAL short and recovery
    fast; interval 0 (never checkpoint) replays the whole history — the
    classic recovery-time/runtime-overhead trade the paper's
    single-user, no-failure runs cannot see.
    """
    import shutil
    import tempfile

    from repro.storage.crash import run_crash_workload, verify_recovery
    from repro.storage.durability import recover

    seed_rows = max(10, int(100 * scale))
    result = RecoveryResult(profile=engine, seed=seed, scale=scale,
                            site=site)
    for interval in intervals:
        directory = tempfile.mkdtemp(prefix="jackpine-jx5-")
        try:
            outcome = run_crash_workload(
                directory,
                profile=engine,
                clients=clients,
                site=site,
                on_call=crash_after,
                deadline=deadline,
                checkpoint_interval=interval,
                seed_rows=seed_rows,
            )
            db, report = recover(directory)
            try:
                violations = verify_recovery(outcome, db)
            finally:
                db.close()
            result.points.append({
                "checkpoint_interval": interval,
                "crash_fired": outcome.fired,
                "crash_forced": outcome.forced,
                "workload_seconds": outcome.wall_seconds,
                "checkpoints_taken": outcome.checkpoints,
                "attempted": len(outcome.attempted),
                "committed": len(outcome.committed),
                "wal_records": report.wal_records,
                "winners": report.winners,
                "losers": report.losers,
                "redone": report.redone,
                "undone": report.undone,
                "recovered_rows": sum(report.tables.values()),
                "analysis_seconds": report.analysis_seconds,
                "redo_seconds": report.redo_seconds,
                "undo_seconds": report.undo_seconds,
                "rebuild_seconds": report.rebuild_seconds,
                "recovery_seconds": report.total_seconds,
                "verified": not violations,
                "violations": violations,
            })
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return result


def render_recovery(result: RecoveryResult) -> str:
    lines = [
        f"== J-X5 (extension): crash recovery on {result.profile}, "
        f"kill at {result.site} ==",
        "(simulated kill -9 mid-workload: the WAL is truncated to its",
        " last fsynced byte, then ARIES-lite analysis/redo/undo rebuilds",
        " heap, catalog and spatial indexes; the oracle checks both",
        " durability directions)",
        f"{'ckpt ivl':>9s} {'ckpts':>6s} {'wal recs':>9s} "
        f"{'winners':>8s} {'losers':>7s} {'rows':>6s} "
        f"{'recovery':>10s} {'redo':>9s} {'verified':>9s}",
    ]
    for p in result.points:
        interval = (
            "never" if not p["checkpoint_interval"]
            else f"{p['checkpoint_interval']:.2f}s"
        )
        lines.append(
            f"{interval:>9s} {p['checkpoints_taken']:>6d} "
            f"{p['wal_records']:>9d} {p['winners']:>8d} "
            f"{p['losers']:>7d} {p['recovered_rows']:>6d} "
            f"{p['recovery_seconds'] * 1e3:>8.2f}ms "
            f"{p['redo_seconds'] * 1e3:>7.2f}ms "
            f"{'yes' if p['verified'] else 'NO':>9s}"
        )
        for violation in p["violations"]:
            lines.append(f"          !! {violation}")
    return "\n".join(lines)


def write_recovery_telemetry(result: RecoveryResult, out_dir: str) -> str:
    """Write the J-X5 telemetry artifact (same envelope family as
    ``jackpine run --telemetry``); returns the path."""
    import json
    import os

    from repro.obs.telemetry import SCHEMA

    records = [
        dict(point, query_id=f"jx5.interval_{i}", engine=result.profile,
             suite="recovery", supported=True)
        for i, point in enumerate(result.points)
    ]
    document = {
        "schema": SCHEMA,
        "engine": result.profile,
        "config": {
            "seed": result.seed,
            "scale": result.scale,
            "site": result.site,
        },
        "records": records,
    }
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"recovery_{result.profile}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# J-X6: query service saturation, overload shedding, and result cache
# ---------------------------------------------------------------------------


@dataclass
class ServiceResult:
    """One J-X6 run: saturation sweep, overload round, cache comparison."""

    profile: str
    seed: int
    scale: float
    clients: int
    pool_size: int
    max_queue: int
    deadline: float
    #: phase A — per offered rate: achieved throughput + latency
    saturation: List[Dict[str, Any]] = field(default_factory=list)
    #: saturation throughput (max completed ops/sec across phase A)
    saturation_ops: float = 0.0
    #: phase B — overload at ~3x saturation: shedding + tail latency
    overload: Dict[str, Any] = field(default_factory=dict)
    #: phase C — browse mix with the cache on vs off
    cache_on: Dict[str, Any] = field(default_factory=dict)
    cache_off: Dict[str, Any] = field(default_factory=dict)


def _merged_latency(reports):
    """Aggregate the per-client fixed-bucket histograms (same buckets)."""
    from repro.obs.metrics import Histogram

    merged = Histogram("jx6_latency_seconds", "aggregate client latency")
    for report in reports:
        hist = report.latency
        for index, count in enumerate(hist.counts):
            merged.counts[index] += count
        merged.count += hist.count
        merged.sum += hist.sum
        merged.min = min(merged.min, hist.min)
        merged.max = max(merged.max, hist.max)
    return merged


def _service_round(
    database, *, engine: str, seed: int, scale: float, clients: int,
    rate: float, duration: float, pool_size: int, max_queue: int,
    deadline: float, cache_capacity: int, mix: str = "browse",
) -> Dict[str, Any]:
    """Start a fresh server over ``database`` (fresh counters), drive it
    with the open-loop fleet for one round, and distill the numbers."""
    from repro.service import JackpineServer, ServerConfig
    from repro.workload.driver import WorkloadConfig, run_workload

    server = JackpineServer(database, ServerConfig(
        pool_size=pool_size, max_queue=max_queue, deadline=deadline,
        cache_capacity=cache_capacity,
    )).start()
    try:
        report = run_workload(WorkloadConfig(
            clients=clients, duration=duration, mix=mix, engine=engine,
            mode="open", rate=rate, seed=seed, scale=scale,
            server=server.address,
        ))
    finally:
        server.stop()
    latency = _merged_latency(report.clients)
    completed = (
        report.total_ops - report.total_shed - report.total_timeouts
        - report.total_errors
    )
    admission = (report.service or {}).get("admission", {})
    cache = report.cache or {}
    hits = cache.get("hits", 0)
    looked = hits + cache.get("misses", 0)
    return {
        "offered_rate": clients * rate,
        "wall_seconds": report.wall_seconds,
        "ops": report.total_ops,
        "completed": completed,
        "completed_per_sec": (
            completed / report.wall_seconds if report.wall_seconds else 0.0
        ),
        "shed": report.total_shed,
        "shed_queue_full": admission.get("shed_queue_full", 0),
        "shed_deadline": admission.get("shed_deadline", 0),
        "timeouts": report.total_timeouts,
        "errors": report.total_errors,
        "peak_queue": admission.get("peak_queue", 0),
        "queue_limit": admission.get("queue_limit", max_queue),
        "p50": latency.p50,
        "p99": latency.p99,
        "cache_hits": hits,
        "cache_hit_ratio": hits / looked if looked else 0.0,
        "cache_invalidations": cache.get("invalidations", 0),
    }


def run_service(
    seed: int = 42,
    scale: float = 0.25,
    engine: str = "greenwood",
    duration: float = 2.0,
    clients: int = 32,
    base_rate: float = 2.0,
    max_rounds: int = 8,
    pool_size: int = 4,
    max_queue: int = 32,
    deadline: float = 0.5,
    cache_capacity: int = 256,
    overload_factor: float = 3.0,
    overload_clients: int = 160,
) -> ServiceResult:
    """J-X6: the query service under open-loop load.

    Three phases over one loaded datastore (a fresh server — hence fresh
    counters — per round):

    A. **saturation sweep** — per-client arrival rates double from
       ``base_rate`` (browse mix) until the server visibly falls behind
       the offered load or starts shedding; the completed-ops/sec
       ceiling is the saturation throughput.
    B. **overload** — offered load at ``overload_factor`` times the
       measured saturation. Admission control must shed (queue-full or
       deadline) instead of queueing without bound: the experiment
       records the shed split, the peak queue depth against its limit,
       and the p99 the *surviving* requests saw.
    C. **cache value** — the same browse round with the result cache on
       vs off, isolating what watermark-validated caching buys on a
       skewed read mix (and proving writes invalidate: the browse mix is
       read-only, so the ratio is the upper bound the mixed rounds erode).
    """
    dataset = generate(seed=seed, scale=scale)
    database = Database(engine)
    dataset.load_into(database)
    shared = dict(
        engine=engine, seed=seed, scale=scale, clients=clients,
        duration=duration, pool_size=pool_size, max_queue=max_queue,
        deadline=deadline,
    )
    result = ServiceResult(
        profile=engine, seed=seed, scale=scale, clients=clients,
        pool_size=pool_size, max_queue=max_queue, deadline=deadline,
    )
    # phase A: adaptive saturation sweep — double the offered rate until
    # achieved throughput falls visibly short of offered (or requests
    # start getting shed), which is the saturation knee
    rate = base_rate
    for _ in range(max_rounds):
        point = _service_round(
            database, rate=rate, cache_capacity=cache_capacity, **shared
        )
        point["rate_per_client"] = rate
        result.saturation.append(point)
        saturated = (
            point["completed_per_sec"] < 0.85 * point["offered_rate"]
            or point["shed"] > 0
        )
        if saturated:
            break
        rate *= 2.0
    result.saturation_ops = max(
        point["completed_per_sec"] for point in result.saturation
    )
    # phase B: overload at ~overload_factor x saturation. One TCP
    # connection carries one request at a time, so in-flight work is
    # bounded by the client count — shedding can only engage when there
    # are more clients than queue slots, hence the bigger fleet here
    # ("hundreds of clients" is also just what overload looks like).
    overload_fleet = max(overload_clients, 2 * max_queue)
    overload_rate = (
        overload_factor * result.saturation_ops / overload_fleet
    )
    result.overload = _service_round(
        database, rate=overload_rate, cache_capacity=cache_capacity,
        **dict(shared, clients=overload_fleet)
    )
    result.overload["rate_per_client"] = overload_rate
    result.overload["clients"] = overload_fleet
    # phase C: cache on vs off at roughly half the saturation rate (the
    # comparison should measure cache effect, not queueing noise)
    probe_rate = max(result.saturation_ops / (2.0 * clients), base_rate)
    result.cache_on = _service_round(
        database, rate=probe_rate, cache_capacity=cache_capacity, **shared
    )
    result.cache_off = _service_round(
        database, rate=probe_rate, cache_capacity=0, **shared
    )
    return result


def render_service(result: ServiceResult) -> str:
    lines = [
        f"== J-X6 (extension): query service on {result.profile} — "
        f"{result.clients} open-loop clients, pool {result.pool_size}, "
        f"queue {result.max_queue}, deadline {result.deadline:.2f}s ==",
        "(asyncio TCP server over the embedded engine: session pooling,",
        " admission control with load shedding, and an MVCC-watermark",
        " result cache; latency is measured from the scheduled arrival,",
        " so overload shows up in p99 instead of vanishing into",
        " coordinated omission)",
        "",
        "-- phase A: saturation sweep (browse mix, cache on)",
        f"{'offered/s':>10s} {'done/s':>8s} {'shed':>6s} {'p50':>9s} "
        f"{'p99':>9s} {'hit%':>6s}",
    ]
    for p in result.saturation:
        lines.append(
            f"{p['offered_rate']:>10.0f} {p['completed_per_sec']:>8.1f} "
            f"{p['shed']:>6d} {p['p50'] * 1e3:>7.1f}ms "
            f"{p['p99'] * 1e3:>7.1f}ms {p['cache_hit_ratio']:>6.1%}"
        )
    lines.append(
        f"saturation throughput: {result.saturation_ops:.1f} completed "
        f"ops/sec"
    )
    o = result.overload
    if o:
        lines.extend([
            "",
            f"-- phase B: overload at {o['offered_rate']:.0f} offered/s "
            f"(~{o['offered_rate'] / result.saturation_ops:.1f}x "
            f"saturation, {o.get('clients', result.clients)} clients)",
            f"completed: {o['completed_per_sec']:.1f}/s   "
            f"shed: {o['shed']} "
            f"(queue_full {o['shed_queue_full']}, "
            f"deadline {o['shed_deadline']})   timeouts: {o['timeouts']}",
            f"peak queue: {o['peak_queue']}/{o['queue_limit']} "
            f"(bounded: {'yes' if o['peak_queue'] <= o['queue_limit'] else 'NO'})   "
            f"p99 of survivors: {o['p99'] * 1e3:.1f}ms",
        ])
    on, off = result.cache_on, result.cache_off
    if on and off:
        # below saturation both variants complete every offered op, so
        # latency — not throughput — is where the cache shows up
        speedup = on["p50"] and off["p50"] / on["p50"] or float("nan")
        lines.extend([
            "",
            "-- phase C: result cache on vs off (browse mix, below "
            "saturation)",
            f"cache on : {on['completed_per_sec']:>8.1f}/s   "
            f"p50 {on['p50'] * 1e3:>6.1f}ms   "
            f"p99 {on['p99'] * 1e3:>6.1f}ms   "
            f"hit ratio {on['cache_hit_ratio']:.1%} "
            f"({on['cache_hits']} hits)",
            f"cache off: {off['completed_per_sec']:>8.1f}/s   "
            f"p50 {off['p50'] * 1e3:>6.1f}ms   "
            f"p99 {off['p99'] * 1e3:>6.1f}ms",
            f"p50 speedup from caching: {speedup:.2f}x",
        ])
    return "\n".join(lines)


def write_service_telemetry(result: ServiceResult, out_dir: str) -> str:
    """Write the J-X6 telemetry artifact (same envelope family as
    ``jackpine run --telemetry``); returns the path."""
    import json
    import os

    from repro.obs.telemetry import SCHEMA

    records = [
        dict(point, query_id=f"jx6.saturation_{i}", engine=result.profile,
             suite="service", supported=True)
        for i, point in enumerate(result.saturation)
    ]
    for name, point in (("overload", result.overload),
                        ("cache_on", result.cache_on),
                        ("cache_off", result.cache_off)):
        if point:
            records.append(dict(
                point, query_id=f"jx6.{name}", engine=result.profile,
                suite="service", supported=True,
            ))
    document = {
        "schema": SCHEMA,
        "engine": result.profile,
        "config": {
            "seed": result.seed,
            "scale": result.scale,
            "clients": result.clients,
            "pool_size": result.pool_size,
            "max_queue": result.max_queue,
            "deadline": result.deadline,
        },
        "totals": {
            "saturation_ops_per_sec": result.saturation_ops,
            "overload_shed": result.overload.get("shed", 0),
            "cache_hit_ratio": result.cache_on.get("cache_hit_ratio", 0.0),
        },
        "records": records,
    }
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"service_{result.profile}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
