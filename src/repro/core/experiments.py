"""Self-contained experiment drivers for the non-suite artifacts:

- :func:`run_index_effect`    — J-F5 (spatial index on vs. off)
- :func:`run_scalability`     — J-F6 (dataset-size sweep)
- :func:`run_refinement_ablation` — J-A1 (exact vs MBR refinement,
  time *and* answer cardinality)
- :func:`run_index_ablation`  — J-A2 (R-tree vs grid vs quadtree vs scan)
- :func:`run_spatial_join`    — J-X3 (INLJ vs tree traversal vs PBSM joins)

Each returns a small result object and has a ``render_*`` companion that
prints the paper-style series. The pytest-benchmark modules under
``benchmarks/`` measure the same workloads with full statistical rigour;
these drivers exist so ``jackpine experiment ...`` can regenerate the
figures in one command and EXPERIMENTS.md can cite one source.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database
from repro.errors import UnsupportedFeatureError


def _timed(cursor, sql: str, repeats: int = 3) -> Tuple[float, Any]:
    """(median seconds, scalar answer) over ``repeats`` runs + 1 warmup."""
    cursor.execute(sql)
    value = cursor.fetchall()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        cursor.execute(sql)
        rows = cursor.fetchall()
        times.append(time.perf_counter() - start)
    times.sort()
    answer = rows[0][0] if rows and len(rows[0]) == 1 else len(rows)
    del value
    return times[len(times) // 2], answer


# ---------------------------------------------------------------------------
# J-F5: index effect
# ---------------------------------------------------------------------------

INDEX_EFFECT_QUERIES: Dict[str, str] = {
    "window_small": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(40000, 40000, 44000, 44000))"
    ),
    "window_large": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(10000, 10000, 60000, 60000))"
    ),
    "point_probe": (
        "SELECT COUNT(*) FROM counties "
        "WHERE ST_Contains(geom, ST_Point(51234, 48765))"
    ),
    "spatial_join": (
        "SELECT COUNT(*) FROM areawater w JOIN pointlm p "
        "ON ST_Within(p.geom, w.geom)"
    ),
}


@dataclass
class IndexEffectResult:
    rows: List[Tuple[str, float, float, Any]] = field(default_factory=list)
    # (query, indexed_s, unindexed_s, answer)


def run_index_effect(seed: int = 42, scale: float = 0.25,
                     engine: str = "greenwood") -> IndexEffectResult:
    dataset = generate(seed=seed, scale=scale)
    indexed = Database(engine)
    dataset.load_into(indexed, create_indexes=True)
    unindexed = Database(engine)
    dataset.load_into(unindexed, create_indexes=False)
    cur_idx = connect(database=indexed).cursor()
    cur_seq = connect(database=unindexed).cursor()
    result = IndexEffectResult()
    for name, sql in INDEX_EFFECT_QUERIES.items():
        with_index, answer_idx = _timed(cur_idx, sql)
        without, answer_seq = _timed(cur_seq, sql)
        assert answer_idx == answer_seq, f"{name}: index changed the answer"
        result.rows.append((name, with_index, without, answer_idx))
    return result


def render_index_effect(result: IndexEffectResult) -> str:
    lines = [
        "== J-F5: effect of the spatial index (greenwood) ==",
        f"{'query':16s} {'indexed':>10s} {'no index':>10s} "
        f"{'speedup':>8s} {'answer':>8s}",
    ]
    for name, w_idx, w_seq, answer in result.rows:
        speedup = w_seq / w_idx if w_idx > 0 else float("inf")
        lines.append(
            f"{name:16s} {w_idx * 1e3:9.2f}m {w_seq * 1e3:9.2f}m "
            f"{speedup:7.1f}x {answer!s:>8s}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-F6: scalability
# ---------------------------------------------------------------------------

SCALABILITY_QUERIES: Dict[str, str] = {
    "window": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(20000, 20000, 45000, 45000))"
    ),
    "containment_join": (
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)"
    ),
    "line_water_join": (
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@dataclass
class ScalabilityResult:
    scales: Sequence[float]
    series: Dict[str, List[Tuple[float, float, Any]]] = field(
        default_factory=dict
    )  # query -> [(scale, seconds, answer)]


def run_scalability(
    seed: int = 42,
    scales: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
    engine: str = "greenwood",
) -> ScalabilityResult:
    result = ScalabilityResult(scales=tuple(scales))
    for scale in scales:
        db = Database(engine)
        generate(seed=seed, scale=scale).load_into(db)
        cursor = connect(database=db).cursor()
        for name, sql in SCALABILITY_QUERIES.items():
            seconds, answer = _timed(cursor, sql)
            result.series.setdefault(name, []).append((scale, seconds, answer))
    return result


def render_scalability(result: ScalabilityResult) -> str:
    lines = ["== J-F6: scalability with dataset size (greenwood) =="]
    header = f"{'query':18s}" + "".join(
        f"{f'{s}x':>12s}" for s in result.scales
    )
    lines.append(header)
    for name, points in result.series.items():
        cells = "".join(f"{sec * 1e3:10.1f}ms" for _s, sec, _a in points)
        lines.append(f"{name:18s}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-A1: refinement ablation (time and answer gap)
# ---------------------------------------------------------------------------

REFINEMENT_QUERIES: Dict[str, str] = {
    "contains_points": (
        "SELECT COUNT(*) FROM counties c JOIN pointlm p "
        "ON ST_Contains(c.geom, p.geom)"
    ),
    "touches_counties": (
        "SELECT COUNT(*) FROM counties a JOIN counties b "
        "ON ST_Touches(a.geom, b.geom) WHERE a.gid < b.gid"
    ),
    "intersects_lines_water": (
        "SELECT COUNT(*) FROM edges e JOIN areawater w "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
}


@dataclass
class RefinementResult:
    engines: Sequence[str]
    rows: List[Tuple[str, Dict[str, Tuple[float, Any]]]] = field(
        default_factory=list
    )  # (query, engine -> (seconds, answer))


def run_refinement_ablation(
    seed: int = 42, scale: float = 0.25,
    engines: Sequence[str] = ("greenwood", "bluestem", "ironbark"),
) -> RefinementResult:
    dataset = generate(seed=seed, scale=scale)
    cursors = {}
    for engine in engines:
        db = Database(engine)
        dataset.load_into(db)
        cursors[engine] = connect(database=db).cursor()
    result = RefinementResult(engines=tuple(engines))
    for name, sql in REFINEMENT_QUERIES.items():
        per_engine: Dict[str, Tuple[float, Any]] = {}
        for engine in engines:
            per_engine[engine] = _timed(cursors[engine], sql)
        result.rows.append((name, per_engine))
    return result


def render_refinement(result: RefinementResult) -> str:
    lines = [
        "== J-A1: exact refinement vs MBR-only (time | answer) ==",
        f"{'query':24s}" + "".join(f"{e:>24s}" for e in result.engines),
    ]
    for name, per_engine in result.rows:
        cells = []
        for engine in result.engines:
            seconds, answer = per_engine[engine]
            cells.append(f"{seconds * 1e3:9.1f}ms | {answer!s:>8s}")
        lines.append(f"{name:24s}" + "".join(f"{c:>24s}" for c in cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-A2: index-structure ablation
# ---------------------------------------------------------------------------

INDEX_ABLATION_QUERIES: Dict[str, str] = {
    "window_selective": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(40000, 40000, 43000, 43000))"
    ),
    "window_broad": (
        "SELECT COUNT(*) FROM edges "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(5000, 5000, 70000, 70000))"
    ),
    "join_roads_water": (
        "SELECT COUNT(*) FROM areawater w JOIN edges e "
        "ON ST_Intersects(e.geom, w.geom)"
    ),
    # landmark window: the query whose cost profile flips under the
    # clustered distribution (dense grid buckets at the urban cores)
    "landmark_window": (
        "SELECT COUNT(*) FROM pointlm "
        "WHERE ST_Intersects(geom, ST_MakeEnvelope(35000, 35000, 65000, 65000))"
    ),
}

INDEX_ABLATION_KINDS = ("rtree", "grid", "quadtree", "scan")


@dataclass
class IndexAblationResult:
    kinds: Sequence[str]
    rows: List[Tuple[str, Dict[str, Tuple[float, Any]]]] = field(
        default_factory=list
    )


def run_index_ablation(
    seed: int = 42, scale: float = 0.25,
    kinds: Sequence[str] = INDEX_ABLATION_KINDS,
    distribution: str = "uniform",
) -> IndexAblationResult:
    """``distribution="clustered"`` places landmarks in urban blobs —
    the skew regime where the uniform grid's fixed cells pay for their
    simplicity."""
    dataset = generate(seed=seed, scale=scale, distribution=distribution)
    cursors = {}
    for kind in kinds:
        db = Database("greenwood")
        dataset.load_into(db, create_indexes=False)
        if kind != "scan":
            for layer in dataset.layers.values():
                db.execute(
                    f"CREATE SPATIAL INDEX xidx_{layer.name} "
                    f"ON {layer.name} (geom) USING {kind}"
                )
        cursors[kind] = connect(database=db).cursor()
    result = IndexAblationResult(kinds=tuple(kinds))
    for name, sql in INDEX_ABLATION_QUERIES.items():
        per_kind: Dict[str, Tuple[float, Any]] = {}
        for kind in kinds:
            per_kind[kind] = _timed(cursors[kind], sql)
        answers = {a for _t, a in per_kind.values()}
        assert len(answers) == 1, f"{name}: index structure changed the answer"
        result.rows.append((name, per_kind))
    return result


def render_index_ablation(result: IndexAblationResult) -> str:
    lines = [
        "== J-A2: index structures (greenwood, exact answers identical) ==",
        f"{'query':18s}" + "".join(f"{k:>12s}" for k in result.kinds),
    ]
    for name, per_kind in result.rows:
        cells = "".join(
            f"{per_kind[k][0] * 1e3:10.1f}ms" for k in result.kinds
        )
        lines.append(f"{name:18s}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X1 (extension): selectivity sweep
# ---------------------------------------------------------------------------

#: window side as a fraction of the state's extent, tiny to everything
SELECTIVITY_FRACTIONS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass
class SelectivityResult:
    engines: Sequence[str]
    fractions: Sequence[float]
    # engine -> [(fraction, seconds, result_count, index_candidates)]
    series: Dict[str, List[Tuple[float, float, int, int]]] = field(
        default_factory=dict
    )


def run_selectivity_sweep(
    seed: int = 42, scale: float = 0.25,
    engines: Sequence[str] = ("greenwood", "bluestem", "ironbark"),
    fractions: Sequence[float] = SELECTIVITY_FRACTIONS,
) -> SelectivityResult:
    """Window queries over `edges` at increasing selectivity.

    Extension beyond the paper's figures: shows how the filter-refine
    split behaves as the answer grows from a handful of rows to the whole
    table — exact engines pay refinement per candidate, the MBR engine's
    cost tracks the candidate count alone.
    """
    from repro.datagen.tiger import WORLD_SIZE

    dataset = generate(seed=seed, scale=scale)
    result = SelectivityResult(engines=tuple(engines),
                               fractions=tuple(fractions))
    for engine in engines:
        db = Database(engine)
        dataset.load_into(db)
        conn = connect(database=db)
        cursor = conn.cursor()
        points: List[Tuple[float, float, int, int]] = []
        for fraction in fractions:
            half = fraction * WORLD_SIZE / 2.0
            cx = cy = WORLD_SIZE / 2.0
            sql = (
                f"SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
                f"ST_MakeEnvelope({cx - half}, {cy - half}, "
                f"{cx + half}, {cy + half}))"
            )
            db.stats.reset()
            seconds, answer = _timed(cursor, sql)
            candidates = db.stats.index_candidates // 4  # warmup + 3 runs
            points.append((fraction, seconds, int(answer), candidates))
        result.series[engine] = points
    return result


def render_selectivity(result: SelectivityResult) -> str:
    lines = [
        "== J-X1 (extension): window-selectivity sweep over edges ==",
        f"{'window':>8s} " + "".join(
            f"{e + ' (ms|rows)':>24s}" for e in result.engines
        ),
    ]
    for i, fraction in enumerate(result.fractions):
        cells = []
        for engine in result.engines:
            _f, seconds, answer, _cand = result.series[engine][i]
            cells.append(f"{seconds * 1e3:12.2f} | {answer:>6d}")
        lines.append(f"{fraction:>7.0%} " + "".join(
            f"{c:>24s}" for c in cells
        ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X2 (extension): multi-client macro throughput
# ---------------------------------------------------------------------------


@dataclass
class ConcurrencyResult:
    scenario: str
    engine: str
    # [(clients, wall_seconds, total_queries, aggregate_qpm)]
    points: List[Tuple[int, float, int, float]] = field(default_factory=list)
    #: one wall-time decomposition per point, when run with ``waits=True``
    attributions: List[Any] = field(default_factory=list)


def run_concurrency(
    scenario_name: str = "map_search",
    engine: str = "greenwood",
    clients_series: Sequence[int] = (1, 2, 4),
    seed: int = 42,
    scale: float = 0.25,
    waits: bool = False,
) -> ConcurrencyResult:
    """J-X2: read-only throughput with N concurrent clients (extension).

    Each client replays one deterministic macro scenario on its own
    DB-API connection via the :mod:`repro.workload` client harness, which
    also collects per-client latency histograms from the scenario step
    timings. The embedded engines are pure Python, so the GIL serialises
    CPU work — the experiment therefore measures *contention behaviour*
    (fairness and aggregate throughput stability), not parallel speedup,
    and the report says so.
    """
    from repro.core.macro import SCENARIOS_BY_NAME
    from repro.workload import run_client_threads

    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    result = ConcurrencyResult(scenario=scenario_name, engine=engine)
    for clients in clients_series:

        def body(conn, report) -> None:
            scenario = SCENARIOS_BY_NAME[scenario_name]()
            outcome = scenario.run(
                conn, dataset, seed=seed + report.client_id,
                engine_name=engine,
            )
            report.ops += outcome.executed
            report.reads += outcome.executed
            for step in outcome.steps:
                if not step.skipped:
                    report.latency.observe(step.seconds)

        if waits:
            from repro.obs.waits import WAITS, WaitAttribution

            WAITS.enable()
            WAITS.reset()
            try:
                wall, reports = run_client_threads(db, clients, body)
                result.attributions.append(WaitAttribution.capture(
                    WAITS, busy_seconds=wall * clients
                ))
            finally:
                WAITS.disable()
        else:
            wall, reports = run_client_threads(db, clients, body)
        total_queries = sum(report.ops for report in reports)
        qpm = 60.0 * total_queries / wall if wall else 0.0
        result.points.append((clients, wall, total_queries, qpm))
    return result


def render_concurrency(result: ConcurrencyResult) -> str:
    lines = [
        f"== J-X2 (extension): concurrent clients, "
        f"{result.scenario} on {result.engine} ==",
        "(pure-Python engines: the GIL serialises CPU work, so this shows",
        " contention behaviour, not parallel speedup)",
        f"{'clients':>8s} {'wall':>10s} {'queries':>9s} {'agg q/min':>10s}",
    ]
    for clients, wall, total, qpm in result.points:
        lines.append(
            f"{clients:>8d} {wall:>9.2f}s {total:>9d} {qpm:>10.0f}"
        )
    for (clients, _wall, _total, _qpm), attribution in zip(
        result.points, result.attributions
    ):
        lines.append("")
        lines.append(attribution.render(
            title=f"wall-time decomposition @ {clients} client(s)"
        ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X4 (extension): mixed read/write throughput and abort rate
# ---------------------------------------------------------------------------


@dataclass
class MixedThroughputResult:
    engine: str
    mix: str
    # [(clients, wall_s, ops, qpm, commits, aborts, retries, abort_rate)]
    points: List[Tuple[int, float, int, float, int, int, int, float]] = field(
        default_factory=list
    )
    #: one wall-time decomposition per point, when run with ``waits=True``
    attributions: List[Any] = field(default_factory=list)
    #: per-lock-key hot-row tables matching ``attributions``
    hottest: List[List[Dict[str, Any]]] = field(default_factory=list)


def run_mixed_workload(
    engine: str = "greenwood",
    clients_series: Sequence[int] = (1, 2, 4),
    seed: int = 42,
    scale: float = 0.25,
    duration: float = 2.0,
    mix: str = "mixed",
    waits: bool = False,
) -> MixedThroughputResult:
    """J-X4: mixed read/write throughput and abort rate vs client count.

    The :mod:`repro.workload` driver replays the 80/20 read/write mix in
    a closed loop against one shared datastore; write transactions that
    lose a first-updater-wins conflict abort with
    :class:`~repro.errors.SerializationError` and are retried with
    backoff. The reported abort rate is the real cost of optimistic
    snapshot-isolation writers under contention — the dimension the
    paper's single-user runs cannot see.
    """
    from repro.workload import WorkloadConfig, run_workload

    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    result = MixedThroughputResult(engine=engine, mix=mix)
    for clients in clients_series:
        config = WorkloadConfig(
            clients=clients, duration=duration, mix=mix, engine=engine,
            seed=seed, scale=scale, waits=waits,
        )
        report = run_workload(config, database=db)
        if report.attribution is not None:
            result.attributions.append(report.attribution)
            result.hottest.append(report.hottest_rows)
        result.points.append((
            clients,
            report.wall_seconds,
            report.total_ops,
            report.queries_per_minute,
            report.total_commits,
            report.total_aborts,
            report.total_retries,
            report.abort_rate,
        ))
    return result


def render_mixed_workload(result: MixedThroughputResult) -> str:
    lines = [
        f"== J-X4 (extension): mixed read/write workload, "
        f"{result.mix} mix on {result.engine} ==",
        "(snapshot isolation, first-updater-wins: aborted writers retry",
        " with backoff; the GIL serialises CPU work, so read throughput",
        " measures contention behaviour, not parallel speedup)",
        f"{'clients':>8s} {'wall':>8s} {'ops':>7s} {'agg q/min':>10s} "
        f"{'commits':>8s} {'aborts':>7s} {'retries':>8s} {'abort %':>8s}",
    ]
    for (clients, wall, ops, qpm, commits, aborts, retries,
         abort_rate) in result.points:
        lines.append(
            f"{clients:>8d} {wall:>7.2f}s {ops:>7d} {qpm:>10.0f} "
            f"{commits:>8d} {aborts:>7d} {retries:>8d} "
            f"{abort_rate:>7.1%}"
        )
    for point, attribution in zip(result.points, result.attributions):
        lines.append("")
        lines.append(attribution.render(
            title=f"wall-time decomposition @ {point[0]} client(s)"
        ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# J-X3 (extension): spatial join strategy comparison
# ---------------------------------------------------------------------------

#: (label, SQL) — the topology joins that dominate the paper's micro suite
JOIN_MATRIX: Tuple[Tuple[str, str], ...] = (
    (
        "arealm x areawater (overlaps)",
        "SELECT COUNT(*) FROM arealm a, areawater w "
        "WHERE ST_Overlaps(a.geom, w.geom)",
    ),
    (
        "arealm x counties (intersects)",
        "SELECT COUNT(*) FROM arealm a, counties c "
        "WHERE ST_Intersects(a.geom, c.geom)",
    ),
    (
        "parcels x arealm (intersects)",
        "SELECT COUNT(*) FROM parcels p, arealm a "
        "WHERE ST_Intersects(p.geom, a.geom)",
    ),
    (
        "edges x areawater (crosses)",
        "SELECT COUNT(*) FROM edges e, areawater w "
        "WHERE ST_Crosses(e.geom, w.geom)",
    ),
)

JOIN_STRATEGY_SERIES: Tuple[str, ...] = ("inlj", "tree", "pbsm", "auto")


@dataclass
class SpatialJoinResult:
    engine: str
    strategies: Sequence[str]
    # label -> {strategy: (seconds, answer)}; every strategy must agree
    rows: List[Tuple[str, Dict[str, Tuple[float, Any]]]] = field(
        default_factory=list
    )


def run_spatial_join(
    seed: int = 42, scale: float = 0.25, engine: str = "greenwood",
    strategies: Sequence[str] = JOIN_STRATEGY_SERIES,
) -> SpatialJoinResult:
    """Full topology joins under each join algorithm (J-X3 extension).

    The same indexed database answers every query with the spatial join
    strategy forced to INLJ, synchronized tree traversal and PBSM, plus
    the cost-based default. Answers are asserted identical across
    strategies — only the candidate-generation machinery may differ.
    """
    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    db.execute("ANALYZE")
    conn = connect(database=db)
    cursor = conn.cursor()
    result = SpatialJoinResult(engine=engine, strategies=tuple(strategies))
    for label, sql in JOIN_MATRIX:
        cells: Dict[str, Tuple[float, Any]] = {}
        for strategy in strategies:
            db.join_strategy = strategy
            cells[strategy] = _timed(cursor, sql)
        db.join_strategy = "auto"
        answers = {answer for _s, answer in cells.values()}
        if len(answers) != 1:
            raise AssertionError(
                f"join strategies disagree on {label!r}: {cells}"
            )
        result.rows.append((label, cells))
    return result


def render_spatial_join(result: SpatialJoinResult) -> str:
    from repro.core.report import render_spatial_join_table

    return render_spatial_join_table(result)


# ---------------------------------------------------------------------------
# J-X5 (extension): crash recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryResult:
    """One J-X5 run: crash → recover → verify, per checkpoint interval."""

    profile: str
    seed: int
    scale: float
    site: str
    #: per checkpoint interval: the crash outcome, the recovery timing
    #: breakdown, the WAL length replayed, and the oracle verdict
    points: List[Dict[str, Any]] = field(default_factory=list)


def run_recovery(
    seed: int = 42,
    scale: float = 0.25,
    engine: str = "greenwood",
    intervals: Sequence[float] = (0.0, 0.1, 0.02),
    site: str = "wal.fsync",
    crash_after: int = 2500,
    clients: int = 2,
    deadline: float = 8.0,
) -> RecoveryResult:
    """J-X5: crash recovery time vs WAL length and checkpoint interval.

    For each checkpoint interval, concurrent clients commit single-row
    transactions against a fresh durable directory until a seeded crash
    fires (the ``crash_after``-th visit to ``site``, simulating
    ``kill -9`` at that exact storage instruction). ARIES-lite recovery
    then rebuilds the database, and the oracle asserts both durability
    directions: every committed transaction visible, every uncommitted
    one absent. Frequent checkpoints keep the WAL short and recovery
    fast; interval 0 (never checkpoint) replays the whole history — the
    classic recovery-time/runtime-overhead trade the paper's
    single-user, no-failure runs cannot see.
    """
    import shutil
    import tempfile

    from repro.storage.crash import run_crash_workload, verify_recovery
    from repro.storage.durability import recover

    seed_rows = max(10, int(100 * scale))
    result = RecoveryResult(profile=engine, seed=seed, scale=scale,
                            site=site)
    for interval in intervals:
        directory = tempfile.mkdtemp(prefix="jackpine-jx5-")
        try:
            outcome = run_crash_workload(
                directory,
                profile=engine,
                clients=clients,
                site=site,
                on_call=crash_after,
                deadline=deadline,
                checkpoint_interval=interval,
                seed_rows=seed_rows,
            )
            db, report = recover(directory)
            try:
                violations = verify_recovery(outcome, db)
            finally:
                db.close()
            result.points.append({
                "checkpoint_interval": interval,
                "crash_fired": outcome.fired,
                "crash_forced": outcome.forced,
                "workload_seconds": outcome.wall_seconds,
                "checkpoints_taken": outcome.checkpoints,
                "attempted": len(outcome.attempted),
                "committed": len(outcome.committed),
                "wal_records": report.wal_records,
                "winners": report.winners,
                "losers": report.losers,
                "redone": report.redone,
                "undone": report.undone,
                "recovered_rows": sum(report.tables.values()),
                "analysis_seconds": report.analysis_seconds,
                "redo_seconds": report.redo_seconds,
                "undo_seconds": report.undo_seconds,
                "rebuild_seconds": report.rebuild_seconds,
                "recovery_seconds": report.total_seconds,
                "verified": not violations,
                "violations": violations,
            })
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return result


def render_recovery(result: RecoveryResult) -> str:
    lines = [
        f"== J-X5 (extension): crash recovery on {result.profile}, "
        f"kill at {result.site} ==",
        "(simulated kill -9 mid-workload: the WAL is truncated to its",
        " last fsynced byte, then ARIES-lite analysis/redo/undo rebuilds",
        " heap, catalog and spatial indexes; the oracle checks both",
        " durability directions)",
        f"{'ckpt ivl':>9s} {'ckpts':>6s} {'wal recs':>9s} "
        f"{'winners':>8s} {'losers':>7s} {'rows':>6s} "
        f"{'recovery':>10s} {'redo':>9s} {'verified':>9s}",
    ]
    for p in result.points:
        interval = (
            "never" if not p["checkpoint_interval"]
            else f"{p['checkpoint_interval']:.2f}s"
        )
        lines.append(
            f"{interval:>9s} {p['checkpoints_taken']:>6d} "
            f"{p['wal_records']:>9d} {p['winners']:>8d} "
            f"{p['losers']:>7d} {p['recovered_rows']:>6d} "
            f"{p['recovery_seconds'] * 1e3:>8.2f}ms "
            f"{p['redo_seconds'] * 1e3:>7.2f}ms "
            f"{'yes' if p['verified'] else 'NO':>9s}"
        )
        for violation in p["violations"]:
            lines.append(f"          !! {violation}")
    return "\n".join(lines)


def write_recovery_telemetry(result: RecoveryResult, out_dir: str) -> str:
    """Write the J-X5 telemetry artifact (same envelope family as
    ``jackpine run --telemetry``); returns the path."""
    import json
    import os

    from repro.obs.telemetry import SCHEMA

    records = [
        dict(point, query_id=f"jx5.interval_{i}", engine=result.profile,
             suite="recovery", supported=True)
        for i, point in enumerate(result.points)
    ]
    document = {
        "schema": SCHEMA,
        "engine": result.profile,
        "config": {
            "seed": result.seed,
            "scale": result.scale,
            "site": result.site,
        },
        "records": records,
    }
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"recovery_{result.profile}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
