"""Benchmark query descriptors shared by the micro suites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence, Tuple


@dataclass(frozen=True)
class BenchmarkQuery:
    """One self-contained benchmark query.

    ``query_id`` keys the paper-style reports (e.g. ``topo.polygon_
    intersects_line``); ``sql`` runs unchanged on every engine thanks to
    the DB-API portability layer; ``params`` are qmark bindings.
    """

    query_id: str
    title: str
    category: str  # 'topology' | 'analysis' | 'loading'
    sql: str
    params: Tuple[Any, ...] = ()
    description: str = ""

    def run(self, cursor, timeout: Any = None) -> Any:
        cursor.execute(self.sql, self.params, timeout=timeout)
        row = cursor.fetchone()
        rest = cursor.fetchall()
        if row is None:
            return None
        if not rest and len(row) == 1:
            return row[0]
        return [row] + rest
