"""Benchmark trajectory: dated performance records over the repo's life.

``jackpine bench --record FILE`` appends one dated JSON record — the
median latencies of the J-X3 topology-join matrix plus the J-X4 abort
rates per client count — to a trajectory file, and ``--compare
BASELINE`` measures afresh, prints per-metric deltas against the last
record in BASELINE, and exits nonzero when any join regresses past a
threshold. The committed ``BENCH_trajectory.json`` seeds the series so
future changes have something to diff against.

The trajectory file is a single JSON document holding every record
(schema :data:`SCHEMA`), newest last::

    {"schema": "jackpine-bench/1", "records": [{...}, {...}]}

Comparisons are within-file only: wall-clock medians from different
machines are not comparable, so the threshold check is a *relative*
regression gate against the previous record, not an absolute target.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Dict, List, Sequence, Tuple

from repro.datagen import generate
from repro.engines import Database

SCHEMA = "jackpine-bench/1"

#: measurement defaults — small on purpose: the record is a trend line,
#: not a rigorous benchmark run
DEFAULT_REPEATS = 3
DEFAULT_CLIENTS_SERIES: Tuple[int, ...] = (1, 2, 4)
DEFAULT_DURATION = 0.5


def collect_record(
    engine: str = "greenwood",
    seed: int = 42,
    scale: float = 0.1,
    repeats: int = DEFAULT_REPEATS,
    clients_series: Sequence[int] = DEFAULT_CLIENTS_SERIES,
    duration: float = DEFAULT_DURATION,
) -> Dict[str, Any]:
    """Measure one dated trajectory record (median join latencies from
    the J-X3 matrix + J-X4 abort rates per client count)."""
    from repro.core.experiments import JOIN_MATRIX, run_mixed_workload

    dataset = generate(seed=seed, scale=scale)
    db = Database(engine)
    dataset.load_into(db)
    db.execute("ANALYZE")
    joins: Dict[str, float] = {}
    for label, sql in JOIN_MATRIX:
        db.execute(sql)  # warmup (plan cache, index touch)
        times: List[float] = []
        for _ in range(repeats):
            started = time.perf_counter()
            db.execute(sql)
            times.append(time.perf_counter() - started)
        joins[label] = median(times)
    # separate untimed pass with the statement store on: each join's
    # current plan fingerprint lands in the record, so --compare can
    # tell a latency delta caused by a plan flip from execution drift.
    # Kept outside the timed loop — recording overhead must never move
    # the medians the trajectory gates on.
    plans: Dict[str, str] = {}
    db.obs.enable_statements()
    try:
        for label, sql in JOIN_MATRIX:
            db.execute(sql)
            plan = db.obs.statements.current_plan(sql)
            if plan is not None:
                plans[label] = plan.plan_fingerprint
    finally:
        db.obs.disable_statements()
    mixed = run_mixed_workload(
        engine=engine, clients_series=clients_series, seed=seed,
        scale=scale, duration=duration,
    )
    abort_rates = {
        str(clients): abort_rate
        for clients, _w, _o, _q, _c, _a, _r, abort_rate in mixed.points
    }
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "engine": engine,
        "seed": seed,
        "scale": scale,
        "repeats": repeats,
        "join_median_seconds": joins,
        "plan_fingerprints": plans,
        "abort_rates": abort_rates,
    }


def load_trajectory(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} trajectory file")
    if not isinstance(document.get("records"), list):
        raise ValueError(f"{path}: malformed trajectory (no records list)")
    return document


def record_to(path: str, record: Dict[str, Any]) -> str:
    """Append ``record`` to the trajectory at ``path`` (created if
    absent); returns the path."""
    if os.path.exists(path):
        document = load_trajectory(path)
    else:
        document = {"schema": SCHEMA, "records": []}
    document["records"].append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass
class Comparison:
    """Fresh measurement vs the last record in a baseline trajectory."""

    baseline_at: str
    threshold: float
    # [(label, baseline_seconds, new_seconds, ratio)]
    joins: List[Tuple[str, float, float, float]] = field(
        default_factory=list
    )
    # [(clients, baseline_rate, new_rate)]
    aborts: List[Tuple[str, float, float]] = field(default_factory=list)
    #: join labels whose ratio exceeded 1 + threshold
    regressed: List[str] = field(default_factory=list)
    #: join labels whose recorded plan fingerprint changed vs baseline
    plan_changed: List[str] = field(default_factory=list)


def compare_against(path: str, record: Dict[str, Any],
                    threshold: float = 0.25) -> Comparison:
    """Compare ``record`` against the newest record in ``path``.

    Only the join latencies gate (``regressed``): abort rates swing with
    scheduling noise at sub-second durations, so their deltas are
    reported but never fail the comparison.
    """
    document = load_trajectory(path)
    if not document["records"]:
        raise ValueError(f"{path}: trajectory has no records to compare to")
    baseline = document["records"][-1]
    comparison = Comparison(
        baseline_at=baseline.get("recorded_at", "?"), threshold=threshold
    )
    base_joins = baseline.get("join_median_seconds", {})
    for label, new_seconds in record["join_median_seconds"].items():
        old_seconds = base_joins.get(label)
        if old_seconds is None or old_seconds <= 0:
            continue
        ratio = new_seconds / old_seconds
        comparison.joins.append((label, old_seconds, new_seconds, ratio))
        if ratio > 1.0 + threshold:
            comparison.regressed.append(label)
    base_plans = baseline.get("plan_fingerprints", {})
    for label, new_plan in record.get("plan_fingerprints", {}).items():
        old_plan = base_plans.get(label)
        if old_plan is not None and old_plan != new_plan:
            comparison.plan_changed.append(label)
    base_aborts = baseline.get("abort_rates", {})
    for clients, new_rate in record.get("abort_rates", {}).items():
        old_rate = base_aborts.get(clients)
        if old_rate is None:
            continue
        comparison.aborts.append((clients, old_rate, new_rate))
    return comparison


def render_record(record: Dict[str, Any]) -> str:
    lines = [
        f"== bench record @ {record['recorded_at']} "
        f"({record['engine']}, scale {record['scale']}) ==",
        f"{'join':<36s} {'median':>10s}",
    ]
    for label, seconds in record["join_median_seconds"].items():
        lines.append(f"{label:<36s} {seconds * 1e3:>8.2f}ms")
    lines.append(f"{'clients':>8s} {'abort rate':>11s}")
    for clients, rate in sorted(
        record["abort_rates"].items(), key=lambda kv: int(kv[0])
    ):
        lines.append(f"{clients:>8s} {rate:>10.1%}")
    return "\n".join(lines)


def render_comparison(comparison: Comparison) -> str:
    lines = [
        f"== vs baseline @ {comparison.baseline_at} "
        f"(threshold +{comparison.threshold:.0%}) ==",
        f"{'join':<36s} {'baseline':>10s} {'now':>10s} {'delta':>8s}",
    ]
    for label, old, new, ratio in comparison.joins:
        marker = "  << REGRESSED" if label in comparison.regressed else ""
        if label in comparison.plan_changed:
            marker += "  [plan flip]"
        lines.append(
            f"{label:<36s} {old * 1e3:>8.2f}ms {new * 1e3:>8.2f}ms "
            f"{ratio - 1.0:>+7.1%}{marker}"
        )
    if comparison.plan_changed:
        lines.append(
            f"plan flips vs baseline: "
            f"{', '.join(comparison.plan_changed)}"
        )
    for clients, old_rate, new_rate in comparison.aborts:
        lines.append(
            f"abort rate @ {clients:>2s} clients: "
            f"{old_rate:.1%} -> {new_rate:.1%} (informational)"
        )
    if comparison.regressed:
        lines.append(
            f"{len(comparison.regressed)} join(s) regressed past the "
            f"threshold"
        )
    else:
        lines.append("no joins regressed past the threshold")
    return "\n".join(lines)


__all__ = [
    "SCHEMA",
    "Comparison",
    "collect_record",
    "compare_against",
    "load_trajectory",
    "record_to",
    "render_comparison",
    "render_record",
]
