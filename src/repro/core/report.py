"""Plain-text report renderers: the paper's tables/figures as aligned text.

Each function renders one experiment artifact (see the J-T*/J-F* index in
DESIGN.md) from a :class:`BenchmarkResult`, printing rows in the same
shape the paper reports: queries down the side, engines across the top,
response time (or throughput) in the cells, ``n/s`` for unsupported
features.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.core.benchmark import BenchmarkResult
from repro.core.micro import analysis_queries, topology_queries
from repro.core.query import BenchmarkQuery


def _fmt_time(seconds: float) -> str:
    if math.isnan(seconds):
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def _micro_headers(result: BenchmarkResult, label: str) -> List[str]:
    headers = [label]
    for engine in result.engines():
        headers.extend([engine, f"{engine} p95/p99"])
    headers.append("result")
    return headers


def _micro_rows(
    result: BenchmarkResult, queries: List[BenchmarkQuery]
) -> List[List[str]]:
    engines = result.engines()
    rows: List[List[str]] = []
    for query in queries:
        row = [query.title]
        ref_value = None
        for engine in engines:
            timing = result.runs[engine].micro.get(query.query_id)
            if timing is None:
                row.extend(["-", "-"])
            elif not timing.supported:
                row.extend(["n/s", "n/s"])
            elif not timing.ok:
                # resilience outcomes render in place of a latency
                row.extend([timing.outcome, timing.outcome])
            else:
                median = _fmt_time(timing.median)
                if timing.outcome == "degraded":
                    median += "*"  # MBR-degraded verdicts, see RESILIENCE.md
                row.append(median)
                row.append(
                    f"{_fmt_time(timing.p95)}/{_fmt_time(timing.p99)}"
                )
                if ref_value is None:
                    ref_value = timing.result_value
        row.append(str(_first_supported_value(result, query.query_id)))
        rows.append(row)
    return rows


_EXACT_FIRST = ("greenwood", "ironbark")


def _first_supported_value(result: BenchmarkResult, query_id: str):
    """The reference answer: prefer exact engines over MBR-only ones."""
    ordered = [e for e in _EXACT_FIRST if e in result.runs] + [
        e for e in result.engines() if e not in _EXACT_FIRST
    ]
    for engine in ordered:
        timing = result.runs[engine].micro.get(query_id)
        if timing is not None and timing.supported and timing.ok:
            return timing.result_value
    return "-"


def render_micro_topology(result: BenchmarkResult) -> str:
    """J-F1: response time per topological micro query (median + tails)."""
    headers = _micro_headers(result, "Topological query")
    return (
        "== Micro benchmark: topological relations (J-T1 / J-F1) ==\n"
        + _table(headers, _micro_rows(result, topology_queries()))
    )


def render_micro_analysis(result: BenchmarkResult) -> str:
    """J-F2: response time per spatial-analysis micro query (median + tails)."""
    headers = _micro_headers(result, "Analysis query")
    queries = [
        q for q in analysis_queries()
    ]
    # titles/ids match regardless of dataset binding
    return (
        "== Micro benchmark: spatial analysis (J-T2 / J-F2) ==\n"
        + _table(headers, _micro_rows(result, queries))
    )


def render_macro(result: BenchmarkResult) -> str:
    """J-F3: per-scenario throughput (queries per minute)."""
    engines = result.engines()
    headers = ["Macro scenario"] + [
        f"{e} (q/min)" for e in engines
    ] + ["skipped"]
    rows: List[List[str]] = []
    scenario_names: List[str] = []
    for engine in engines:
        for name in result.runs[engine].macro:
            if name not in scenario_names:
                scenario_names.append(name)
    for name in scenario_names:
        row = [name]
        skipped_notes = []
        for engine in engines:
            scenario = result.runs[engine].macro.get(name)
            if scenario is None:
                row.append("-")
                continue
            row.append(f"{scenario.queries_per_minute:.0f}")
            if scenario.skipped:
                skipped_notes.append(f"{engine}:{scenario.skipped}")
        row.append(",".join(skipped_notes) or "-")
        rows.append(row)
    return "== Macro scenarios: throughput (J-T4 / J-F3) ==\n" + _table(
        headers, rows
    )


def render_loading(result: BenchmarkResult) -> str:
    """J-F4: per-layer load and index-build time."""
    engines = result.engines()
    headers = ["Layer"] + [
        part for engine in engines for part in (f"{engine} load", f"{engine} idx")
    ]
    layer_names: List[str] = []
    for engine in engines:
        loading = result.runs[engine].loading
        if loading:
            for timing in loading.layers:
                if timing.layer not in layer_names:
                    layer_names.append(timing.layer)
    rows: List[List[str]] = []
    for layer in layer_names:
        row = [layer]
        for engine in engines:
            loading = result.runs[engine].loading
            timing = next(
                (t for t in loading.layers if t.layer == layer), None
            ) if loading else None
            if timing is None:
                row.extend(["-", "-"])
            else:
                row.extend(
                    [_fmt_time(timing.insert_seconds),
                     _fmt_time(timing.index_seconds)]
                )
        rows.append(row)
    return "== Data loading (J-T3 / J-F4) ==\n" + _table(headers, rows)


def render_macro_details(result: BenchmarkResult) -> str:
    """Per-step timings for every scenario — the drill-down view."""
    sections: List[str] = []
    for engine in result.engines():
        for name, scenario in result.runs[engine].macro.items():
            rows = []
            for step in scenario.steps:
                status = "skipped" if step.skipped else _fmt_time(step.seconds)
                rows.append([step.label, status, str(step.rows)])
            sections.append(
                f"-- {name} on {engine} "
                f"({scenario.queries_per_minute:.0f} q/min) --\n"
                + _table(["step", "time", "rows"], rows)
            )
    return "\n\n".join(sections)


def render_spatial_join_table(result) -> str:
    """J-X3 extension table: topology joins × forced join strategies.

    Takes a :class:`repro.core.experiments.SpatialJoinResult` (duck-typed
    to keep this module free of experiment imports): joins down the side,
    join algorithms across the top, identical answers in the last column.
    """
    headers = ["join"] + list(result.strategies) + ["rows"]
    rows = []
    for label, cells in result.rows:
        answer = next(iter(cells.values()))[1]
        rows.append(
            [label]
            + [_fmt_time(cells[s][0]) for s in result.strategies]
            + [str(answer)]
        )
    return (
        f"== J-X3 (extension): spatial join strategies on {result.engine} ==\n"
        "(same answers by construction; times are medians of 3 runs)\n"
        + _table(headers, rows)
    )


def render_full(result: BenchmarkResult) -> str:
    """The complete report, all artifacts concatenated."""
    sections = [
        f"Jackpine reproduction report — dataset rows: {result.dataset_rows}, "
        f"scale {result.config.scale}, seed {result.config.seed}, "
        f"repeats {result.config.repeats}",
        render_loading(result),
        render_micro_topology(result),
        render_micro_analysis(result),
        render_macro(result),
    ]
    return "\n\n".join(sections)
