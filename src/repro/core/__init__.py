"""The Jackpine benchmark: micro suites, macro scenarios, orchestration."""

from repro.core.benchmark import (
    BenchmarkConfig,
    BenchmarkResult,
    EngineRun,
    Jackpine,
)
from repro.core.query import BenchmarkQuery
from repro.core.report import (
    render_full,
    render_loading,
    render_macro,
    render_micro_analysis,
    render_micro_topology,
)
from repro.core.stats import QueryTiming

__all__ = [
    "BenchmarkConfig",
    "BenchmarkQuery",
    "BenchmarkResult",
    "EngineRun",
    "Jackpine",
    "QueryTiming",
    "render_full",
    "render_loading",
    "render_macro",
    "render_micro_analysis",
    "render_micro_topology",
]
