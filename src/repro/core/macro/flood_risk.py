"""Macro scenario: flood risk analysis.

For each river: build the floodplain (a buffer scaled by river width),
then assess exposure — parcels intersecting the plain with their total
assessed value, landmarks inside it, and the flooded area per county.
Buffer + spatial join + aggregate is the paper's canonical analysis
pipeline."""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.core.macro.scenario import Scenario, WorkItem, column_value, sample_rows


class FloodRiskAnalysis(Scenario):
    name = "flood_risk"
    title = "Flood risk analysis"
    description = "river buffers intersected with parcels, landmarks, counties"

    rivers = 4
    buffer_multiplier = 20.0

    def build_workload(self, dataset, rng: random.Random) -> Iterable[WorkItem]:
        items: List[WorkItem] = []
        rivers = dataset.layer("rivers")
        for i, row in enumerate(sample_rows(rivers, rng, self.rivers)):
            gid = column_value(rivers, row, "gid")
            width = column_value(rivers, row, "width")
            radius = round(width * self.buffer_multiplier, 1)
            # The dialect has no scalar subqueries; the buffer is inlined on
            # the joined river row and memoised by the executor's
            # function-result cache, so it is computed once per river.
            items.append(
                WorkItem(
                    f"r{i}.parcels",
                    f"SELECT COUNT(*), SUM(p.assessed_value) "
                    f"FROM rivers r JOIN parcels p "
                    f"ON ST_Intersects(p.geom, ST_Buffer(r.geom, {radius}, 4)) "
                    f"WHERE r.gid = {gid}",
                )
            )
            items.append(
                WorkItem(
                    f"r{i}.landmarks",
                    f"SELECT COUNT(*) FROM rivers r JOIN pointlm p "
                    f"ON ST_Within(p.geom, ST_Buffer(r.geom, {radius}, 4)) "
                    f"WHERE r.gid = {gid}",
                )
            )
            items.append(
                WorkItem(
                    f"r{i}.county_area",
                    f"SELECT c.name, "
                    f"SUM(ST_Area(ST_Intersection(c.geom, "
                    f"ST_Buffer(r.geom, {radius}, 4)))) "
                    f"FROM rivers r JOIN counties c "
                    f"ON ST_Intersects(c.geom, r.geom) "
                    f"WHERE r.gid = {gid} GROUP BY c.name",
                )
            )
            items.append(
                WorkItem(
                    f"r{i}.water_links",
                    f"SELECT COUNT(*) FROM rivers r JOIN areawater w "
                    f"ON ST_Intersects(w.geom, ST_Buffer(r.geom, {radius}, 4)) "
                    f"WHERE r.gid = {gid}",
                )
            )
        return items
