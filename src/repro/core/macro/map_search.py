"""Macro scenario: map search and browsing.

Models a slippy-map client: the user searches for a landmark, the map
window centres on it and every layer is fetched for the window at three
zoom levels; the user then pans the window and finally clicks a feature
for an info popup. All fetches are envelope-driven window queries — the
workload that spatial indexes exist for.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.core.macro.scenario import Scenario, WorkItem, column_value, sample_rows
from repro.datagen.tiger import WORLD_SIZE

_ZOOM_WINDOWS = (0.20, 0.08, 0.02)  # window side as a fraction of the state
_LAYERS = ("counties", "edges", "pointlm", "arealm", "areawater")


class MapSearchBrowsing(Scenario):
    name = "map_search"
    title = "Map search and browsing"
    description = (
        "landmark search, layered window fetches at three zoom levels, "
        "a panning sequence, and feature-info point queries"
    )

    sessions = 4
    pans = 3

    def build_workload(self, dataset, rng: random.Random) -> Iterable[WorkItem]:
        items: List[WorkItem] = []
        pointlm = dataset.layer("pointlm")
        for session, row in enumerate(
            sample_rows(pointlm, rng, self.sessions)
        ):
            name = column_value(pointlm, row, "name")
            geom = column_value(pointlm, row, "geom")
            items.append(
                WorkItem(
                    f"s{session}.search",
                    "SELECT gid, name, ST_X(geom), ST_Y(geom) FROM pointlm "
                    "WHERE name LIKE ? LIMIT 10",
                    (name.split()[0] + "%",),
                )
            )
            cx, cy = geom.x, geom.y
            for zoom, fraction in enumerate(_ZOOM_WINDOWS):
                half = fraction * WORLD_SIZE / 2.0
                window = _window_sql(cx, cy, half)
                for layer in _LAYERS:
                    simplify = zoom == 0 and layer in ("edges", "counties")
                    shape = (
                        "ST_Simplify(geom, 100)" if simplify else "geom"
                    )
                    items.append(
                        WorkItem(
                            f"s{session}.z{zoom}.{layer}",
                            f"SELECT gid, ST_NPoints({shape}) FROM {layer} "
                            f"WHERE ST_Intersects(geom, {window})",
                        )
                    )
            # panning: shift the mid-zoom window diagonally
            half = _ZOOM_WINDOWS[1] * WORLD_SIZE / 2.0
            for pan in range(self.pans):
                cx += half * 0.8
                cy += half * 0.4
                window = _window_sql(cx, cy, half)
                items.append(
                    WorkItem(
                        f"s{session}.pan{pan}",
                        f"SELECT COUNT(*) FROM edges "
                        f"WHERE ST_Intersects(geom, {window})",
                    )
                )
            # feature info: tiny window around a click near the landmark
            click = _window_sql(geom.x + 50.0, geom.y + 50.0, 200.0)
            items.append(
                WorkItem(
                    f"s{session}.info",
                    f"SELECT gid, name, category FROM pointlm "
                    f"WHERE ST_Within(geom, {click})",
                )
            )
        return items


def _window_sql(cx: float, cy: float, half: float) -> str:
    return (
        f"ST_MakeEnvelope({cx - half:.1f}, {cy - half:.1f}, "
        f"{cx + half:.1f}, {cy + half:.1f})"
    )
