"""Macro workload scenarios: the six applications from the paper's abstract."""

from typing import Dict, List, Type

from repro.core.macro.flood_risk import FloodRiskAnalysis
from repro.core.macro.geocoding import Geocoding, ReverseGeocoding
from repro.core.macro.land_information import LandInformationManagement
from repro.core.macro.map_search import MapSearchBrowsing
from repro.core.macro.scenario import (
    Scenario,
    ScenarioResult,
    StepResult,
    WorkItem,
)
from repro.core.macro.toxic_spill import ToxicSpillAnalysis

ALL_SCENARIOS: List[Type[Scenario]] = [
    MapSearchBrowsing,
    Geocoding,
    ReverseGeocoding,
    FloodRiskAnalysis,
    LandInformationManagement,
    ToxicSpillAnalysis,
]

SCENARIOS_BY_NAME: Dict[str, Type[Scenario]] = {
    cls.name: cls for cls in ALL_SCENARIOS
}

__all__ = [
    "ALL_SCENARIOS",
    "SCENARIOS_BY_NAME",
    "FloodRiskAnalysis",
    "Geocoding",
    "LandInformationManagement",
    "MapSearchBrowsing",
    "ReverseGeocoding",
    "Scenario",
    "ScenarioResult",
    "StepResult",
    "ToxicSpillAnalysis",
    "WorkItem",
]
