"""Macro scenarios: geocoding and reverse geocoding.

Geocoding turns "415 Oak St, county 48007" into a coordinate: find the
road segment whose street name matches and whose address range covers the
house number, then interpolate along it. Reverse geocoding inverts the
process: given a GPS point, find the nearest road and read an address off
the projection. Both are the lookup workloads behind every mapping
service the paper's introduction motivates.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.core.macro.scenario import Scenario, WorkItem, column_value, sample_rows
from repro.datagen.tiger import WORLD_SIZE


class Geocoding(Scenario):
    name = "geocoding"
    title = "Geocoding"
    description = "street + house-number lookups with address interpolation"

    lookups = 25

    def build_workload(self, dataset, rng: random.Random) -> Iterable[WorkItem]:
        items: List[WorkItem] = []
        edges = dataset.layer("edges")
        local = [
            row
            for row in edges.rows
            if column_value(edges, row, "road_class") == "local"
        ]
        for i, row in enumerate(sample_rows_list(local, rng, self.lookups)):
            fullname = column_value(edges, row, "fullname")
            fips = column_value(edges, row, "county_fips")
            lfrom = column_value(edges, row, "lfromadd")
            lto = column_value(edges, row, "ltoadd")
            house = rng.randrange(lfrom, lto + 1, 2)
            fraction = (house - lfrom) / max(lto - lfrom, 1)
            items.append(
                WorkItem(
                    f"geocode{i}",
                    "SELECT gid, "
                    "ST_AsText(ST_LineInterpolatePoint(geom, ?)) AS location "
                    "FROM edges WHERE fullname = ? AND county_fips = ? "
                    "AND lfromadd <= ? AND ltoadd >= ? LIMIT 1",
                    (round(fraction, 6), fullname, fips, house, house),
                )
            )
        return items


class ReverseGeocoding(Scenario):
    name = "reverse_geocoding"
    title = "Reverse geocoding"
    description = "nearest-road search for GPS points, then address read-off"

    lookups = 25
    search_radius = WORLD_SIZE / 40.0  # candidate window around the point

    def build_workload(self, dataset, rng: random.Random) -> Iterable[WorkItem]:
        items: List[WorkItem] = []
        for i in range(self.lookups):
            x = rng.uniform(0.1, 0.9) * WORLD_SIZE
            y = rng.uniform(0.1, 0.9) * WORLD_SIZE
            r = self.search_radius
            window = (
                f"ST_MakeEnvelope({x - r:.1f}, {y - r:.1f}, "
                f"{x + r:.1f}, {y + r:.1f})"
            )
            point = f"ST_Point({x:.1f}, {y:.1f})"
            # candidate roads from the index window, ranked by true distance
            items.append(
                WorkItem(
                    f"nearest{i}",
                    f"SELECT gid, fullname, ST_Distance(geom, {point}) AS d "
                    f"FROM edges WHERE ST_Intersects(geom, {window}) "
                    f"ORDER BY d LIMIT 1",
                )
            )
            # address interpolation on the winner (engines lacking
            # ST_LineLocatePoint skip this step, as the paper's MySQL did)
            items.append(
                WorkItem(
                    f"address{i}",
                    f"SELECT gid, lfromadd + "
                    f"ST_LineLocatePoint(geom, {point}) * (ltoadd - lfromadd) "
                    f"FROM edges WHERE ST_Intersects(geom, {window}) "
                    f"ORDER BY ST_Distance(geom, {point}) LIMIT 1",
                )
            )
        return items


def sample_rows_list(rows: List[tuple], rng: random.Random, count: int):
    if len(rows) <= count:
        return list(rows)
    return rng.sample(rows, count)
