"""Macro scenario: land information management.

A county land office workload over the parcel fabric: adjacency searches
(Touches), containment checks against the county polygon, merging a block
of parcels into one shape (aggregate Union), area/value reports, and
proximity lookups around a landmark. Exercises exactly-shared borders,
where MBR-only engines over-report neighbours."""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.core.macro.scenario import Scenario, WorkItem, column_value, sample_rows


class LandInformationManagement(Scenario):
    name = "land_information"
    title = "Land information management"
    description = "parcel adjacency, containment, merge and report queries"

    parcels = 10

    def build_workload(self, dataset, rng: random.Random) -> Iterable[WorkItem]:
        items: List[WorkItem] = []
        parcels = dataset.layer("parcels")
        chosen = sample_rows(parcels, rng, self.parcels)
        for i, row in enumerate(chosen):
            gid = column_value(parcels, row, "gid")
            items.append(
                WorkItem(
                    f"p{i}.neighbours",
                    "SELECT b.gid, b.owner FROM parcels a JOIN parcels b "
                    "ON ST_Touches(a.geom, b.geom) "
                    f"WHERE a.gid = {gid} AND b.gid <> {gid}",
                )
            )
            items.append(
                WorkItem(
                    f"p{i}.county",
                    "SELECT c.name FROM parcels p JOIN counties c "
                    "ON ST_Within(p.geom, c.geom) "
                    f"WHERE p.gid = {gid}",
                )
            )
        # block merges and valuation reports per suburb
        fips_idx = parcels.columns.index("county_fips")
        suburbs = sorted({row[fips_idx] for row in parcels.rows})[:3]
        for j, fips in enumerate(suburbs):
            items.append(
                WorkItem(
                    f"b{j}.merge",
                    "SELECT ST_Area(ST_Union(geom)) FROM parcels "
                    f"WHERE county_fips = '{fips}' AND land_use = 'residential'",
                )
            )
            items.append(
                WorkItem(
                    f"b{j}.report",
                    "SELECT land_use, COUNT(*), SUM(assessed_value), "
                    "SUM(ST_Area(geom)) FROM parcels "
                    f"WHERE county_fips = '{fips}' GROUP BY land_use "
                    "ORDER BY land_use",
                )
            )
            items.append(
                WorkItem(
                    f"b{j}.frontage",
                    "SELECT COUNT(*) FROM parcels p JOIN edges e "
                    "ON ST_Intersects(e.geom, p.geom) "
                    f"WHERE p.county_fips = '{fips}'",
                )
            )
        # proximity: parcels near a school (distance-bounded search)
        pointlm = dataset.layer("pointlm")
        schools = [
            row for row in pointlm.rows
            if column_value(pointlm, row, "category") == "school"
        ]
        for k, row in enumerate(sample_rows_list(schools, rng, 3)):
            geom = column_value(pointlm, row, "geom")
            items.append(
                WorkItem(
                    f"near{k}.school",
                    "SELECT COUNT(*) FROM parcels "
                    f"WHERE ST_DWithin(geom, ST_Point({geom.x:.1f}, "
                    f"{geom.y:.1f}), 3000)",
                )
            )
        return items


def sample_rows_list(rows: List[tuple], rng: random.Random, count: int):
    if len(rows) <= count:
        return list(rows)
    return rng.sample(rows, count)
