"""Macro scenario framework.

A scenario is a deterministic sequence of SQL statements modelling one
real spatial application (the paper's map browsing, geocoding, reverse
geocoding, flood risk, land management and toxic spill workloads). The
runner executes the sequence through the DB-API, timing every statement;
statements an engine cannot run (missing function) are recorded as
skipped rather than failing the scenario — feature gaps are a result the
paper reports, not an error.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    QueryTimeoutError,
    ReproError,
    TransientError,
    UnsupportedFeatureError,
)


@dataclass(frozen=True)
class WorkItem:
    """One step of a scenario: a labelled SQL statement."""

    label: str
    sql: str
    params: Tuple[Any, ...] = ()


@dataclass
class StepResult:
    label: str
    seconds: float
    rows: int
    skipped: bool = False
    error: Optional[str] = None
    #: statement trace (a :class:`repro.obs.Trace`) when the engine had
    #: tracing enabled while the scenario ran
    trace: Optional[Any] = None
    #: "ok" | "degraded" | "not supported" | "timeout" | "error"
    outcome: str = "ok"
    #: transient-fault retries spent before this step settled
    retries: int = 0


@dataclass
class ScenarioResult:
    scenario: str
    engine: str
    steps: List[StepResult] = field(default_factory=list)

    @property
    def executed(self) -> int:
        return sum(
            1 for s in self.steps
            if not s.skipped and s.outcome in ("ok", "degraded")
        )

    @property
    def skipped(self) -> int:
        return sum(1 for s in self.steps if s.skipped)

    @property
    def failed(self) -> int:
        """Steps that timed out or errored (distinct from feature gaps)."""
        return sum(1 for s in self.steps if s.outcome in ("timeout", "error"))

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    @property
    def queries_per_minute(self) -> float:
        if self.total_seconds == 0.0:
            return 0.0
        return 60.0 * self.executed / self.total_seconds


class Scenario:
    """Base class: subclasses define ``name``, ``title`` and the workload."""

    name: str = "abstract"
    title: str = "Abstract scenario"
    description: str = ""

    def build_workload(
        self, dataset, rng: random.Random
    ) -> Iterable[WorkItem]:
        raise NotImplementedError

    def run(self, connection, dataset, seed: int = 7,
            engine_name: str = "?", timeout: Optional[float] = None,
            retries: int = 0) -> ScenarioResult:
        from repro.core.stats import backoff_delay

        rng = random.Random(seed)
        result = ScenarioResult(scenario=self.name, engine=engine_name)
        cursor = connection.cursor()
        database = getattr(connection, "database", None)
        tracing = database is not None and database.obs.tracing
        for item in self.build_workload(dataset, rng):
            tries = 0
            while True:
                degraded_before = (
                    database.stats.degraded_results
                    if database is not None else 0
                )
                start = time.perf_counter()
                try:
                    cursor.execute(item.sql, item.params, timeout=timeout)
                    rows = len(cursor.fetchall())
                    elapsed = time.perf_counter() - start
                    step = StepResult(item.label, elapsed, rows, retries=tries)
                    if database is not None and (
                        database.stats.degraded_results > degraded_before
                    ):
                        step.outcome = "degraded"
                    if tracing:
                        step.trace = database.last_trace()
                except UnsupportedFeatureError as exc:
                    # a feature gap is a *result* the paper reports
                    step = StepResult(
                        item.label, 0.0, 0, skipped=True, error=str(exc),
                        outcome="not supported", retries=tries,
                    )
                except QueryTimeoutError as exc:
                    step = StepResult(
                        item.label, time.perf_counter() - start, 0,
                        error=str(exc), outcome="timeout", retries=tries,
                    )
                except TransientError as exc:
                    if tries < retries:
                        time.sleep(backoff_delay(tries, rng=rng))
                        tries += 1
                        from repro.obs.metrics import GLOBAL

                        GLOBAL.counter(
                            "harness_retries_total",
                            "transient-fault retries spent by the "
                            "benchmark harness",
                        ).inc()
                        continue
                    step = StepResult(
                        item.label, time.perf_counter() - start, 0,
                        error=str(exc), outcome="error", retries=tries,
                    )
                except ReproError as exc:
                    # isolate the failure to this step; the scenario goes on
                    step = StepResult(
                        item.label, time.perf_counter() - start, 0,
                        error=str(exc), outcome="error", retries=tries,
                    )
                result.steps.append(step)
                break
        return result


def sample_rows(layer, rng: random.Random, count: int) -> List[tuple]:
    """Deterministic sample of a layer's rows."""
    rows = layer.rows
    if len(rows) <= count:
        return list(rows)
    return rng.sample(rows, count)


def column_value(layer, row: tuple, column: str):
    return row[layer.columns.index(column)]
