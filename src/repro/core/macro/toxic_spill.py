"""Macro scenario: toxic spill analysis.

Emergency response around chemical spill sites: an impact buffer around
the spill point, water bodies it reaches, road segments inside the
evacuation zone, sensitive landmarks (schools, hospitals) within a larger
radius, and the contaminated area broken down by county."""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.core.macro.scenario import Scenario, WorkItem
from repro.datagen.tiger import WORLD_SIZE


class ToxicSpillAnalysis(Scenario):
    name = "toxic_spill"
    title = "Toxic spill analysis"
    description = (
        "spill-site buffers vs. water, roads, sensitive landmarks, counties"
    )

    spills = 5
    impact_radius = 2_000.0
    alert_radius = 6_000.0

    def build_workload(self, dataset, rng: random.Random) -> Iterable[WorkItem]:
        items: List[WorkItem] = []
        for i in range(self.spills):
            x = rng.uniform(0.15, 0.85) * WORLD_SIZE
            y = rng.uniform(0.15, 0.85) * WORLD_SIZE
            point = f"ST_Point({x:.1f}, {y:.1f})"
            zone = f"ST_Buffer({point}, {self.impact_radius}, 6)"
            items.append(
                WorkItem(
                    f"s{i}.water",
                    f"SELECT gid, name FROM areawater "
                    f"WHERE ST_Intersects(geom, {zone})",
                )
            )
            items.append(
                WorkItem(
                    f"s{i}.rivers",
                    f"SELECT gid, name FROM rivers "
                    f"WHERE ST_Intersects(geom, {zone})",
                )
            )
            items.append(
                WorkItem(
                    f"s{i}.roads",
                    f"SELECT COUNT(*) FROM edges "
                    f"WHERE ST_Intersects(geom, {zone})",
                )
            )
            items.append(
                WorkItem(
                    f"s{i}.sensitive",
                    f"SELECT gid, name, category FROM pointlm "
                    f"WHERE category IN ('school', 'hospital') "
                    f"AND ST_DWithin(geom, {point}, {self.alert_radius})",
                )
            )
            items.append(
                WorkItem(
                    f"s{i}.county_area",
                    f"SELECT c.name, ST_Area(ST_Intersection(c.geom, {zone})) "
                    f"FROM counties c WHERE ST_Intersects(c.geom, {zone})",
                )
            )
        return items
