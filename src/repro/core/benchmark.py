"""The Jackpine benchmark orchestrator.

Mirrors the paper's harness: one benchmark definition (micro topology +
micro analysis + loading + six macro scenarios) executed against any
engine reachable through the DB-API portability layer, with a shared
dataset, a warmup/repeat measurement protocol, and per-query results that
the report module renders as the paper's tables and figures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.macro import ALL_SCENARIOS, SCENARIOS_BY_NAME, ScenarioResult
from repro.core.micro import (
    LoadResult,
    analysis_queries,
    bind_dataset,
    run_loading,
    topology_queries,
)
from repro.core.query import BenchmarkQuery
from repro.core.stats import QueryTiming, run_timed
from repro.datagen import TigerDataset, generate
from repro.dbapi import connect
from repro.engines import Database
from repro.errors import ReproError


@dataclass
class BenchmarkConfig:
    """Knobs for one benchmark run."""

    engines: Sequence[str] = ("greenwood", "bluestem", "ironbark")
    seed: int = 42
    scale: float = 1.0
    repeats: int = 3
    warmups: int = 1
    scenarios: Optional[Sequence[str]] = None  # None = all six
    with_indexes: bool = True
    #: capture one traced exemplar execution per micro query (outside the
    #: timed runs) so telemetry artifacts carry operator breakdowns
    collect_traces: bool = True
    #: per-query deadline in seconds (None = no deadline); a query that
    #: trips it is reported with outcome ``timeout``, not a crashed run
    timeout: Optional[float] = None
    #: transient-fault retries per query execution (full-jitter backoff)
    retries: int = 0


@dataclass
class EngineRun:
    """All results for one engine."""

    engine: str
    micro: Dict[str, QueryTiming] = field(default_factory=dict)
    macro: Dict[str, ScenarioResult] = field(default_factory=dict)
    loading: Optional[LoadResult] = None


@dataclass
class BenchmarkResult:
    config: BenchmarkConfig
    dataset_rows: int
    runs: Dict[str, EngineRun] = field(default_factory=dict)

    def engines(self) -> List[str]:
        return list(self.runs)


class Jackpine:
    """Programmatic entry point: build once, run suites selectively.

    >>> bench = Jackpine(BenchmarkConfig(engines=["greenwood"], scale=0.5))
    >>> result = bench.run()            # everything
    >>> result.runs["greenwood"].macro["geocoding"].queries_per_minute
    """

    def __init__(self, config: Optional[BenchmarkConfig] = None,
                 dataset: Optional[TigerDataset] = None):
        self.config = config or BenchmarkConfig()
        self.dataset = dataset or generate(
            seed=self.config.seed, scale=self.config.scale
        )
        self._databases: Dict[str, Database] = {}

    # -- engine management -------------------------------------------------

    def database(self, engine: str) -> Database:
        """A loaded database for ``engine`` (created and cached on demand)."""
        if engine not in self._databases:
            db = Database(engine)
            self.dataset.load_into(
                db, create_indexes=self.config.with_indexes
            )
            self._databases[engine] = db
        return self._databases[engine]

    # -- suites ----------------------------------------------------------------

    def micro_queries(self) -> List[BenchmarkQuery]:
        return topology_queries() + bind_dataset(analysis_queries(), self.dataset)

    def run_micro(self, engine: str) -> Dict[str, QueryTiming]:
        db = self.database(engine)
        conn = connect(database=db)
        cursor = conn.cursor()
        results: Dict[str, QueryTiming] = {}
        rng = random.Random(self.config.seed)
        for query in self.micro_queries():
            timing = QueryTiming(query.query_id)
            degraded_before = db.stats.degraded_results
            run_timed(
                timing,
                lambda q=query: q.run(cursor, timeout=self.config.timeout),
                repeats=self.config.repeats,
                warmups=self.config.warmups,
                retries=self.config.retries,
                rng=rng,
            )
            if timing.outcome == "ok" and (
                db.stats.degraded_results > degraded_before
            ):
                # exact refinement fell back to MBR verdicts mid-run; the
                # numbers are usable but flagged (see docs/RESILIENCE.md)
                timing.outcome = "degraded"
            if self.config.collect_traces and timing.ok:
                # one extra traced run, after timing, for the telemetry
                # operator breakdown — never inside the measured window;
                # a failure here loses the trace, not the measurements
                db.obs.enable_tracing()
                try:
                    query.run(cursor, timeout=self.config.timeout)
                    timing.trace = db.last_trace()
                except ReproError:
                    pass
                finally:
                    db.obs.disable_tracing()
            results[query.query_id] = timing
        conn.close()
        return results

    def run_macro(self, engine: str) -> Dict[str, ScenarioResult]:
        wanted = self.config.scenarios or [s.name for s in ALL_SCENARIOS]
        conn = connect(database=self.database(engine))
        results: Dict[str, ScenarioResult] = {}
        for name in wanted:
            scenario = SCENARIOS_BY_NAME[name]()
            results[name] = scenario.run(
                conn, self.dataset, seed=self.config.seed, engine_name=engine,
                timeout=self.config.timeout, retries=self.config.retries,
            )
        conn.close()
        return results

    def run_loading(self, engine: str) -> LoadResult:
        return run_loading(engine, self.dataset)

    def run(self) -> BenchmarkResult:
        result = BenchmarkResult(
            config=self.config, dataset_rows=self.dataset.total_rows()
        )
        for engine in self.config.engines:
            run = EngineRun(engine=engine)
            run.loading = self.run_loading(engine)
            run.micro = self.run_micro(engine)
            run.macro = self.run_macro(engine)
            result.runs[engine] = run
        return result
