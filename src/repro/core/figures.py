"""CSV export of every figure's data series.

The text report (``repro.core.report``) renders the paper's tables for a
human; this module writes the same series as machine-readable CSV so the
figures can be re-plotted. ``jackpine run --out DIR`` wires it to the
CLI. One file per artifact, named after the experiment ids in DESIGN.md.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional

from repro.core.benchmark import BenchmarkResult
from repro.core.micro import analysis_queries, topology_queries


def _write(path: str, header: List[str], rows: List[list]) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_micro(result: BenchmarkResult, out_dir: str) -> List[str]:
    """J-F1 and J-F2 series: per-query, per-engine medians."""
    written = []
    for filename, queries in (
        ("jf1_topology.csv", topology_queries()),
        ("jf2_analysis.csv", analysis_queries()),
    ):
        rows = []
        for query in queries:
            for engine in result.engines():
                timing = result.runs[engine].micro.get(query.query_id)
                if timing is None:
                    continue
                rows.append(
                    [
                        query.query_id,
                        query.title,
                        engine,
                        f"{timing.median:.9f}" if timing.supported else "",
                        int(timing.supported),
                        timing.result_value if timing.supported else "",
                    ]
                )
        path = os.path.join(out_dir, filename)
        _write(
            path,
            ["query_id", "title", "engine", "median_s", "supported", "result"],
            rows,
        )
        written.append(path)
    return written


def export_macro(result: BenchmarkResult, out_dir: str) -> Optional[str]:
    """J-F3 series: scenario throughput per engine."""
    rows = []
    for engine in result.engines():
        for name, scenario in result.runs[engine].macro.items():
            rows.append(
                [
                    name,
                    engine,
                    f"{scenario.queries_per_minute:.3f}",
                    scenario.executed,
                    scenario.skipped,
                    f"{scenario.total_seconds:.9f}",
                ]
            )
    if not rows:
        return None
    path = os.path.join(out_dir, "jf3_macro.csv")
    _write(
        path,
        ["scenario", "engine", "queries_per_minute", "executed", "skipped",
         "total_seconds"],
        rows,
    )
    return path


def export_loading(result: BenchmarkResult, out_dir: str) -> Optional[str]:
    """J-F4 series: per-layer insert and index-build times."""
    rows = []
    for engine in result.engines():
        loading = result.runs[engine].loading
        if loading is None:
            continue
        for timing in loading.layers:
            rows.append(
                [
                    timing.layer,
                    engine,
                    timing.rows,
                    f"{timing.insert_seconds:.9f}",
                    f"{timing.index_seconds:.9f}",
                    f"{timing.rows_per_second:.3f}",
                ]
            )
    if not rows:
        return None
    path = os.path.join(out_dir, "jf4_loading.csv")
    _write(
        path,
        ["layer", "engine", "rows", "insert_s", "index_build_s",
         "rows_per_second"],
        rows,
    )
    return path


def export_all(result: BenchmarkResult, out_dir: str) -> List[str]:
    """Write every series present in ``result``; returns written paths."""
    os.makedirs(out_dir, exist_ok=True)
    written = export_micro(result, out_dir)
    macro_path = export_macro(result, out_dir)
    if macro_path:
        written.append(macro_path)
    loading_path = export_loading(result, out_dir)
    if loading_path:
        written.append(loading_path)
    return written


# -- experiment result exporters ------------------------------------------------


def export_index_effect(result, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "jf5_index_effect.csv")
    _write(
        path,
        ["query", "indexed_s", "unindexed_s", "speedup", "answer"],
        [
            [name, f"{w:.9f}", f"{wo:.9f}",
             f"{(wo / w) if w else float('inf'):.3f}", answer]
            for name, w, wo, answer in result.rows
        ],
    )
    return path


def export_scalability(result, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "jf6_scalability.csv")
    rows = []
    for name, points in result.series.items():
        for scale, seconds, answer in points:
            rows.append([name, scale, f"{seconds:.9f}", answer])
    _write(path, ["query", "scale", "seconds", "answer"], rows)
    return path


def export_refinement(result, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "ja1_refinement.csv")
    rows = []
    for name, per_engine in result.rows:
        for engine, (seconds, answer) in per_engine.items():
            rows.append([name, engine, f"{seconds:.9f}", answer])
    _write(path, ["query", "engine", "seconds", "answer"], rows)
    return path


def export_index_ablation(result, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "ja2_index_structures.csv")
    rows = []
    for name, per_kind in result.rows:
        for kind, (seconds, answer) in per_kind.items():
            rows.append([name, kind, f"{seconds:.9f}", answer])
    _write(path, ["query", "index_kind", "seconds", "answer"], rows)
    return path


def export_selectivity(result, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "jx1_selectivity.csv")
    rows = []
    for engine, points in result.series.items():
        for fraction, seconds, answer, candidates in points:
            rows.append(
                [engine, fraction, f"{seconds:.9f}", answer, candidates]
            )
    _write(
        path,
        ["engine", "window_fraction", "seconds", "result_rows",
         "index_candidates"],
        rows,
    )
    return path
