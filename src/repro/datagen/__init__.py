"""Deterministic synthetic data: the TIGER-like benchmark dataset."""

from repro.datagen.tiger import WORLD_SIZE, Layer, TigerDataset, generate

__all__ = ["WORLD_SIZE", "Layer", "TigerDataset", "generate"]
