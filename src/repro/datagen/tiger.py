"""Synthetic TIGER-like dataset.

The paper loads US Census TIGER/Line shapefiles for the state of Texas:
road edges, point landmarks, area landmarks, area water, and county
polygons. Those files are not available offline, so this module generates
a deterministic state with the same layers, geometry types and
relative cardinalities (documented in DESIGN.md as a substitution). The
generator aims at the properties the benchmark exercises, not cartographic
realism:

- counties tile the plane with exactly shared borders (Touches queries);
- roads form connected mini-grids inside counties plus long cross-state
  highways (Crosses/Intersects with water and counties, geocoding ranges);
- lakes and rivers overlap roads and parcels (flood/spill scenarios);
- parcels subdivide suburban blocks (land-management adjacency queries);
- every feature carries the attribute columns the macro scenarios filter
  on (street names and address ranges, landmark categories, county FIPS).

Layer schemas (SQL):

- ``counties  (gid INTEGER, name TEXT, fips TEXT, geom GEOMETRY)``
- ``edges     (gid INTEGER, fullname TEXT, county_fips TEXT, road_class TEXT,
               lfromadd INTEGER, ltoadd INTEGER, geom GEOMETRY)``
- ``pointlm   (gid INTEGER, name TEXT, category TEXT, county_fips TEXT,
               geom GEOMETRY)``
- ``arealm    (gid INTEGER, name TEXT, category TEXT, county_fips TEXT,
               geom GEOMETRY)``
- ``areawater (gid INTEGER, name TEXT, water_type TEXT, geom GEOMETRY)``
- ``rivers    (gid INTEGER, name TEXT, width REAL, geom GEOMETRY)``
- ``parcels   (gid INTEGER, owner TEXT, land_use TEXT, county_fips TEXT,
               assessed_value REAL, geom GEOMETRY)``
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen import shapes
from repro.geometry.base import Coord, Geometry
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

#: the synthetic state is a WORLD_SIZE × WORLD_SIZE square (unit ~ metres)
WORLD_SIZE = 100_000.0

_STREET_STEMS = (
    "Oak", "Maple", "Cedar", "Pecan", "Live Oak", "Mesquite", "Juniper",
    "Bluebonnet", "Brazos", "Colorado", "Lamar", "Houston", "Austin",
    "Crockett", "Travis", "Guadalupe", "Nueces", "Llano", "Pedernales",
    "Comal", "Medina", "Sabine", "Trinity", "Neches", "Frio",
)
_STREET_KINDS = ("St", "Ave", "Rd", "Blvd", "Ln", "Dr")
_POINT_CATEGORIES = (
    "school", "hospital", "church", "fire_station", "library", "museum",
    "post_office", "cemetery", "tower", "park_gate",
)
_AREA_CATEGORIES = ("park", "airport", "campus", "golf_course", "cemetery",
                    "shopping_center")
_LAND_USE = ("residential", "commercial", "agricultural", "industrial")


@dataclass
class Layer:
    """One generated table: schema DDL plus rows of Python values."""

    name: str
    create_sql: str
    columns: Tuple[str, ...]
    rows: List[tuple] = field(default_factory=list)
    geometry_column: str = "geom"

    def geometries(self) -> List[Geometry]:
        idx = self.columns.index(self.geometry_column)
        return [row[idx] for row in self.rows]


@dataclass
class TigerDataset:
    """The full synthetic state: layers keyed by name, plus metadata."""

    seed: int
    scale: float
    layers: Dict[str, Layer]
    world_size: float = WORLD_SIZE

    def layer(self, name: str) -> Layer:
        return self.layers[name]

    def total_rows(self) -> int:
        return sum(len(layer.rows) for layer in self.layers.values())

    def load_into(self, db, create_indexes: bool = True,
                  index_kind: Optional[str] = None) -> None:
        """Create tables, bulk-insert rows and (optionally) build indexes."""
        for layer in self.layers.values():
            db.execute(layer.create_sql)
            db.insert_rows(layer.name, layer.rows)
        if create_indexes:
            for layer in self.layers.values():
                using = f" USING {index_kind}" if index_kind else ""
                db.execute(
                    f"CREATE SPATIAL INDEX idx_{layer.name}_geom "
                    f"ON {layer.name} ({layer.geometry_column}){using}"
                )


def generate(
    seed: int = 42, scale: float = 1.0, distribution: str = "uniform"
) -> TigerDataset:
    """Generate the synthetic state.

    ``scale`` multiplies feature counts (used by the J-F6 scalability
    sweep); geometry sizes stay constant so density grows with scale,
    like moving from rural to urban extracts.

    ``distribution`` places landmarks either ``"uniform"`` (spread evenly
    per county, the default) or ``"clustered"`` (Gaussian blobs around a
    few urban centres). Skewed placement is what separates the index
    structures in ablation J-A2 — a uniform grid thrives on uniform data
    and degrades on skew.
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    if distribution not in ("uniform", "clustered"):
        raise ValueError(
            f"distribution must be 'uniform' or 'clustered', "
            f"got {distribution!r}"
        )
    rng = random.Random(seed)
    layers: Dict[str, Layer] = {}

    counties, county_cells = _gen_counties(rng)
    sampler = (
        _ClusteredSampler(rng, county_cells)
        if distribution == "clustered"
        else None
    )
    layers["counties"] = counties
    layers["edges"] = _gen_edges(rng, county_cells, scale)
    layers["pointlm"] = _gen_pointlm(rng, county_cells, scale, sampler)
    layers["arealm"] = _gen_arealm(rng, county_cells, scale, sampler)
    layers["areawater"] = _gen_areawater(rng, scale)
    layers["rivers"] = _gen_rivers(rng, scale)
    layers["parcels"] = _gen_parcels(rng, county_cells, scale)
    return TigerDataset(seed=seed, scale=scale, layers=layers)


class _ClusteredSampler:
    """Draws landmark locations from Gaussian blobs around urban centres
    and reports which county each draw landed in."""

    CITIES = 3
    SIGMA_FRACTION = 0.04  # of the state's extent

    def __init__(self, rng: random.Random,
                 county_cells: Sequence[Tuple[str, Polygon]]):
        self._rng = rng
        self._cells = county_cells
        self.centers = [
            (
                rng.uniform(0.2, 0.8) * WORLD_SIZE,
                rng.uniform(0.2, 0.8) * WORLD_SIZE,
            )
            for _ in range(self.CITIES)
        ]

    def draw(self) -> Tuple[Point, str]:
        from repro.algorithms.location import Location, locate_in_polygon

        sigma = self.SIGMA_FRACTION * WORLD_SIZE
        while True:
            cx, cy = self._rng.choice(self.centers)
            x = self._rng.gauss(cx, sigma)
            y = self._rng.gauss(cy, sigma)
            if not (0.0 < x < WORLD_SIZE and 0.0 < y < WORLD_SIZE):
                continue
            for fips, cell in self._cells:
                if locate_in_polygon((x, y), cell) is Location.INTERIOR:
                    return Point(x, y), fips
            # landed exactly on a county border: re-draw


# ---------------------------------------------------------------------------
# per-layer generators
# ---------------------------------------------------------------------------

_COUNTY_GRID = 5  # 5x5 = 25 counties (Texas has 254; ratios matter, not counts)


def _gen_counties(
    rng: random.Random,
) -> Tuple[Layer, List[Tuple[str, Polygon]]]:
    layer = Layer(
        name="counties",
        create_sql=(
            "CREATE TABLE counties (gid INTEGER, name TEXT, fips TEXT, "
            "geom GEOMETRY)"
        ),
        columns=("gid", "name", "fips", "geom"),
    )
    nodes = shapes.jittered_lattice(
        rng, _COUNTY_GRID, _COUNTY_GRID, WORLD_SIZE, WORLD_SIZE, jitter=0.22
    )
    cells: List[Tuple[str, Polygon]] = []
    gid = 0
    for iy in range(_COUNTY_GRID):
        for ix in range(_COUNTY_GRID):
            gid += 1
            fips = f"48{gid:03d}"
            polygon = shapes.lattice_cell(nodes, ix, iy)
            name = f"{rng.choice(_STREET_STEMS)} County"
            layer.rows.append((gid, name, fips, polygon))
            cells.append((fips, polygon))
    return layer, cells


def _gen_edges(
    rng: random.Random,
    county_cells: Sequence[Tuple[str, Polygon]],
    scale: float,
) -> Layer:
    layer = Layer(
        name="edges",
        create_sql=(
            "CREATE TABLE edges (gid INTEGER, fullname TEXT, "
            "county_fips TEXT, road_class TEXT, lfromadd INTEGER, "
            "ltoadd INTEGER, geom GEOMETRY)"
        ),
        columns=(
            "gid", "fullname", "county_fips", "road_class",
            "lfromadd", "ltoadd", "geom",
        ),
    )
    gid = 0
    streets_per_county = max(2, round(6 * scale))
    for fips, cell in county_cells:
        env = cell.envelope
        # local street mini-grid: horizontal + vertical wiggly streets,
        # each chopped into address-range blocks
        for axis in ("h", "v"):
            for s in range(streets_per_county):
                stem = rng.choice(_STREET_STEMS)
                kind = rng.choice(_STREET_KINDS)
                fullname = f"{stem} {kind}"
                t = (s + 0.5) / streets_per_county
                if axis == "h":
                    y = env.min_y + t * env.height
                    start = (env.min_x + 0.02 * env.width, y)
                    end = (env.max_x - 0.02 * env.width, y)
                else:
                    x = env.min_x + t * env.width
                    start = (x, env.min_y + 0.02 * env.height)
                    end = (x, env.max_y - 0.02 * env.height)
                street = shapes.wiggly_line(rng, start, end,
                                            segments=6, wobble=0.05)
                blocks = rng.randint(2, 5)
                base_addr = rng.randrange(100, 400, 100)
                coords = street.coords
                per_block = max(1, (len(coords) - 1) // blocks)
                for b in range(blocks):
                    lo = b * per_block
                    hi = min((b + 1) * per_block, len(coords) - 1)
                    if lo >= hi:
                        continue
                    gid += 1
                    lfrom = base_addr + b * 100
                    lto = lfrom + 98
                    layer.rows.append(
                        (
                            gid, fullname, fips, "local", lfrom, lto,
                            LineString(coords[lo : hi + 1]),
                        )
                    )
    # cross-state highways
    highways = max(2, round(8 * scale))
    for h in range(highways):
        gid += 1
        if rng.random() < 0.5:
            start = (0.0, rng.uniform(0.1, 0.9) * WORLD_SIZE)
            end = (WORLD_SIZE, rng.uniform(0.1, 0.9) * WORLD_SIZE)
        else:
            start = (rng.uniform(0.1, 0.9) * WORLD_SIZE, 0.0)
            end = (rng.uniform(0.1, 0.9) * WORLD_SIZE, WORLD_SIZE)
        layer.rows.append(
            (
                gid,
                f"State Highway {h + 1}",
                "48000",
                "highway",
                1000,
                9998,
                shapes.wiggly_line(rng, start, end, segments=24, wobble=0.04),
            )
        )
    return layer


def _gen_pointlm(
    rng: random.Random,
    county_cells: Sequence[Tuple[str, Polygon]],
    scale: float,
    sampler: "Optional[_ClusteredSampler]" = None,
) -> Layer:
    layer = Layer(
        name="pointlm",
        create_sql=(
            "CREATE TABLE pointlm (gid INTEGER, name TEXT, category TEXT, "
            "county_fips TEXT, geom GEOMETRY)"
        ),
        columns=("gid", "name", "category", "county_fips", "geom"),
    )
    per_county = max(3, round(30 * scale))
    total = per_county * len(county_cells)
    gid = 0
    if sampler is not None:
        for _ in range(total):
            gid += 1
            point, fips = sampler.draw()
            category = rng.choice(_POINT_CATEGORIES)
            name = f"{rng.choice(_STREET_STEMS)} {category.title()} #{gid}"
            layer.rows.append((gid, name, category, fips, point))
        return layer
    for fips, cell in county_cells:
        for _ in range(per_county):
            gid += 1
            category = rng.choice(_POINT_CATEGORIES)
            name = f"{rng.choice(_STREET_STEMS)} {category.title()} #{gid}"
            layer.rows.append(
                (gid, name, category, fips, shapes.random_point_in(rng, cell))
            )
    return layer


def _gen_arealm(
    rng: random.Random,
    county_cells: Sequence[Tuple[str, Polygon]],
    scale: float,
    sampler: "Optional[_ClusteredSampler]" = None,
) -> Layer:
    layer = Layer(
        name="arealm",
        create_sql=(
            "CREATE TABLE arealm (gid INTEGER, name TEXT, category TEXT, "
            "county_fips TEXT, geom GEOMETRY)"
        ),
        columns=("gid", "name", "category", "county_fips", "geom"),
    )
    per_county = max(1, round(5 * scale))
    gid = 0

    def emit(fips: str, center_coord) -> None:
        nonlocal gid
        gid += 1
        category = rng.choice(_AREA_CATEGORIES)
        radius = rng.uniform(0.01, 0.035) * WORLD_SIZE / _COUNTY_GRID
        blob = shapes.convex_blob(rng, center_coord, radius)
        name = f"{rng.choice(_STREET_STEMS)} {category.title()}"
        layer.rows.append((gid, name, category, fips, blob))

    if sampler is not None:
        for _ in range(per_county * len(county_cells)):
            point, fips = sampler.draw()
            emit(fips, point.coord)
        return layer
    for fips, cell in county_cells:
        for _ in range(per_county):
            emit(fips, shapes.random_point_in(rng, cell).coord)
    return layer


def _gen_areawater(rng: random.Random, scale: float) -> Layer:
    layer = Layer(
        name="areawater",
        create_sql=(
            "CREATE TABLE areawater (gid INTEGER, name TEXT, "
            "water_type TEXT, geom GEOMETRY)"
        ),
        columns=("gid", "name", "water_type", "geom"),
    )
    lakes = max(4, round(40 * scale))
    for gid in range(1, lakes + 1):
        center = (
            rng.uniform(0.05, 0.95) * WORLD_SIZE,
            rng.uniform(0.05, 0.95) * WORLD_SIZE,
        )
        radius = rng.uniform(400.0, 2500.0)
        lake = shapes.radial_polygon(rng, center, radius,
                                     irregularity=0.4, vertices=16)
        name = f"Lake {rng.choice(_STREET_STEMS)}"
        layer.rows.append((gid, name, "lake", lake))
    return layer


def _gen_rivers(rng: random.Random, scale: float) -> Layer:
    layer = Layer(
        name="rivers",
        create_sql=(
            "CREATE TABLE rivers (gid INTEGER, name TEXT, width REAL, "
            "geom GEOMETRY)"
        ),
        columns=("gid", "name", "width", "geom"),
    )
    rivers = max(2, round(8 * scale))
    for gid in range(1, rivers + 1):
        start = (rng.uniform(0.0, 1.0) * WORLD_SIZE, 0.0)
        end = (rng.uniform(0.0, 1.0) * WORLD_SIZE, WORLD_SIZE)
        if rng.random() < 0.5:
            start = (0.0, rng.uniform(0.0, 1.0) * WORLD_SIZE)
            end = (WORLD_SIZE, rng.uniform(0.0, 1.0) * WORLD_SIZE)
        river = shapes.wiggly_line(rng, start, end, segments=30, wobble=0.08)
        layer.rows.append(
            (gid, f"{rng.choice(_STREET_STEMS)} River",
             rng.uniform(30.0, 150.0), river)
        )
    return layer


def _gen_parcels(
    rng: random.Random,
    county_cells: Sequence[Tuple[str, Polygon]],
    scale: float,
) -> Layer:
    """Rectangular parcel blocks in a subset of counties (the 'suburbs').

    Parcels inside one block share borders exactly, which the land
    management scenario relies on for its Touches adjacency queries.
    """
    layer = Layer(
        name="parcels",
        create_sql=(
            "CREATE TABLE parcels (gid INTEGER, owner TEXT, land_use TEXT, "
            "county_fips TEXT, assessed_value REAL, geom GEOMETRY)"
        ),
        columns=(
            "gid", "owner", "land_use", "county_fips", "assessed_value", "geom",
        ),
    )
    suburb_count = max(3, round(6 * scale))
    suburbs = rng.sample(list(county_cells), min(suburb_count, len(county_cells)))
    gid = 0
    grid = max(3, round(6 * math.sqrt(scale)))
    for fips, cell in suburbs:
        env = cell.envelope
        # one rectangular block per suburb, inset from the county border
        block_w = env.width * 0.4
        block_h = env.height * 0.4
        ox = env.min_x + rng.uniform(0.1, 0.5) * env.width
        oy = env.min_y + rng.uniform(0.1, 0.5) * env.height
        step_x = block_w / grid
        step_y = block_h / grid
        for iy in range(grid):
            for ix in range(grid):
                gid += 1
                x0 = ox + ix * step_x
                y0 = oy + iy * step_y
                parcel = Polygon(
                    [
                        (x0, y0),
                        (x0 + step_x, y0),
                        (x0 + step_x, y0 + step_y),
                        (x0, y0 + step_y),
                    ]
                )
                layer.rows.append(
                    (
                        gid,
                        f"Owner {gid:05d}",
                        rng.choice(_LAND_USE),
                        fips,
                        round(rng.uniform(40_000.0, 900_000.0), 2),
                        parcel,
                    )
                )
    return layer
