"""Random geometry factories used by the TIGER-like generator.

All factories take an explicit ``random.Random`` so every layer is fully
determined by the dataset seed. Shapes are built to be valid by
construction (star-shaped radial polygons, convex hulls, jittered
lattices) — validity of every generated layer is asserted by the test
suite rather than patched after the fact.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from repro.algorithms.convexhull import convex_hull_coords
from repro.geometry.base import Coord
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def radial_polygon(
    rng: random.Random,
    center: Coord,
    mean_radius: float,
    irregularity: float = 0.35,
    vertices: int = 12,
) -> Polygon:
    """A star-shaped (hence simple) polygon around ``center``.

    Radii vary by up to ``irregularity`` of the mean and are smoothed with
    a small moving average so lakes look blobby rather than spiky.
    """
    if vertices < 3:
        raise ValueError("a polygon needs at least three vertices")
    raw = [
        mean_radius * (1.0 + irregularity * (rng.random() * 2.0 - 1.0))
        for _ in range(vertices)
    ]
    radii = [
        (raw[i - 1] + raw[i] + raw[(i + 1) % vertices]) / 3.0
        for i in range(vertices)
    ]
    cx, cy = center
    coords = [
        (
            cx + r * math.cos(2.0 * math.pi * i / vertices),
            cy + r * math.sin(2.0 * math.pi * i / vertices),
        )
        for i, r in enumerate(radii)
    ]
    return Polygon(coords)


def convex_blob(
    rng: random.Random, center: Coord, radius: float, samples: int = 14
) -> Polygon:
    """Convex hull of points scattered around ``center``."""
    cx, cy = center
    points = [
        (cx + rng.gauss(0.0, radius / 2.0), cy + rng.gauss(0.0, radius / 2.0))
        for _ in range(max(samples, 5))
    ]
    hull = convex_hull_coords(points)
    if len(hull) < 3:  # pathological gauss draw; retry deterministically
        return convex_blob(rng, center, radius * 1.1, samples + 3)
    return Polygon(hull)


def wiggly_line(
    rng: random.Random,
    start: Coord,
    end: Coord,
    segments: int = 8,
    wobble: float = 0.15,
) -> LineString:
    """A polyline from start to end with perpendicular wobble (roads, rivers)."""
    sx, sy = start
    ex, ey = end
    dx, dy = ex - sx, ey - sy
    span = math.hypot(dx, dy)
    if span == 0.0:
        raise ValueError("wiggly line needs distinct endpoints")
    nx, ny = -dy / span, dx / span
    coords: List[Coord] = [start]
    for i in range(1, segments):
        t = i / segments
        offset = rng.gauss(0.0, wobble * span / segments)
        coords.append((sx + t * dx + offset * nx, sy + t * dy + offset * ny))
    coords.append(end)
    return LineString(coords)


def jittered_lattice(
    rng: random.Random,
    cells_x: int,
    cells_y: int,
    width: float,
    height: float,
    jitter: float = 0.25,
) -> List[List[Coord]]:
    """(cells_x+1) × (cells_y+1) lattice of corner points, interior nodes
    jittered by up to ``jitter`` of a cell — corners are shared between
    neighbouring cells so county polygons tile the plane exactly."""
    step_x = width / cells_x
    step_y = height / cells_y
    nodes: List[List[Coord]] = []
    for iy in range(cells_y + 1):
        row: List[Coord] = []
        for ix in range(cells_x + 1):
            x = ix * step_x
            y = iy * step_y
            if 0 < ix < cells_x:
                x += rng.uniform(-jitter, jitter) * step_x
            if 0 < iy < cells_y:
                y += rng.uniform(-jitter, jitter) * step_y
            row.append((x, y))
        nodes.append(row)
    return nodes


def lattice_cell(nodes: Sequence[Sequence[Coord]], ix: int, iy: int) -> Polygon:
    """The quadrilateral cell (ix, iy) of a jittered lattice."""
    return Polygon(
        [
            nodes[iy][ix],
            nodes[iy][ix + 1],
            nodes[iy + 1][ix + 1],
            nodes[iy + 1][ix],
        ]
    )


def random_point_in(rng: random.Random, polygon: Polygon) -> Point:
    """Rejection-sample a point strictly inside ``polygon``."""
    from repro.algorithms.location import Location, locate_in_polygon

    env = polygon.envelope
    for _attempt in range(1000):
        x = rng.uniform(env.min_x, env.max_x)
        y = rng.uniform(env.min_y, env.max_y)
        if locate_in_polygon((x, y), polygon) is Location.INTERIOR:
            return Point(x, y)
    # fall back to a guaranteed interior point
    from repro.algorithms.measures import point_on_surface

    return point_on_surface(polygon)
