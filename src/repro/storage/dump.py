"""Database dump and restore.

A dump is a JSON-lines file: a header record, one schema record per
table, row batches with geometries as hex-encoded WKB, and one record per
spatial index (structure is rebuilt on restore, matching how logical
backups work in the DBMSes the paper benchmarks — pg_dump stores index
*definitions*, not pages).
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterator, List

from repro.errors import EngineError
from repro.geometry import Geometry, wkb_dumps, wkb_loads

FORMAT_NAME = "jackpine-dump"
FORMAT_VERSION = 1

_ROW_BATCH = 512


def _encode_value(value: Any) -> Any:
    if isinstance(value, Geometry):
        return {"__wkb__": wkb_dumps(value).hex()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__wkb__" in value:
        return wkb_loads(bytes.fromhex(value["__wkb__"]))
    return value


def dump_database(db, stream: IO[str]) -> None:
    """Write a logical dump of ``db`` to a text stream."""
    header = {
        "type": "header",
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "profile": db.profile.name,
    }
    stream.write(json.dumps(header) + "\n")
    for table in db.catalog.tables():
        stream.write(
            json.dumps(
                {
                    "type": "table",
                    "name": table.name,
                    "columns": [[c.name, c.type.value] for c in table.columns],
                }
            )
            + "\n"
        )
        batch: List[list] = []
        for _row_id, row in table.scan():
            batch.append([_encode_value(v) for v in row])
            if len(batch) >= _ROW_BATCH:
                stream.write(
                    json.dumps(
                        {"type": "rows", "table": table.name, "rows": batch}
                    )
                    + "\n"
                )
                batch = []
        if batch:
            stream.write(
                json.dumps(
                    {"type": "rows", "table": table.name, "rows": batch}
                )
                + "\n"
            )
    for entry in db.catalog.indexes():
        stream.write(
            json.dumps(
                {
                    "type": "index",
                    "name": entry.name,
                    "table": entry.table_name,
                    "column": entry.column_name,
                    "kind": entry.index.kind,
                }
            )
            + "\n"
        )


def save_database(db, path: str) -> None:
    """Dump ``db`` to a file."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_database(db, stream)


def _records(stream: IO[str]) -> Iterator[dict]:
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise EngineError(f"dump line {line_no}: invalid JSON ({exc})")
        if not isinstance(record, dict) or "type" not in record:
            raise EngineError(f"dump line {line_no}: not a dump record")
        yield record


def restore_database(stream: IO[str], profile: str = None):  # type: ignore[assignment]
    """Rebuild a Database from a dump stream.

    ``profile`` overrides the dumped engine profile, which lets the same
    dump be restored into all three engines — the benchmark's
    load-once-run-everywhere pattern.
    """
    from repro.engines.database import Database

    records = _records(stream)
    try:
        header = next(records)
    except StopIteration:
        raise EngineError("empty dump")
    if header.get("type") != "header" or header.get("format") != FORMAT_NAME:
        raise EngineError("not a jackpine dump")
    if header.get("version") != FORMAT_VERSION:
        raise EngineError(
            f"unsupported dump version {header.get('version')!r}"
        )
    db = Database(profile or header.get("profile", "greenwood"))
    pending_indexes = []
    for record in records:
        kind = record["type"]
        if kind == "table":
            columns = ", ".join(
                f"{name} {type_name}" for name, type_name in record["columns"]
            )
            db.execute(f"CREATE TABLE {record['name']} ({columns})")
        elif kind == "rows":
            rows = [
                tuple(_decode_value(v) for v in row) for row in record["rows"]
            ]
            db.insert_rows(record["table"], rows)
        elif kind == "index":
            pending_indexes.append(record)
        else:
            raise EngineError(f"unknown dump record type {kind!r}")
    for record in pending_indexes:
        db.execute(
            f"CREATE SPATIAL INDEX {record['name']} "
            f"ON {record['table']} ({record['column']}) "
            f"USING {record['kind']}"
        )
    return db


def load_database(path: str, profile: str = None):  # type: ignore[assignment]
    """Restore a Database from a dump file."""
    with open(path, "r", encoding="utf-8") as stream:
        return restore_database(stream, profile=profile)
