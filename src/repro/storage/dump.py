"""Database dump and restore, crash-safe.

A dump is a JSON-lines file: a header record, one schema record per
table, row batches with geometries as hex-encoded WKB, one record per
spatial index (structure is rebuilt on restore, matching how logical
backups work in the DBMSes the paper benchmarks — pg_dump stores index
*definitions*, not pages), and a footer carrying the record count.

Format version 2 adds crash safety:

* every record line after the header is prefixed with the CRC32 of its
  JSON payload (``"%08x <json>\\n"``), so torn or bit-flipped lines are
  detected rather than half-loaded;
* the footer makes truncation at a record boundary detectable;
* :func:`save_database` writes through a temp file in the target
  directory, fsyncs, and ``os.replace``\\ s into place — a crash mid-dump
  leaves the previous file intact, never a half-written one.

Version 1 dumps (no checksums, no footer) remain fully readable.

Restore is strict by default (any corruption raises
:class:`~repro.errors.DumpCorruptionError`); with ``recover=True`` it
truncates the torn tail instead, restores every complete preceding
record, and reports exactly what was kept via :class:`RestoreReport`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional, Tuple

from repro.errors import DumpCorruptionError, EngineError
from repro.faults import FAULTS
from repro.obs.waits import IO_DUMP_READ, IO_DUMP_WRITE, WAITS
from repro.storage.records import (
    decode_value as _decode_value,
    encode_line,
    encode_value as _encode_value,
    parse_line,
)

FORMAT_NAME = "jackpine-dump"
FORMAT_VERSION = 2
#: dump versions this reader understands
SUPPORTED_VERSIONS = (1, 2)

_ROW_BATCH = 512


def _write_record(stream: IO[str], record: dict) -> None:
    """One checksummed record line: ``%08x <json>`` (shared WAL/dump codec)."""
    if FAULTS.active:
        FAULTS.hit("dump.write")
    if WAITS.enabled:
        # one IO:DumpWrite wait per record, mirroring the fault site
        started = time.perf_counter()
        try:
            stream.write(encode_line(record))
        finally:
            WAITS.record(IO_DUMP_WRITE, time.perf_counter() - started)
        return
    stream.write(encode_line(record))


def dump_database(db, stream: IO[str]) -> None:
    """Write a logical dump of ``db`` to a text stream."""
    header = {
        "type": "header",
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "profile": db.profile.name,
    }
    # the header stays unchecksummed so format detection is trivial
    stream.write(json.dumps(header) + "\n")
    records = 0
    for table in db.catalog.tables():
        _write_record(
            stream,
            {
                "type": "table",
                "name": table.name,
                "columns": [[c.name, c.type.value] for c in table.columns],
            },
        )
        records += 1
        batch: List[list] = []
        for _row_id, row in table.scan():
            batch.append([_encode_value(v) for v in row])
            if len(batch) >= _ROW_BATCH:
                _write_record(
                    stream,
                    {"type": "rows", "table": table.name, "rows": batch},
                )
                records += 1
                batch = []
        if batch:
            _write_record(
                stream, {"type": "rows", "table": table.name, "rows": batch}
            )
            records += 1
    for entry in db.catalog.indexes():
        _write_record(
            stream,
            {
                "type": "index",
                "name": entry.name,
                "table": entry.table_name,
                "column": entry.column_name,
                "kind": entry.index.kind,
            },
        )
        records += 1
    _write_record(stream, {"type": "footer", "records": records})


def save_database(db, path: str) -> None:
    """Dump ``db`` to a file, atomically.

    The dump goes to a temp file in the same directory, is flushed and
    fsynced, then renamed over ``path`` — so a crash at any point leaves
    either the old file or the new one, never a torn hybrid.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    tmp_path = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp_path, "w", encoding="utf-8") as stream:
            dump_database(db, stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


@dataclass
class RestoreReport:
    """What a restore actually brought back."""

    version: int = FORMAT_VERSION
    profile: str = ""
    tables: List[str] = field(default_factory=list)
    rows_restored: Dict[str, int] = field(default_factory=dict)
    indexes_rebuilt: List[str] = field(default_factory=list)
    records_read: int = 0
    #: True when the dump ended in a torn/corrupt tail that was truncated
    torn: bool = False
    torn_line: Optional[int] = None
    torn_reason: Optional[str] = None

    @property
    def complete(self) -> bool:
        return not self.torn

    def describe(self) -> str:
        rows = sum(self.rows_restored.values())
        summary = (
            f"restored {len(self.tables)} tables, {rows} rows, "
            f"{len(self.indexes_rebuilt)} indexes"
        )
        if self.torn:
            summary += (
                f"; truncated torn tail at line {self.torn_line}"
                f" ({self.torn_reason})"
            )
        return summary


def _parse_record(line: str, line_no: int, version: int) -> dict:
    """Decode (and for v2, checksum-verify) one record line."""
    if FAULTS.active:
        FAULTS.hit("dump.read")
    if WAITS.enabled:
        # one IO:DumpRead wait per record, mirroring the fault site
        started = time.perf_counter()
        try:
            return _parse_record_payload(line, line_no, version)
        finally:
            WAITS.record(IO_DUMP_READ, time.perf_counter() - started)
    return _parse_record_payload(line, line_no, version)


def _parse_record_payload(line: str, line_no: int, version: int) -> dict:
    if version >= 2:
        # the WAL shares this exact validation path (repro.storage.records)
        return parse_line(line, line_no)
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DumpCorruptionError(f"invalid JSON ({exc})", line_no)
    if not isinstance(record, dict) or "type" not in record:
        raise DumpCorruptionError("not a dump record", line_no)
    return record


def _read_header(stream: IO[str]) -> Tuple[dict, int]:
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DumpCorruptionError(f"invalid JSON ({exc})", line_no)
        if (
            not isinstance(header, dict)
            or header.get("type") != "header"
            or header.get("format") != FORMAT_NAME
        ):
            raise EngineError("not a jackpine dump")
        if header.get("version") not in SUPPORTED_VERSIONS:
            raise EngineError(
                f"unsupported dump version {header.get('version')!r}"
            )
        return header, line_no
    raise EngineError("empty dump")


def restore_database(
    stream: IO[str],
    profile: str = None,  # type: ignore[assignment]
    recover: bool = False,
    report: Optional[RestoreReport] = None,
):
    """Rebuild a Database from a dump stream.

    ``profile`` overrides the dumped engine profile, which lets the same
    dump be restored into all three engines — the benchmark's
    load-once-run-everywhere pattern.

    Strict by default: checksum failures, garbage lines and truncation
    raise :class:`DumpCorruptionError`. With ``recover=True`` the first
    corrupt record ends the restore instead — every complete preceding
    record is kept, and the passed-in (or attached) :class:`RestoreReport`
    says what was restored and where the tail tore off.
    """
    from repro.engines.database import Database

    header, header_line = _read_header(stream)
    version = header.get("version", 1)
    if report is None:
        report = RestoreReport()
    report.version = version
    report.profile = header.get("profile", "greenwood")
    db = Database(profile or report.profile)
    pending_indexes: List[dict] = []
    footer: Optional[dict] = None

    def build_indexes() -> None:
        for record in pending_indexes:
            db.execute(
                f"CREATE SPATIAL INDEX {record['name']} "
                f"ON {record['table']} ({record['column']}) "
                f"USING {record['kind']}"
            )
            report.indexes_rebuilt.append(record["name"])
        db.restore_report = report

    line_no = header_line
    for line_no, line in enumerate(stream, start=header_line + 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = _parse_record(line, line_no, version)
            kind = record["type"]
            if kind == "table":
                columns = ", ".join(
                    f"{name} {type_name}"
                    for name, type_name in record["columns"]
                )
                db.execute(f"CREATE TABLE {record['name']} ({columns})")
                report.tables.append(record["name"])
                report.rows_restored.setdefault(record["name"], 0)
            elif kind == "rows":
                rows = [
                    tuple(_decode_value(v) for v in row)
                    for row in record["rows"]
                ]
                db.insert_rows(record["table"], rows)
                report.rows_restored[record["table"]] = (
                    report.rows_restored.get(record["table"], 0) + len(rows)
                )
            elif kind == "index":
                pending_indexes.append(record)
            elif kind == "footer":
                footer = record
            else:
                raise DumpCorruptionError(
                    f"unknown dump record type {kind!r}", line_no
                )
        except (DumpCorruptionError, EngineError, KeyError, TypeError,
                ValueError) as exc:
            if not recover:
                raise
            report.torn = True
            report.torn_line = line_no
            report.torn_reason = str(exc)
            build_indexes()
            return db
        report.records_read += 1
        if footer is not None:
            break
    if version >= 2 and footer is None:
        # the footer is written last: its absence means the file was
        # truncated at a record boundary
        if not recover:
            raise DumpCorruptionError(
                "dump truncated (missing footer)", line_no
            )
        report.torn = True
        report.torn_line = line_no
        report.torn_reason = "missing footer (dump truncated)"
    elif footer is not None and footer.get("records") != (
        report.records_read - 1
    ):
        reason = (
            f"footer expects {footer.get('records')} records, "
            f"read {report.records_read - 1}"
        )
        if not recover:
            raise DumpCorruptionError(reason, line_no)
        report.torn = True
        report.torn_line = line_no
        report.torn_reason = reason
    build_indexes()
    return db


def load_database(path: str, profile: str = None):  # type: ignore[assignment]
    """Restore a Database from a dump file (strict)."""
    with open(path, "r", encoding="utf-8") as stream:
        return restore_database(stream, profile=profile)


def recover_database(
    path: str, profile: str = None  # type: ignore[assignment]
) -> Tuple[Any, RestoreReport]:
    """Best-effort restore of a possibly-torn dump file.

    Returns ``(db, report)``: everything up to the first corrupt record
    is restored and the report records the truncation point.
    """
    report = RestoreReport()
    with open(path, "r", encoding="utf-8") as stream:
        db = restore_database(
            stream, profile=profile, recover=True, report=report
        )
    return db, report
