"""System catalog: tables and their spatial indexes."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SqlPlanError
from repro.index.base import SpatialIndex
from repro.storage.table import Column, Table


class IndexEntry:
    """A spatial index over one geometry column of one table."""

    __slots__ = ("name", "table_name", "column_name", "index", "probes")

    def __init__(
        self, name: str, table_name: str, column_name: str, index: SpatialIndex
    ):
        self.name = name.lower()
        self.table_name = table_name.lower()
        self.column_name = column_name.lower()
        self.index = index
        #: usage counter surfaced by the ``jackpine_tables`` system view
        self.probes = 0


class Catalog:
    """All schema objects owned by one database."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, IndexEntry] = {}
        #: read-only virtual tables (``jackpine_*``), resolved by
        #: :meth:`table` after real tables; never listed by :meth:`tables`
        #: so ANALYZE-all, dumps and loaders keep seeing the heap only
        self._system_views: Dict[str, Table] = {}

    # -- tables ----------------------------------------------------------

    def create_table(self, name: str, columns: List[Column]) -> Table:
        key = name.lower()
        if key in self._tables:
            raise SqlPlanError(f"table {name!r} already exists")
        if key in self._system_views:
            raise SqlPlanError(
                f"{name!r} is a reserved system view name"
            )
        table = Table(name, columns)
        self._tables[key] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key in self._system_views:
            raise SqlPlanError(f"cannot drop system view {name!r}")
        if key not in self._tables:
            if if_exists:
                return
            raise SqlPlanError(f"no table {name!r}")
        del self._tables[key]
        for idx_name in [
            n for n, e in self._indexes.items() if e.table_name == key
        ]:
            del self._indexes[idx_name]

    def table(self, name: str) -> Table:
        key = name.lower()
        try:
            return self._tables[key]
        except KeyError:
            view = self._system_views.get(key)
            if view is not None:
                return view
            raise SqlPlanError(f"no table {name!r}")

    def has_table(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._system_views

    # -- system views ------------------------------------------------------

    def register_system_view(self, view: Table) -> None:
        """Install one read-only virtual table (idempotent per name)."""
        self._system_views[view.name] = view

    def system_views(self) -> List[Table]:
        return list(self._system_views.values())

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    # -- indexes ----------------------------------------------------------

    def register_index(self, entry: IndexEntry) -> None:
        if entry.name in self._indexes:
            raise SqlPlanError(f"index {entry.name!r} already exists")
        self._indexes[entry.name] = entry

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._indexes:
            if if_exists:
                return
            raise SqlPlanError(f"no index {name!r}")
        del self._indexes[key]

    def index_for(
        self, table_name: str, column_name: str
    ) -> Optional[IndexEntry]:
        for entry in self._indexes.values():
            if (
                entry.table_name == table_name.lower()
                and entry.column_name == column_name.lower()
            ):
                return entry
        return None

    def indexes(self) -> List[IndexEntry]:
        return list(self._indexes.values())
