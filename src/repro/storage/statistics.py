"""Table statistics for cost-based spatial planning.

Every heap table keeps a :class:`TableStats` with one
:class:`ColumnStats` per geometry column. The cheap summary part (row
count, running envelope-extent sums, a union bounding box) is maintained
incrementally by ``Table.insert_row``/``delete_row``/``update_row``; the
``ANALYZE`` statement additionally rebuilds an envelope *histogram* per
column, which the planner uses to correct the uniform-distribution join
selectivity estimate for spatially correlated (or anti-correlated)
inputs.

The join cardinality model is the classic MBR-intersection estimate:
two envelopes drawn independently inside a universe of width ``W`` and
height ``H`` intersect with probability roughly
``((w_a + w_b) / W) * ((h_a + h_b) / H)`` where ``w``/``h`` are average
extents. With histograms available the estimate is scaled by the
cell-wise correlation of the two densities (1.0 for uniform data,
larger when both inputs cluster in the same cells, ~0 for disjoint
regions).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.geometry.base import Envelope

#: default histogram resolution (cells per axis) built by ANALYZE
HISTOGRAM_BINS = 8


class EnvelopeHistogram:
    """Counts of envelope centers over a fixed grid of ``nx * ny`` cells."""

    __slots__ = ("bounds", "nx", "ny", "counts", "total")

    def __init__(self, bounds: Envelope, nx: int, ny: int,
                 counts: List[float], total: float):
        self.bounds = bounds
        self.nx = nx
        self.ny = ny
        self.counts = counts  # row-major, len == nx * ny
        self.total = total

    @classmethod
    def build(
        cls,
        envelopes: Iterable[Envelope],
        bounds: Envelope,
        nx: int = HISTOGRAM_BINS,
        ny: int = HISTOGRAM_BINS,
    ) -> "EnvelopeHistogram":
        counts = [0.0] * (nx * ny)
        width = bounds.width or 1.0
        height = bounds.height or 1.0
        total = 0.0
        for env in envelopes:
            cx, cy = env.center
            gx = min(int((cx - bounds.min_x) / width * nx), nx - 1)
            gy = min(int((cy - bounds.min_y) / height * ny), ny - 1)
            counts[gy * nx + gx] += 1.0
            total += 1.0
        return cls(bounds, nx, ny, counts, total)

    def rebinned(self, bounds: Envelope, nx: int, ny: int) -> List[float]:
        """Fractions of the population per cell of a *different* grid.

        Each source cell's count is distributed over the target cells it
        overlaps, proportionally to area — this lets two histograms built
        over different table extents be compared on a common grid.
        """
        out = [0.0] * (nx * ny)
        if self.total <= 0.0:
            return out
        t_width = bounds.width or 1.0
        t_height = bounds.height or 1.0
        s_cell_w = (self.bounds.width or 1.0) / self.nx
        s_cell_h = (self.bounds.height or 1.0) / self.ny
        for sy in range(self.ny):
            for sx in range(self.nx):
                count = self.counts[sy * self.nx + sx]
                if count == 0.0:
                    continue
                cell = Envelope(
                    self.bounds.min_x + sx * s_cell_w,
                    self.bounds.min_y + sy * s_cell_h,
                    self.bounds.min_x + (sx + 1) * s_cell_w,
                    self.bounds.min_y + (sy + 1) * s_cell_h,
                )
                clipped = cell.intersection(bounds)
                if clipped is None:
                    continue
                x0 = min(int((clipped.min_x - bounds.min_x) / t_width * nx), nx - 1)
                x1 = min(int((clipped.max_x - bounds.min_x) / t_width * nx), nx - 1)
                y0 = min(int((clipped.min_y - bounds.min_y) / t_height * ny), ny - 1)
                y1 = min(int((clipped.max_y - bounds.min_y) / t_height * ny), ny - 1)
                span = (x1 - x0 + 1) * (y1 - y0 + 1)
                share = count / self.total / span
                for ty in range(y0, y1 + 1):
                    base = ty * nx
                    for tx in range(x0, x1 + 1):
                        out[base + tx] += share
        return out


class ColumnStats:
    """Incremental summary of one geometry column.

    ``count``/``sum_width``/``sum_height`` track live rows exactly;
    ``bounds`` only ever grows (deletes leave it stale-conservative,
    which keeps estimates valid supersets). ``histogram`` is ``None``
    until ``ANALYZE`` runs.
    """

    __slots__ = ("count", "sum_width", "sum_height", "bounds", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.sum_width = 0.0
        self.sum_height = 0.0
        self.bounds: Optional[Envelope] = None
        self.histogram: Optional[EnvelopeHistogram] = None

    def add(self, env: Optional[Envelope]) -> None:
        if env is None:
            return
        self.count += 1
        self.sum_width += env.width
        self.sum_height += env.height
        self.bounds = env if self.bounds is None else self.bounds.union(env)

    def remove(self, env: Optional[Envelope]) -> None:
        if env is None:
            return
        self.count -= 1
        self.sum_width -= env.width
        self.sum_height -= env.height
        # bounds stays as-is: shrinking would require a rescan

    @property
    def avg_width(self) -> float:
        return self.sum_width / self.count if self.count else 0.0

    @property
    def avg_height(self) -> float:
        return self.sum_height / self.count if self.count else 0.0


class TableStats:
    """Per-table statistics: one :class:`ColumnStats` per geometry column."""

    __slots__ = ("geometry", "analyzed")

    def __init__(self, column_names: Sequence[str]) -> None:
        self.geometry: Dict[str, ColumnStats] = {
            name: ColumnStats() for name in column_names
        }
        self.analyzed = False

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.geometry.get(name.lower())

    def rebuild(self, envelopes_by_column: Dict[str, List[Optional[Envelope]]]
                ) -> None:
        """Exact recomputation + histogram build (the ANALYZE path)."""
        for name, stats in self.geometry.items():
            live = [e for e in envelopes_by_column.get(name, ()) if e is not None]
            stats.count = len(live)
            stats.sum_width = sum(e.width for e in live)
            stats.sum_height = sum(e.height for e in live)
            stats.bounds = Envelope.union_all(live) if live else None
            stats.histogram = (
                EnvelopeHistogram.build(live, stats.bounds)
                if stats.bounds is not None
                else None
            )
        self.analyzed = True


def estimate_join_pairs(a: Optional[ColumnStats],
                        b: Optional[ColumnStats]) -> float:
    """Expected number of envelope-intersecting pairs between two columns.

    Uniform MBR-intersection model, corrected by histogram correlation
    when both sides have been ``ANALYZE``d. Returns 0.0 when either side
    is empty or their bounds are disjoint.
    """
    if a is None or b is None or a.count <= 0 or b.count <= 0:
        return 0.0
    if a.bounds is None or b.bounds is None:
        return 0.0
    if not a.bounds.intersects(b.bounds):
        return 0.0
    universe = a.bounds.union(b.bounds)
    width = universe.width or 1.0
    height = universe.height or 1.0
    p_x = min(1.0, (a.avg_width + b.avg_width) / width)
    p_y = min(1.0, (a.avg_height + b.avg_height) / height)
    # point-like layers still intersect partners of nonzero extent, and
    # even point-point joins self-match: keep a small floor per axis
    p_x = max(p_x, 1.0 / max(a.count * b.count, 1))
    p_y = max(p_y, 1.0 / max(a.count * b.count, 1))
    pairs = a.count * b.count * p_x * p_y
    if a.histogram is not None and b.histogram is not None:
        n = HISTOGRAM_BINS
        pa = a.histogram.rebinned(universe, n, n)
        pb = b.histogram.rebinned(universe, n, n)
        correlation = (n * n) * sum(x * y for x, y in zip(pa, pb))
        pairs *= correlation
    return min(pairs, float(a.count) * float(b.count))
