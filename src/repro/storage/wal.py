"""The write-ahead log: LSN-stamped redo/undo records, group fsync.

An append-only text file of checksummed JSON-line records (the codec
shared with dump v2 — :mod:`repro.storage.records`), preceded by one
unchecksummed header line for trivial format detection. Record types:

========== ==========================================================
``insert``  row created: table, rid, new values (redo)
``delete``  row removed: table, rid, **old values** (redo + undo)
``update``  in-place rewrite: table, rid, new + old values
``commit``  transaction durable once this record is fsynced
``abort``   transaction rolled back (its page effects were reversed)
``ddl``     schema change (create/drop table/index); always redone
``checkpoint`` dirty pages flushed; log rewritten behind this point
========== ==========================================================

Durability protocol:

* :meth:`append` buffers a record in memory and assigns its LSN — no
  I/O, so ordinary row logging costs a dict dump and a list append;
* :meth:`sync` drains the buffer to the file and fsyncs it — COMMIT
  calls :meth:`sync_for`, which piggybacks on any in-flight fsync
  (group commit: one fsync can make many committers durable);
* :attr:`durable_lsn` / the durable byte offset advance only after a
  successful fsync. :meth:`freeze` — the kill -9 simulation — truncates
  the file back to the durable offset, so everything an fsync never
  confirmed is lost exactly as it would be on a real crash;
* on open, the tail is scanned with the shared torn-tail helper and the
  file is truncated after the last valid record.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import EngineError, SimulatedCrashError
from repro.faults import FAULTS
from repro.obs.waits import IO_WAL_FSYNC, IO_WAL_WRITE, WAITS
from repro.storage.records import encode_line, scan_tail

__all__ = ["WAL_FORMAT", "WriteAheadLog"]

WAL_FORMAT = "jackpine-wal"
WAL_VERSION = 1


class WriteAheadLog:
    """One log file; thread-safe; see the module docstring for protocol."""

    def __init__(self, path: str, profile: str = "greenwood"):
        self.path = path
        self.profile = profile
        self._lock = threading.Lock()  # buffer + LSN counter
        self._io_lock = threading.Lock()  # file writes + fsync ordering
        self._buffer: List[str] = []
        self._buffered_lsns: List[int] = []
        self.frozen = False
        self.records_total = 0
        self.syncs_total = 0
        if os.path.exists(path):
            self._open_existing()
        else:
            self._create()

    # -- open/create -------------------------------------------------------

    def _create(self) -> None:
        header = {
            "type": "header", "format": WAL_FORMAT,
            "version": WAL_VERSION, "profile": self.profile,
        }
        self._file = open(self.path, "a+b")
        self._file.write((json.dumps(header) + "\n").encode("utf-8"))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._next_lsn = 1
        self._written_lsn = 0
        self.durable_lsn = 0
        self._durable_offset = self._file.tell()

    def _open_existing(self) -> None:
        """Validate the header, scan for the last complete record, and
        truncate any torn tail before appending resumes."""
        last_lsn = 0
        with open(self.path, "rb") as stream:
            header_line = stream.readline()
            try:
                header = json.loads(header_line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise EngineError(f"{self.path}: not a jackpine WAL")
            if (
                not isinstance(header, dict)
                or header.get("format") != WAL_FORMAT
            ):
                raise EngineError(f"{self.path}: not a jackpine WAL")
            self.profile = header.get("profile", self.profile)
            end = stream.tell()
            for record, _line_no, offset in scan_tail(stream):
                last_lsn = max(last_lsn, record.get("lsn", 0))
                self.records_total += 1
                end = offset
        self._file = open(self.path, "a+b")
        self._file.truncate(end)
        self._file.seek(end)
        self._next_lsn = last_lsn + 1
        self._written_lsn = last_lsn
        self.durable_lsn = last_lsn
        self._durable_offset = end

    # -- append/flush/sync -------------------------------------------------

    def append(self, record: Dict[str, Any]) -> int:
        """Assign the next LSN and buffer the record; no file I/O."""
        if FAULTS.active:
            # before the record is buffered: a fired fault means the
            # operation was never logged at all
            FAULTS.hit("wal.append")
        if self.frozen:
            raise SimulatedCrashError(
                "write-ahead log is frozen (simulated crash)"
            )
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            record["lsn"] = lsn
            self._buffer.append(encode_line(record))
            self._buffered_lsns.append(lsn)
            self.records_total += 1
            return lsn

    def _drain(self) -> int:
        """Write all buffered records to the file (no fsync); returns the
        highest LSN now in the OS page cache."""
        with self._lock:
            lines, self._buffer = self._buffer, []
            lsns, self._buffered_lsns = self._buffered_lsns, []
        if lines:
            if WAITS.enabled:
                started = time.perf_counter()
                try:
                    self._file.write("".join(lines).encode("utf-8"))
                finally:
                    WAITS.record(
                        IO_WAL_WRITE, time.perf_counter() - started,
                        detail=len(lines),
                    )
            else:
                self._file.write("".join(lines).encode("utf-8"))
            self._written_lsn = max(self._written_lsn, lsns[-1])
        return self._written_lsn

    def sync(self) -> None:
        """Drain the buffer and fsync the file; advances the durable
        horizon. The ``wal.fsync`` fault fires after the write but
        before the fsync, so a simulated crash there loses exactly the
        records an interrupted fsync would lose."""
        with self._io_lock:
            if self.frozen:
                raise SimulatedCrashError(
                    "write-ahead log is frozen (simulated crash)"
                )
            written = self._drain()
            if written <= self.durable_lsn:
                return
            self._file.flush()
            if FAULTS.active:
                FAULTS.hit("wal.fsync")
            if WAITS.enabled:
                started = time.perf_counter()
                try:
                    os.fsync(self._file.fileno())
                finally:
                    WAITS.record(
                        IO_WAL_FSYNC, time.perf_counter() - started
                    )
            else:
                os.fsync(self._file.fileno())
            self.syncs_total += 1
            self.durable_lsn = written
            self._durable_offset = self._file.tell()

    def sync_for(self, lsn: int) -> None:
        """Group commit: return as soon as ``lsn`` is durable — an fsync
        issued by a concurrent committer counts."""
        if self.durable_lsn >= lsn:
            return
        self.sync()

    # -- crash simulation --------------------------------------------------

    def freeze(self) -> None:
        """Simulate kill -9 at this instant: discard the in-memory buffer
        and truncate the file back to the last fsynced offset. Every
        later append/sync raises :class:`SimulatedCrashError`."""
        with self._lock:
            self.frozen = True
            self._buffer.clear()
            self._buffered_lsns.clear()
        try:
            self._file.truncate(self._durable_offset)
            self._file.seek(self._durable_offset)
        except ValueError:  # file already closed
            pass

    # -- recovery / checkpoint ---------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every durable record, in LSN order (re-read from the file)."""
        out: List[Dict[str, Any]] = []
        self._file.flush()
        with open(self.path, "rb") as stream:
            stream.readline()  # header
            for record, _line_no, offset in scan_tail(stream):
                if offset > self._durable_offset:
                    break
                out.append(record)
        out.sort(key=lambda r: r.get("lsn", 0))
        return out

    def rewrite(self, keep: List[Dict[str, Any]]) -> None:
        """Checkpoint truncation: atomically replace the log with only
        ``keep`` (records of still-active transactions plus the new
        checkpoint record), preserving the LSN counter."""
        with self._io_lock:
            if self.frozen:
                raise SimulatedCrashError(
                    "write-ahead log is frozen (simulated crash)"
                )
            self._drain()
            header = {
                "type": "header", "format": WAL_FORMAT,
                "version": WAL_VERSION, "profile": self.profile,
            }
            tmp_path = f"{self.path}.tmp.{os.getpid()}"
            try:
                with open(tmp_path, "w", encoding="utf-8") as tmp:
                    tmp.write(json.dumps(header) + "\n")
                    for record in keep:
                        tmp.write(encode_line(record))
                    tmp.flush()
                    os.fsync(tmp.fileno())
                self._file.close()
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                self._file = open(self.path, "a+b")
                raise
            self._file = open(self.path, "a+b")
            self._file.seek(0, os.SEEK_END)
            self._durable_offset = self._file.tell()
            self.durable_lsn = self._written_lsn = self._next_lsn - 1
            self.records_total = len(keep)

    # -- introspection -----------------------------------------------------

    @property
    def next_lsn(self) -> int:
        with self._lock:
            return self._next_lsn

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        if not self.frozen:
            try:
                self.sync()
            except Exception:
                pass
        self._file.close()
