"""Heap tables and schemas.

Rows are immutable tuples ordered by the table's column list; a row id is
the row's slot in the heap. A lightweight page model (``rows_per_page``)
lets the executor report logical page reads, mirroring the buffer-pool
counters a real DBMS exposes — useful when explaining *why* an index
helps in experiment J-F5 even though everything here is in memory.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError, SqlPlanError
from repro.faults import FAULTS
from repro.geometry.base import Envelope, Geometry
from repro.storage.statistics import TableStats


class ColumnType(enum.Enum):
    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    GEOMETRY = "GEOMETRY"

    @classmethod
    def parse(cls, name: str) -> "ColumnType":
        upper = name.upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "GEOMETRY": cls.GEOMETRY,
        }
        try:
            return aliases[upper]
        except KeyError:
            raise SqlPlanError(f"unknown column type {name!r}")


class Column:
    __slots__ = ("name", "type")

    def __init__(self, name: str, col_type: ColumnType):
        self.name = name.lower()
        self.type = col_type

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type.value})"


def _coerce(value: Any, col: Column) -> Any:
    """Validate/coerce a Python value for storage in ``col``."""
    if value is None:
        return None
    if col.type is ColumnType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise EngineError(f"column {col.name}: expected INTEGER, got {value!r}")
    if col.type is ColumnType.REAL:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise EngineError(f"column {col.name}: expected REAL, got {value!r}")
    if col.type is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise EngineError(f"column {col.name}: expected TEXT, got {value!r}")
    if col.type is ColumnType.GEOMETRY:
        if isinstance(value, Geometry):
            return value
        if isinstance(value, str):
            from repro.geometry.wkt import loads

            return loads(value)
        if isinstance(value, (bytes, bytearray)):
            from repro.geometry.wkb import loads as wkb_loads

            return wkb_loads(bytes(value))
        raise EngineError(f"column {col.name}: expected GEOMETRY, got {value!r}")
    raise EngineError(f"column {col.name}: unhandled type {col.type}")


class Table:
    """An append-only heap of tuples with positional row ids."""

    ROWS_PER_PAGE = 64

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise SqlPlanError(f"table {name!r} needs at least one column")
        lowered = [c.name for c in columns]
        if len(set(lowered)) != len(lowered):
            raise SqlPlanError(f"table {name!r} has duplicate column names")
        self.name = name.lower()
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, int] = {
            c.name: i for i, c in enumerate(self.columns)
        }
        self.rows: List[Optional[tuple]] = []
        self.live_count = 0
        # per-geometry-column envelope arrays, parallel to ``rows``, plus
        # incrementally maintained statistics for the cost-based planner
        self._geom_positions: Tuple[int, ...] = tuple(
            i for i, c in enumerate(self.columns)
            if c.type is ColumnType.GEOMETRY
        )
        self._envelopes: Dict[int, List[Optional[Envelope]]] = {
            i: [] for i in self._geom_positions
        }
        self.stats = TableStats(
            [self.columns[i].name for i in self._geom_positions]
        )

    # -- schema ------------------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SqlPlanError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def geometry_columns(self) -> List[str]:
        return [c.name for c in self.columns if c.type is ColumnType.GEOMETRY]

    # -- data --------------------------------------------------------------

    def insert_row(self, values: Sequence[Any]) -> int:
        if FAULTS.active:
            # before any mutation: a fired fault leaves the heap untouched
            FAULTS.hit("storage.insert")
        if len(values) != len(self.columns):
            raise EngineError(
                f"table {self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(
            _coerce(value, col) for value, col in zip(values, self.columns)
        )
        self.rows.append(row)
        self.live_count += 1
        for position in self._geom_positions:
            geom = row[position]
            env = geom.envelope if isinstance(geom, Geometry) else None
            self._envelopes[position].append(env)
            self.stats.geometry[self.columns[position].name].add(env)
        return len(self.rows) - 1

    def update_row(self, row_id: int, values: Sequence[Any]) -> None:
        if self.rows[row_id] is None:
            raise EngineError(f"row {row_id} is deleted")
        if len(values) != len(self.columns):
            raise EngineError(
                f"table {self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        self.rows[row_id] = tuple(
            _coerce(value, col) for value, col in zip(values, self.columns)
        )
        new_row = self.rows[row_id]
        for position in self._geom_positions:
            stats = self.stats.geometry[self.columns[position].name]
            stats.remove(self._envelopes[position][row_id])
            geom = new_row[position]
            env = geom.envelope if isinstance(geom, Geometry) else None
            self._envelopes[position][row_id] = env
            stats.add(env)

    def delete_row(self, row_id: int) -> None:
        if self.rows[row_id] is None:
            raise EngineError(f"row {row_id} already deleted")
        self.rows[row_id] = None
        self.live_count -= 1
        for position in self._geom_positions:
            stats = self.stats.geometry[self.columns[position].name]
            stats.remove(self._envelopes[position][row_id])
            self._envelopes[position][row_id] = None

    def get_row(self, row_id: int) -> tuple:
        row = self.rows[row_id]
        if row is None:
            raise EngineError(f"row {row_id} is deleted")
        return row

    def scan(self) -> Iterator[Tuple[int, tuple]]:
        for row_id, row in enumerate(self.rows):
            if row is not None:
                yield row_id, row

    def envelopes(self, column_name: str) -> List[Optional[Envelope]]:
        """Envelope array for one geometry column, parallel to ``rows``."""
        position = self.column_index(column_name)
        try:
            return self._envelopes[position]
        except KeyError:
            raise SqlPlanError(
                f"column {column_name!r} of table {self.name!r} "
                f"is not a GEOMETRY column"
            )

    def analyze(self) -> None:
        """Rebuild exact statistics + envelope histograms (the ANALYZE path)."""
        self.stats.rebuild(
            {
                self.columns[position].name: self._envelopes[position]
                for position in self._geom_positions
            }
        )

    def page_of(self, row_id: int) -> int:
        return row_id // self.ROWS_PER_PAGE

    @property
    def page_count(self) -> int:
        return (len(self.rows) + self.ROWS_PER_PAGE - 1) // self.ROWS_PER_PAGE

    def __len__(self) -> int:
        return self.live_count
