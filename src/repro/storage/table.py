"""Heap tables and schemas.

Rows are immutable tuples ordered by the table's column list; a row id is
the row's slot in the heap. A lightweight page model (``rows_per_page``)
lets the executor report logical page reads, mirroring the buffer-pool
counters a real DBMS exposes — useful when explaining *why* an index
helps in experiment J-F5 even though everything here is in memory.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError, SqlPlanError
from repro.faults import FAULTS
from repro.geometry.base import Envelope, Geometry
from repro.storage.statistics import TableStats


class ColumnType(enum.Enum):
    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    GEOMETRY = "GEOMETRY"

    @classmethod
    def parse(cls, name: str) -> "ColumnType":
        upper = name.upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "GEOMETRY": cls.GEOMETRY,
        }
        try:
            return aliases[upper]
        except KeyError:
            raise SqlPlanError(f"unknown column type {name!r}")


class Column:
    __slots__ = ("name", "type")

    def __init__(self, name: str, col_type: ColumnType):
        self.name = name.lower()
        self.type = col_type

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type.value})"


def _coerce(value: Any, col: Column) -> Any:
    """Validate/coerce a Python value for storage in ``col``."""
    if value is None:
        return None
    if col.type is ColumnType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise EngineError(f"column {col.name}: expected INTEGER, got {value!r}")
    if col.type is ColumnType.REAL:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise EngineError(f"column {col.name}: expected REAL, got {value!r}")
    if col.type is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise EngineError(f"column {col.name}: expected TEXT, got {value!r}")
    if col.type is ColumnType.GEOMETRY:
        if isinstance(value, Geometry):
            return value
        if isinstance(value, str):
            from repro.geometry.wkt import loads

            return loads(value)
        if isinstance(value, (bytes, bytearray)):
            from repro.geometry.wkb import loads as wkb_loads

            return wkb_loads(bytes(value))
        raise EngineError(f"column {col.name}: expected GEOMETRY, got {value!r}")
    raise EngineError(f"column {col.name}: unhandled type {col.type}")


class Table:
    """An append-only heap of tuples with positional row ids."""

    ROWS_PER_PAGE = 64

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise SqlPlanError(f"table {name!r} needs at least one column")
        lowered = [c.name for c in columns]
        if len(set(lowered)) != len(lowered):
            raise SqlPlanError(f"table {name!r} has duplicate column names")
        self.name = name.lower()
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, int] = {
            c.name: i for i, c in enumerate(self.columns)
        }
        self.rows: List[Optional[tuple]] = []
        self.live_count = 0
        # MVCC version stamps, parallel to ``rows`` and materialised
        # lazily on the first versioned write: 0 (FROZEN_XID) means
        # "committed long ago" / "not deleted". ``mvcc_versions`` counts
        # slots carrying a live stamp — when it is zero the table behaves
        # exactly like the pre-MVCC heap and scans skip visibility checks.
        self._xmin: Optional[List[int]] = None
        self._xmax: Optional[List[int]] = None
        self.mvcc_versions = 0
        # per-geometry-column envelope arrays, parallel to ``rows``, plus
        # incrementally maintained statistics for the cost-based planner
        self._geom_positions: Tuple[int, ...] = tuple(
            i for i, c in enumerate(self.columns)
            if c.type is ColumnType.GEOMETRY
        )
        self._envelopes: Dict[int, List[Optional[Envelope]]] = {
            i: [] for i in self._geom_positions
        }
        self.stats = TableStats(
            [self.columns[i].name for i in self._geom_positions]
        )
        # usage counters surfaced by the ``jackpine_tables`` system view:
        # sequential scans of this heap, rows physically removed by
        # vacuum, and committed inserts frozen by the garbage flush
        self.seq_scans = 0
        self.vacuumed_rows = 0
        self.frozen_rows = 0

    # -- schema ------------------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SqlPlanError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def geometry_columns(self) -> List[str]:
        return [c.name for c in self.columns if c.type is ColumnType.GEOMETRY]

    # -- data --------------------------------------------------------------

    def insert_row(self, values: Sequence[Any], xmin: int = 0) -> int:
        if FAULTS.active:
            # before any mutation: a fired fault leaves the heap untouched
            FAULTS.hit("storage.insert")
        if len(values) != len(self.columns):
            raise EngineError(
                f"table {self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(
            _coerce(value, col) for value, col in zip(values, self.columns)
        )
        # parallel arrays are appended *before* the heap slot so a
        # concurrent snapshot scan never sees a row without its stamps
        # (writers are serialised by the database latch; readers are not)
        if xmin or self._xmin is not None:
            self.ensure_versioned()
            self._xmin.append(xmin)
            self._xmax.append(0)
            if xmin:
                self.mvcc_versions += 1
        for position in self._geom_positions:
            geom = row[position]
            env = geom.envelope if isinstance(geom, Geometry) else None
            self._envelopes[position].append(env)
            self.stats.geometry[self.columns[position].name].add(env)
        self.rows.append(row)
        self.live_count += 1
        return len(self.rows) - 1

    def update_row(self, row_id: int, values: Sequence[Any]) -> None:
        if self.rows[row_id] is None:
            raise EngineError(f"row {row_id} is deleted")
        if len(values) != len(self.columns):
            raise EngineError(
                f"table {self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        self.rows[row_id] = tuple(
            _coerce(value, col) for value, col in zip(values, self.columns)
        )
        new_row = self.rows[row_id]
        for position in self._geom_positions:
            stats = self.stats.geometry[self.columns[position].name]
            stats.remove(self._envelopes[position][row_id])
            geom = new_row[position]
            env = geom.envelope if isinstance(geom, Geometry) else None
            self._envelopes[position][row_id] = env
            stats.add(env)

    def delete_row(self, row_id: int) -> None:
        if self.rows[row_id] is None:
            raise EngineError(f"row {row_id} already deleted")
        self.rows[row_id] = None
        self.live_count -= 1
        for position in self._geom_positions:
            stats = self.stats.geometry[self.columns[position].name]
            stats.remove(self._envelopes[position][row_id])
            self._envelopes[position][row_id] = None
        if self._xmin is not None and (
            self._xmin[row_id] or self._xmax[row_id]
        ):
            self._xmin[row_id] = 0
            self._xmax[row_id] = 0
            self.mvcc_versions -= 1

    # -- MVCC version stamps ------------------------------------------------

    def ensure_versioned(self) -> None:
        """Materialise the xmin/xmax arrays (all frozen) on first use."""
        if self._xmin is None:
            self._xmin = [0] * len(self.rows)
            self._xmax = [0] * len(self.rows)

    def version_arrays(self):
        """The (xmin, xmax) arrays, parallel to ``rows``; call only when
        :attr:`mvcc_versions` is non-zero (arrays exist by then)."""
        return self._xmin, self._xmax

    def mark_deleted(self, row_id: int, xid: int) -> None:
        """MVCC delete: stamp ``xmax`` instead of removing the slot — the
        version stays readable by snapshots that predate ``xid``."""
        self.ensure_versioned()
        if self.rows[row_id] is None:
            raise EngineError(f"row {row_id} already deleted")
        if not self._xmin[row_id] and not self._xmax[row_id]:
            self.mvcc_versions += 1
        self._xmax[row_id] = xid

    def clear_deleted(self, row_id: int) -> None:
        """Undo a :meth:`mark_deleted` (delete rolled back)."""
        self._xmax[row_id] = 0
        if not self._xmin[row_id]:
            self.mvcc_versions -= 1

    def freeze_row(self, row_id: int) -> None:
        """A committed insert no open snapshot could miss: drop the stamp."""
        if self._xmin[row_id]:
            self._xmin[row_id] = 0
            if not self._xmax[row_id]:
                self.mvcc_versions -= 1

    def rollback_insert(self, row_id: int) -> None:
        """Physically remove a rolled-back insert.

        Trailing slots are popped from every parallel array so a rolled
        back transaction leaves the heap bit-identical to its pre-txn
        state; non-trailing slots (later inserts survived) are nulled
        like a normal delete.
        """
        if self.rows[row_id] is None:
            raise EngineError(f"row {row_id} already deleted")
        self.live_count -= 1
        for position in self._geom_positions:
            stats = self.stats.geometry[self.columns[position].name]
            stats.remove(self._envelopes[position][row_id])
        if self._xmin is not None and (
            self._xmin[row_id] or self._xmax[row_id]
        ):
            self.mvcc_versions -= 1
        if row_id == len(self.rows) - 1:
            self.rows.pop()
            for position in self._geom_positions:
                self._envelopes[position].pop()
            if self._xmin is not None:
                self._xmin.pop()
                self._xmax.pop()
        else:
            self.rows[row_id] = None
            for position in self._geom_positions:
                self._envelopes[position][row_id] = None
            if self._xmin is not None:
                self._xmin[row_id] = 0
                self._xmax[row_id] = 0

    def restore_slots(self, slots: Dict[int, tuple]) -> None:
        """Rebuild an empty heap from ``{row_id: values}``, preserving row
        ids (gaps become deleted slots). The crash-recovery path: every
        restored row is frozen — no live snapshot survives a restart, so
        version stamps would carry no information."""
        if self.rows:
            raise EngineError(
                f"table {self.name}: restore_slots needs an empty heap"
            )
        size = max(slots) + 1 if slots else 0
        for row_id in range(size):
            values = slots.get(row_id)
            if values is None:
                self.rows.append(None)
                for position in self._geom_positions:
                    self._envelopes[position].append(None)
                continue
            row = tuple(
                _coerce(value, col)
                for value, col in zip(values, self.columns)
            )
            for position in self._geom_positions:
                geom = row[position]
                env = geom.envelope if isinstance(geom, Geometry) else None
                self._envelopes[position].append(env)
                self.stats.geometry[self.columns[position].name].add(env)
            self.rows.append(row)
            self.live_count += 1

    def get_row(self, row_id: int) -> tuple:
        row = self.rows[row_id]
        if row is None:
            raise EngineError(f"row {row_id} is deleted")
        return row

    def scan(self, snapshot=None) -> Iterator[Tuple[int, tuple]]:
        """Live rows; with a snapshot, only the versions it may see."""
        if snapshot is not None and self.mvcc_versions:
            xmin, xmax = self._xmin, self._xmax
            row_visible = snapshot.row_visible
            for row_id, row in enumerate(self.rows):
                if row is not None and row_visible(xmin[row_id], xmax[row_id]):
                    yield row_id, row
            return
        for row_id, row in enumerate(self.rows):
            if row is not None:
                yield row_id, row

    def row_visible(self, row_id: int, snapshot) -> bool:
        """Visibility of one slot under ``snapshot`` (no-version fast path
        answers True — the slot is frozen)."""
        if not self.mvcc_versions:
            return True
        return snapshot.row_visible(self._xmin[row_id], self._xmax[row_id])

    def envelopes(self, column_name: str) -> List[Optional[Envelope]]:
        """Envelope array for one geometry column, parallel to ``rows``."""
        position = self.column_index(column_name)
        try:
            return self._envelopes[position]
        except KeyError:
            raise SqlPlanError(
                f"column {column_name!r} of table {self.name!r} "
                f"is not a GEOMETRY column"
            )

    def analyze(self) -> None:
        """Rebuild exact statistics + envelope histograms (the ANALYZE path)."""
        self.stats.rebuild(
            {
                self.columns[position].name: self._envelopes[position]
                for position in self._geom_positions
            }
        )

    def page_of(self, row_id: int) -> int:
        return row_id // self.ROWS_PER_PAGE

    @property
    def page_count(self) -> int:
        return (len(self.rows) + self.ROWS_PER_PAGE - 1) // self.ROWS_PER_PAGE

    def __len__(self) -> int:
        return self.live_count
