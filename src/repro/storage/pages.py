"""Slotted heap pages, the disk manager, and the LRU buffer pool.

The durable mirror of the in-memory heap (see ``docs/DURABILITY.md``).
Rows live in fixed-size slotted pages inside one page file per database
directory; a :class:`DiskManager` owns the file, a :class:`BufferManager`
caches frames with LRU eviction / pin counts / dirty tracking, and a
:class:`HeapStore` maps ``(table, row_id)`` to a page slot so the
write-ahead log can address rows logically.

Page layout (``PAGE_SIZE`` bytes)::

    +--------------------+------------------------+-----+-------------+
    | header (12 bytes)  | record payloads  --->  | ... | <--- slots  |
    +--------------------+------------------------+-----+-------------+
    header = <u64 page LSN> <u16 slot count> <u16 free-space offset>
    slot   = <u16 payload offset> <u16 payload length>, offset 0 = dead

Payloads are self-describing UTF-8 JSON (``{"t": table, "r": rid,
"v": [values]}`` with geometries as WKB hex), so crash recovery can
rebuild every table by scanning the page file without consulting any
other structure. The page LSN enforces the WAL-before-data rule: the
buffer pool refuses to write a dirty page until the log is durable up to
that LSN (the ``wal_barrier`` callback).

Faults and waits follow the engine-wide hot-path contract: the
``page.write`` fault site and the ``IO:PageRead`` / ``IO:PageWrite``
wait events each cost one attribute read when disarmed/disabled.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import DumpCorruptionError, EngineError
from repro.faults import FAULTS
from repro.obs.waits import IO_PAGE_READ, IO_PAGE_WRITE, WAITS

__all__ = ["PAGE_SIZE", "Page", "DiskManager", "BufferManager", "HeapStore"]

#: default page size, bytes
PAGE_SIZE = 4096

_HEADER = struct.Struct("<QHH")  # page LSN, slot count, free-space offset
_SLOT = struct.Struct("<HH")  # payload offset, payload length


class Page:
    """One slotted page over a mutable bytearray."""

    __slots__ = ("page_id", "data", "page_size")

    def __init__(self, page_id: int, data: Optional[bytes] = None,
                 page_size: int = PAGE_SIZE):
        self.page_id = page_id
        self.page_size = page_size
        if data is None:
            self.data = bytearray(page_size)
            self._write_header(0, 0, _HEADER.size)
        else:
            if len(data) != page_size:
                raise EngineError(
                    f"page {page_id}: expected {page_size} bytes, "
                    f"got {len(data)}"
                )
            self.data = bytearray(data)
            lsn, count, free_end = self._read_header()
            if lsn == 0 and count == 0 and free_end == 0:
                # allocated but never written back (e.g. a crash before
                # the first flush): an empty page, not a corrupt one
                self._write_header(0, 0, _HEADER.size)
            elif free_end < _HEADER.size or free_end > page_size:
                raise DumpCorruptionError(
                    f"page {page_id}: corrupt header "
                    f"(free_end={free_end})"
                )

    # -- header ------------------------------------------------------------

    def _read_header(self) -> Tuple[int, int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _write_header(self, lsn: int, count: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, lsn, count, free_end)

    @property
    def lsn(self) -> int:
        return self._read_header()[0]

    @lsn.setter
    def lsn(self, value: int) -> None:
        _lsn, count, free_end = self._read_header()
        self._write_header(max(_lsn, value), count, free_end)

    @property
    def slot_count(self) -> int:
        return self._read_header()[1]

    @property
    def free_space(self) -> int:
        """Bytes available for one more payload *plus* its slot entry."""
        _lsn, count, free_end = self._read_header()
        return (self.page_size - count * _SLOT.size) - free_end

    # -- slots -------------------------------------------------------------

    def _slot_at(self, slot: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(
            self.data, self.page_size - (slot + 1) * _SLOT.size
        )

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self.data, self.page_size - (slot + 1) * _SLOT.size,
            offset, length,
        )

    def insert(self, payload: bytes) -> Optional[int]:
        """Store one payload; returns its slot, or ``None`` if it cannot
        fit (the caller moves on to a fresher page)."""
        lsn, count, free_end = self._read_header()
        if len(payload) + _SLOT.size > (
            (self.page_size - count * _SLOT.size) - free_end
        ):
            return None
        self.data[free_end:free_end + len(payload)] = payload
        self._set_slot(count, free_end, len(payload))
        self._write_header(lsn, count + 1, free_end + len(payload))
        return count

    def delete(self, slot: int) -> None:
        """Mark a slot dead (space is not compacted)."""
        self._set_slot(slot, 0, 0)

    def read(self, slot: int) -> Optional[bytes]:
        offset, length = self._slot_at(slot)
        if offset == 0:
            return None
        return bytes(self.data[offset:offset + length])

    def replace(self, slot: int, payload: bytes) -> bool:
        """Rewrite a slot's payload in place when it fits in the old
        extent, else into fresh free space; returns False when neither
        fits (the caller relocates the record to another page)."""
        offset, length = self._slot_at(slot)
        if offset and len(payload) <= length:
            self.data[offset:offset + len(payload)] = payload
            self._set_slot(slot, offset, len(payload))
            return True
        lsn, count, free_end = self._read_header()
        if len(payload) > (self.page_size - count * _SLOT.size) - free_end:
            return False
        self.data[free_end:free_end + len(payload)] = payload
        self._set_slot(slot, free_end, len(payload))
        self._write_header(lsn, count, free_end + len(payload))
        return True

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Live ``(slot, payload)`` pairs."""
        for slot in range(self.slot_count):
            payload = self.read(slot)
            if payload is not None:
                yield slot, payload


class DiskManager:
    """Page-granular file I/O with read/write counters."""

    def __init__(self, path: str, page_size: int = PAGE_SIZE):
        self.path = path
        self.page_size = page_size
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            # a torn final page write: drop the partial page (its rows,
            # if any were committed, are replayed from the WAL)
            size -= size % page_size
            self._file.truncate(size)
        self._page_count = size // page_size
        self._lock = threading.Lock()
        self.pages_read = 0
        self.pages_written = 0
        self.syncs = 0

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate(self) -> int:
        """Extend the file by one zeroed page; returns its id."""
        with self._lock:
            page_id = self._page_count
            self._page_count += 1
            self._file.seek(page_id * self.page_size)
            self._file.write(bytes(self.page_size))
            return page_id

    def read_page(self, page_id: int) -> bytes:
        if WAITS.enabled:
            import time as _time

            started = _time.perf_counter()
            try:
                return self._read(page_id)
            finally:
                WAITS.record(IO_PAGE_READ, _time.perf_counter() - started,
                             detail=page_id)
        return self._read(page_id)

    def _read(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._page_count:
            raise EngineError(f"page {page_id} out of range")
        with self._lock:
            self._file.seek(page_id * self.page_size)
            data = self._file.read(self.page_size)
            self.pages_read += 1
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        if FAULTS.active:
            # fires before any byte reaches the file: a fired fault
            # leaves the on-disk page exactly as it was
            FAULTS.hit("page.write")
        if WAITS.enabled:
            import time as _time

            started = _time.perf_counter()
            try:
                self._write(page_id, data)
            finally:
                WAITS.record(IO_PAGE_WRITE, _time.perf_counter() - started,
                             detail=page_id)
            return
        self._write(page_id, data)

    def _write(self, page_id: int, data: bytes) -> None:
        with self._lock:
            self._file.seek(page_id * self.page_size)
            self._file.write(data)
            self.pages_written += 1

    def sync(self) -> None:
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.syncs += 1

    def close(self) -> None:
        self._file.close()


class _Frame:
    __slots__ = ("page", "dirty", "pins")

    def __init__(self, page: Page):
        self.page = page
        self.dirty = False
        self.pins = 0


class BufferManager:
    """A fixed-capacity LRU pool of page frames.

    ``wal_barrier(lsn)`` is invoked before any dirty page is written —
    the WAL-before-data rule: the log must be durable up to the page's
    LSN before the page may reach disk, or a crash could leave effects
    on disk that the (lost) log can neither redo nor undo.
    """

    def __init__(self, disk: DiskManager, capacity: int = 128,
                 wal_barrier: Optional[Callable[[int], None]] = None):
        if capacity < 1:
            raise EngineError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self._wal_barrier = wal_barrier
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- fetch/pin ---------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Pin a page into the pool (reading it if absent)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.hits += 1
                self._frames.move_to_end(page_id)
                frame.pins += 1
                return frame.page
            self.misses += 1
            self._make_room()
            page = Page(page_id, self.disk.read_page(page_id),
                        self.disk.page_size)
            frame = _Frame(page)
            frame.pins = 1
            self._frames[page_id] = frame
            return page

    def new_page(self) -> Page:
        """Allocate a fresh page, pinned and dirty."""
        with self._lock:
            self._make_room()
            page = Page(self.disk.allocate(), page_size=self.disk.page_size)
            frame = _Frame(page)
            frame.pins = 1
            frame.dirty = True
            self._frames[page.page_id] = frame
            return page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames[page_id]
            if frame.pins <= 0:
                raise EngineError(f"page {page_id} is not pinned")
            frame.pins -= 1
            if dirty:
                frame.dirty = True

    # -- write-back --------------------------------------------------------

    def _write_frame(self, frame: _Frame) -> None:
        if self._wal_barrier is not None:
            self._wal_barrier(frame.page.lsn)
        self.disk.write_page(frame.page.page_id, bytes(frame.page.data))
        frame.dirty = False

    def _make_room(self) -> None:
        """Evict the least-recently-used unpinned frame if at capacity."""
        if len(self._frames) < self.capacity:
            return
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                if frame.dirty:
                    self._write_frame(frame)
                del self._frames[page_id]
                self.evictions += 1
                return
        raise EngineError(
            f"buffer pool exhausted: all {self.capacity} frames pinned"
        )

    def flush_all(self) -> int:
        """Write every dirty frame; returns how many were written."""
        with self._lock:
            written = 0
            for frame in self._frames.values():
                if frame.dirty:
                    self._write_frame(frame)
                    written += 1
            return written

    @property
    def dirty_count(self) -> int:
        with self._lock:
            return sum(1 for f in self._frames.values() if f.dirty)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0


class HeapStore:
    """Logical row storage over the buffer pool.

    Addresses rows as ``(table, row_id)`` — the same ids the in-memory
    heap and the WAL use — and keeps the page location map. Every
    mutator is *idempotent* (insert replaces, delete of an absent row is
    a no-op), which is what lets ARIES-lite recovery replay the log
    without tracking which effects already reached disk.
    """

    def __init__(self, buffer: BufferManager):
        self.buffer = buffer
        #: (table, rid) -> (page_id, slot)
        self._loc: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._by_table: Dict[str, Set[int]] = {}
        self._fill_page: Optional[int] = None
        self._lock = threading.RLock()

    @staticmethod
    def encode_payload(table: str, rid: int, values: list) -> bytes:
        return json.dumps({"t": table, "r": rid, "v": values}).encode("utf-8")

    # -- mutators (values arrive JSON-encoded, see records.encode_value) ---

    def insert(self, table: str, rid: int, values: list, lsn: int) -> None:
        with self._lock:
            key = (table, rid)
            payload = self.encode_payload(table, rid, values)
            if key in self._loc:
                self._replace(key, payload, lsn)
                return
            page = None
            if self._fill_page is not None:
                page = self.buffer.fetch(self._fill_page)
                slot = page.insert(payload)
                if slot is None:
                    self.buffer.unpin(page.page_id)
                    page = None
            if page is None:
                page = self.buffer.new_page()
                self._fill_page = page.page_id
                slot = page.insert(payload)
                if slot is None:
                    self.buffer.unpin(page.page_id)
                    raise EngineError(
                        f"row {table}:{rid} larger than a page "
                        f"({len(payload)} bytes)"
                    )
            page.lsn = lsn
            self.buffer.unpin(page.page_id, dirty=True)
            self._loc[key] = (page.page_id, slot)
            self._by_table.setdefault(table, set()).add(rid)

    def _replace(self, key: Tuple[str, int], payload: bytes,
                 lsn: int) -> None:
        page_id, slot = self._loc[key]
        page = self.buffer.fetch(page_id)
        try:
            if page.replace(slot, payload):
                page.lsn = lsn
                return
            # no room in place: relocate to a fresh page
            page.delete(slot)
            page.lsn = lsn
        finally:
            self.buffer.unpin(page_id, dirty=True)
        del self._loc[key]
        self._by_table[key[0]].discard(key[1])
        self.insert(key[0], key[1], json.loads(payload)["v"], lsn)

    def update(self, table: str, rid: int, values: list, lsn: int) -> None:
        """Idempotent value rewrite (inserts when the row is absent)."""
        self.insert(table, rid, values, lsn)

    def delete(self, table: str, rid: int, lsn: int) -> None:
        with self._lock:
            loc = self._loc.pop((table, rid), None)
            if loc is None:
                return
            page = self.buffer.fetch(loc[0])
            page.delete(loc[1])
            page.lsn = lsn
            self.buffer.unpin(loc[0], dirty=True)
            self._by_table[table].discard(rid)

    def drop_table(self, table: str, lsn: int) -> None:
        with self._lock:
            for rid in sorted(self._by_table.get(table, ())):
                self.delete(table, rid, lsn)
            self._by_table.pop(table, None)

    # -- readers -----------------------------------------------------------

    def has(self, table: str, rid: int) -> bool:
        with self._lock:
            return (table, rid) in self._loc

    def row_count(self, table: Optional[str] = None) -> int:
        with self._lock:
            if table is not None:
                return len(self._by_table.get(table, ()))
            return len(self._loc)

    def read(self, table: str, rid: int) -> Optional[list]:
        with self._lock:
            loc = self._loc.get((table, rid))
            if loc is None:
                return None
            page = self.buffer.fetch(loc[0])
            try:
                payload = page.read(loc[1])
            finally:
                self.buffer.unpin(loc[0])
            return json.loads(payload.decode("utf-8"))["v"]

    def rows(self) -> Iterator[Tuple[str, int, list]]:
        """Every stored ``(table, rid, encoded values)``, via the map."""
        with self._lock:
            keys = sorted(self._loc)
        for table, rid in keys:
            values = self.read(table, rid)
            if values is not None:
                yield table, rid, values

    # -- recovery ----------------------------------------------------------

    def adopt_from_disk(self) -> Dict[str, Dict[int, list]]:
        """Rebuild the location map by scanning every page on disk.

        Returns ``{table: {rid: encoded values}}`` — the raw page image
        recovery starts from before replaying the WAL. Duplicate rids
        (possible only if a crash interrupted a relocation) keep the
        later page's copy.
        """
        with self._lock:
            self._loc.clear()
            self._by_table.clear()
            image: Dict[str, Dict[int, list]] = {}
            for page_id in range(self.buffer.disk.page_count):
                page = self.buffer.fetch(page_id)
                try:
                    for slot, payload in page.records():
                        try:
                            record = json.loads(payload.decode("utf-8"))
                            table, rid = record["t"], record["r"]
                            values = record["v"]
                        except (ValueError, KeyError, UnicodeDecodeError):
                            continue  # torn slot: the WAL replay re-adds it
                        stale = self._loc.get((table, rid))
                        if stale is not None:
                            old = self.buffer.fetch(stale[0])
                            old.delete(stale[1])
                            self.buffer.unpin(stale[0], dirty=True)
                        self._loc[(table, rid)] = (page_id, slot)
                        self._by_table.setdefault(table, set()).add(rid)
                        image.setdefault(table, {})[rid] = values
                finally:
                    self.buffer.unpin(page_id)
            return image
