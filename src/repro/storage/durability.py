"""The durability layer: WAL + heap pages wired under the MVCC engine.

The in-memory :class:`~repro.storage.table.Table` heap stays the
execution data structure; this module maintains a *durable mirror* of
the committed-plus-in-flight state in slotted pages
(:mod:`repro.storage.pages`) guarded by a write-ahead log
(:mod:`repro.storage.wal`), the way in-memory engines persist. The
engine calls one hook per logical row operation:

* ``log_insert`` / ``log_delete`` / ``log_update`` — append a WAL record
  (with undo information: old values ride in delete/update records),
  then apply the change to the heap pages (steal policy: uncommitted
  rows do reach disk; recovery undoes them);
* ``log_commit`` — append COMMIT and group-fsync: the transaction is
  durable exactly when this returns;
* ``log_abort`` — append ABORT and reverse the transaction's page
  effects from the in-memory undo log (never raises on the cleanup
  path);
* ``log_ddl`` — schema changes, logged and fsynced immediately;
* ``checkpoint`` — flush dirty pages, snapshot the catalog atomically,
  and rewrite the WAL keeping only records of still-active transactions
  (their undo information must survive).

:func:`recover` is the ARIES-lite restart path: scan the page file for
the raw row image, then **analysis** (who committed?) → **redo** (replay
every logged op in LSN order — idempotent, so effects already on disk
are harmless) → **undo** (reverse losers' ops newest-first, guarded by a
last-writer check so a recycled row id is never clobbered) → rebuild the
in-memory heap, catalog and spatial indexes, and checkpoint.

Crash simulation: when an armed WAL/page fault raises
:class:`~repro.errors.SimulatedCrashError`, the layer *freezes first* —
WAL truncated to its durable offset, every later durable write refused —
before the error propagates, so the engine's error cleanup cannot touch
the "dead" disk. See ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.errors import DumpCorruptionError, EngineError, SimulatedCrashError
from repro.storage.pages import (
    PAGE_SIZE,
    BufferManager,
    DiskManager,
    HeapStore,
)
from repro.storage.records import (
    decode_value,
    encode_line,
    encode_value,
    parse_line,
)
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engines.database import Database
    from repro.txn.manager import Transaction

__all__ = [
    "CheckpointReport",
    "DurabilityManager",
    "RecoveryReport",
    "recover",
]

PAGES_FILE = "pages.db"
WAL_FILE = "wal.log"
CATALOG_FILE = "catalog.json"

_ROW_OPS = ("insert", "delete", "update")


@dataclass
class CheckpointReport:
    """What one checkpoint did."""

    lsn: int
    pages_flushed: int
    wal_records_kept: int
    wal_bytes: int

    def describe(self) -> str:
        return (
            f"checkpoint lsn={self.lsn}: flushed {self.pages_flushed} "
            f"pages, kept {self.wal_records_kept} WAL records "
            f"({self.wal_bytes} bytes)"
        )


@dataclass
class RecoveryReport:
    """What :func:`recover` found and rebuilt."""

    profile: str = "greenwood"
    tables: Dict[str, int] = field(default_factory=dict)
    indexes: List[str] = field(default_factory=list)
    wal_records: int = 0
    winners: int = 0
    losers: int = 0
    redone: int = 0
    undone: int = 0
    checkpoint_lsn: int = 0
    next_txid: int = 1
    analysis_seconds: float = 0.0
    redo_seconds: float = 0.0
    undo_seconds: float = 0.0
    rebuild_seconds: float = 0.0
    total_seconds: float = 0.0

    def describe(self) -> str:
        rows = sum(self.tables.values())
        return (
            f"recovered {len(self.tables)} tables, {rows} rows, "
            f"{len(self.indexes)} indexes in {self.total_seconds:.3f}s "
            f"(scanned {self.wal_records} WAL records: "
            f"{self.winners} committed, {self.losers} undone losers; "
            f"redo {self.redone} ops, undo {self.undone} ops)"
        )


class DurabilityManager:
    """Owns one database directory's page file, WAL, and buffer pool."""

    def __init__(
        self,
        directory: str,
        page_size: int = PAGE_SIZE,
        buffer_pages: int = 128,
        profile: str = "greenwood",
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.wal = WriteAheadLog(
            os.path.join(directory, WAL_FILE), profile=profile
        )
        self.disk = DiskManager(
            os.path.join(directory, PAGES_FILE), page_size=page_size
        )
        self.buffer = BufferManager(
            self.disk, capacity=buffer_pages,
            wal_barrier=self.wal.sync_for,
        )
        self.heap = HeapStore(self.buffer)
        self.catalog_path = os.path.join(directory, CATALOG_FILE)
        self._db: Optional["Database"] = None
        self.crashed = False
        self.checkpoints_total = 0
        self.last_checkpoint_lsn = 0
        #: logged row-op counts per open transaction: read-only commits
        #: skip the COMMIT record (and its fsync) entirely
        self._txn_ops: Dict[int, int] = {}

    def bind(self, db: "Database") -> None:
        self._db = db

    # -- crash simulation --------------------------------------------------

    def crash(self) -> None:
        """Freeze the layer as if the process died this instant."""
        if self.crashed:
            return
        self.crashed = True
        self.wal.freeze()

    def _check_live(self) -> None:
        if self.crashed:
            raise SimulatedCrashError(
                "durability layer is frozen (simulated crash); "
                "recover the database directory to continue"
            )

    # -- row-operation hooks -----------------------------------------------

    def log_insert(self, txid: int, table: str, rid: int,
                   values: tuple) -> None:
        self._check_live()
        try:
            encoded = [encode_value(v) for v in values]
            lsn = self.wal.append({
                "type": "wal", "op": "insert", "txid": txid,
                "table": table, "rid": rid, "values": encoded,
            })
            self.heap.insert(table, rid, encoded, lsn)
            self._txn_ops[txid] = self._txn_ops.get(txid, 0) + 1
        except SimulatedCrashError:
            self.crash()
            raise

    def log_delete(self, txid: int, table: str, rid: int,
                   old_values: tuple) -> None:
        self._check_live()
        try:
            lsn = self.wal.append({
                "type": "wal", "op": "delete", "txid": txid,
                "table": table, "rid": rid,
                "old": [encode_value(v) for v in old_values],
            })
            self.heap.delete(table, rid, lsn)
            self._txn_ops[txid] = self._txn_ops.get(txid, 0) + 1
        except SimulatedCrashError:
            self.crash()
            raise

    def log_update(self, txid: int, table: str, rid: int,
                   values: tuple, old_values: tuple) -> None:
        self._check_live()
        try:
            encoded = [encode_value(v) for v in values]
            lsn = self.wal.append({
                "type": "wal", "op": "update", "txid": txid,
                "table": table, "rid": rid, "values": encoded,
                "old": [encode_value(v) for v in old_values],
            })
            self.heap.update(table, rid, encoded, lsn)
            self._txn_ops[txid] = self._txn_ops.get(txid, 0) + 1
        except SimulatedCrashError:
            self.crash()
            raise

    # -- transaction boundaries --------------------------------------------

    def log_commit(self, txid: int) -> None:
        """Append COMMIT and fsync; the transaction is durable on return."""
        self._check_live()
        if not self._txn_ops.pop(txid, 0):
            return  # read-only transaction: nothing to make durable
        try:
            lsn = self.wal.append({"type": "wal", "op": "commit",
                                   "txid": txid})
            self.wal.sync_for(lsn)
        except SimulatedCrashError:
            self.crash()
            raise

    def log_abort(self, txn: "Transaction") -> None:
        """Append ABORT and reverse the transaction's page effects.

        Runs on the error-cleanup path, so it must not raise: after a
        simulated crash the disk is frozen and the reversal is skipped —
        recovery will undo the loser from the WAL instead.
        """
        ops = self._txn_ops.pop(txn.txid, 0)
        if self.crashed or not ops:
            return
        try:
            lsn = self.wal.append({"type": "wal", "op": "abort",
                                   "txid": txn.txid})
            # newest-first, mirroring TxnManager.rollback; the in-memory
            # rows still hold the values this reversal needs (the hook
            # runs before the memory-side rollback)
            for op, table, rid in reversed(txn.undo):
                if op == "insert":
                    self.heap.delete(table.name, rid, lsn)
                else:
                    row = table.rows[rid]
                    if row is not None:
                        self.heap.insert(
                            table.name, rid,
                            [encode_value(v) for v in row], lsn,
                        )
        except SimulatedCrashError:
            self.crash()

    # -- DDL ---------------------------------------------------------------

    def log_ddl(self, ddl: str, **fields: Any) -> None:
        """Log a schema change and fsync immediately (DDL is rare and
        auto-commits in this engine)."""
        self._check_live()
        try:
            record = {"type": "wal", "op": "ddl", "ddl": ddl, "txid": 0}
            record.update(fields)
            lsn = self.wal.append(record)
            if ddl == "drop_table":
                self.heap.drop_table(fields["name"], lsn)
            self.wal.sync_for(lsn)
        except SimulatedCrashError:
            self.crash()
            raise

    # -- checkpoint --------------------------------------------------------

    def checkpoint(self) -> CheckpointReport:
        """Flush dirty pages, snapshot the catalog, truncate the WAL.

        Caller must hold the database's exclusive statement latch (no
        statement is mid-flight). Records of still-active transactions
        are carried into the rewritten log — their undo information must
        survive until they resolve; redo idempotency makes the carried
        copies harmless if they later commit.
        """
        self._check_live()
        if self._db is None:
            raise EngineError("durability manager is not bound to a database")
        try:
            self.wal.sync()
            flushed = self.buffer.flush_all()
            self.disk.sync()
            active = set(self._db.txn.active_txids())
            keep = [
                r for r in self.wal.records()
                if r.get("txid") in active and r.get("op") in _ROW_OPS
            ]
            ckpt = {
                "type": "wal", "op": "checkpoint", "txid": 0,
                "active": sorted(active),
                "next_txid": self._db.txn.next_txid,
            }
            lsn = self.wal.append(ckpt)
            self._write_snapshot(lsn)
            self.wal.rewrite(keep + [ckpt])
            self.last_checkpoint_lsn = lsn
            self.checkpoints_total += 1
            return CheckpointReport(
                lsn, flushed, len(keep), self.wal.size_bytes()
            )
        except SimulatedCrashError:
            self.crash()
            raise

    def _write_snapshot(self, checkpoint_lsn: int) -> None:
        """Atomic CRC'd catalog snapshot (temp + fsync + rename)."""
        db = self._db
        record = {
            "type": "catalog",
            "profile": db.profile.name,
            "next_txid": db.txn.next_txid,
            "checkpoint_lsn": checkpoint_lsn,
            "tables": [
                {
                    "name": t.name,
                    "columns": [[c.name, c.type.value] for c in t.columns],
                }
                for t in db.catalog.tables()
            ],
            "indexes": [
                {
                    "name": e.name, "table": e.table_name,
                    "column": e.column_name, "kind": e.index.kind,
                }
                for e in db.catalog.indexes()
            ],
        }
        tmp_path = f"{self.catalog_path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as stream:
                stream.write(encode_line(record))
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, self.catalog_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def load_snapshot(self) -> Optional[dict]:
        """The last catalog snapshot, or None (corrupt snapshots are
        treated as absent — they are written atomically, so this only
        happens to a hand-damaged file)."""
        try:
            with open(self.catalog_path, "r", encoding="utf-8") as stream:
                line = stream.readline().strip()
            return parse_line(line) if line else None
        except (OSError, DumpCorruptionError):
            return None

    # -- attach-time mirroring ---------------------------------------------

    def mirror_existing_rows(self) -> int:
        """Write every current in-memory row to the heap pages (used when
        storage is attached to a database that already holds data, e.g.
        a loaded benchmark dataset); returns the row count."""
        self._check_live()
        if self._db is None:
            raise EngineError("durability manager is not bound to a database")
        count = 0
        for table in self._db.catalog.tables():
            for rid, row in table.scan():
                self.heap.insert(
                    table.name, rid, [encode_value(v) for v in row], 0
                )
                count += 1
        return count

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "wal_records": self.wal.records_total,
            "wal_bytes": self.wal.size_bytes(),
            "wal_syncs": self.wal.syncs_total,
            "durable_lsn": self.wal.durable_lsn,
            "pages_on_disk": self.disk.page_count,
            "pages_read": self.disk.pages_read,
            "pages_written": self.disk.pages_written,
            "buffer_capacity": self.buffer.capacity,
            "buffer_hits": self.buffer.hits,
            "buffer_misses": self.buffer.misses,
            "buffer_evictions": self.buffer.evictions,
            "buffer_hit_ratio": self.buffer.hit_ratio,
            "buffer_dirty": self.buffer.dirty_count,
            "checkpoints": self.checkpoints_total,
            "checkpoint_lsn": self.last_checkpoint_lsn,
            "crashed": self.crashed,
        }

    def close(self) -> None:
        self.wal.close()
        self.disk.close()


# -- recovery ---------------------------------------------------------------


def recover(
    directory: str,
    profile: Optional[str] = None,
    page_size: int = PAGE_SIZE,
    buffer_pages: int = 128,
) -> Tuple["Database", RecoveryReport]:
    """ARIES-lite restart: rebuild a :class:`Database` from a directory.

    Analysis → redo → undo over the durable WAL, starting from the raw
    page image; then the in-memory heap, catalog and spatial indexes are
    rebuilt, the recovered database gets the durability manager attached,
    and a fresh checkpoint truncates the replayed log.
    """
    from repro.engines.database import Database

    total_started = time.perf_counter()
    report = RecoveryReport()
    mgr = DurabilityManager(
        directory, page_size=page_size, buffer_pages=buffer_pages,
        profile=profile or "greenwood",
    )
    snapshot = mgr.load_snapshot() or {}
    report.profile = profile or snapshot.get("profile", mgr.wal.profile)
    report.checkpoint_lsn = int(snapshot.get("checkpoint_lsn", 0))

    # schema baseline from the snapshot; WAL DDL redo layers on top
    tables: Dict[str, List[List[str]]] = {
        t["name"]: t["columns"] for t in snapshot.get("tables", ())
    }
    indexes: Dict[str, dict] = {
        e["name"]: e for e in snapshot.get("indexes", ())
    }

    mgr.heap.adopt_from_disk()
    records = mgr.wal.records()
    report.wal_records = len(records)

    # -- analysis: last disposition wins per transaction --------------------
    started = time.perf_counter()
    disposition: Dict[int, str] = {}
    max_txid = int(snapshot.get("next_txid", 1)) - 1
    for record in records:
        txid = record.get("txid", 0)
        max_txid = max(max_txid, txid)
        op = record.get("op")
        if op in _ROW_OPS:
            disposition.setdefault(txid, "in-flight")
        elif op == "commit":
            disposition[txid] = "committed"
        elif op == "abort":
            disposition[txid] = "aborted"
        elif op == "checkpoint":
            max_txid = max(max_txid, int(record.get("next_txid", 1)) - 1)
    losers: Set[int] = {
        txid for txid, state in disposition.items() if state != "committed"
    }
    report.winners = len(disposition) - len(losers)
    report.losers = len(losers)
    report.analysis_seconds = time.perf_counter() - started

    # -- redo: replay everything in LSN order (idempotent) ------------------
    started = time.perf_counter()
    last_writer: Dict[Tuple[str, int], int] = {}
    for record in records:
        op = record.get("op")
        lsn = record.get("lsn", 0)
        if op == "ddl":
            ddl = record.get("ddl")
            if ddl == "create_table":
                tables.setdefault(record["name"], record["columns"])
            elif ddl == "drop_table":
                tables.pop(record["name"], None)
                mgr.heap.drop_table(record["name"], lsn)
                for name in [
                    n for n, e in indexes.items()
                    if e["table"] == record["name"]
                ]:
                    del indexes[name]
            elif ddl == "create_index":
                indexes[record["name"]] = {
                    "name": record["name"], "table": record["table"],
                    "column": record["column"], "kind": record["kind"],
                }
            elif ddl == "drop_index":
                indexes.pop(record["name"], None)
            report.redone += 1
            continue
        if op not in _ROW_OPS:
            continue
        key = (record["table"], record["rid"])
        if op == "delete":
            mgr.heap.delete(key[0], key[1], lsn)
        else:
            mgr.heap.insert(key[0], key[1], record["values"], lsn)
        last_writer[key] = record.get("txid", 0)
        report.redone += 1
    report.redo_seconds = time.perf_counter() - started

    # -- undo: reverse losers newest-first ----------------------------------
    started = time.perf_counter()
    for record in reversed(records):
        op = record.get("op")
        txid = record.get("txid", 0)
        if op not in _ROW_OPS or txid not in losers:
            continue
        key = (record["table"], record["rid"])
        if last_writer.get(key) != txid:
            continue  # a later transaction recycled this row id
        lsn = record.get("lsn", 0)
        if op == "insert":
            mgr.heap.delete(key[0], key[1], lsn)
        else:
            mgr.heap.insert(key[0], key[1], record["old"], lsn)
        report.undone += 1
    report.undo_seconds = time.perf_counter() - started

    # -- rebuild the in-memory engine ---------------------------------------
    started = time.perf_counter()
    db = Database(report.profile)
    for name, columns in tables.items():
        column_sql = ", ".join(
            f"{col} {type_name}" for col, type_name in columns
        )
        db.execute(f"CREATE TABLE {name} ({column_sql})")
    slots: Dict[str, Dict[int, tuple]] = {name: {} for name in tables}
    for table_name, rid, values in mgr.heap.rows():
        if table_name not in slots:
            continue  # rows of a table dropped after its last page write
        slots[table_name][rid] = tuple(decode_value(v) for v in values)
    for name, rows in slots.items():
        db.catalog.table(name).restore_slots(rows)
        report.tables[name] = len(rows)
    db.txn.set_next_txid(max_txid + 1)
    report.next_txid = max_txid + 1
    for entry in indexes.values():
        db.execute(
            f"CREATE SPATIAL INDEX {entry['name']} ON {entry['table']} "
            f"({entry['column']}) USING {entry['kind']}"
        )
        report.indexes.append(entry["name"])
    db.attach_durability(mgr)
    mgr.checkpoint()
    report.rebuild_seconds = time.perf_counter() - started
    report.total_seconds = time.perf_counter() - total_started
    db.recovery_report = report
    return db, report
