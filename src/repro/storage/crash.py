"""Kill-at-crash-point harness and the serial-replay recovery oracle.

Crash testing needs two halves: a way to *die* at an exact storage
instruction, and a way to *know* what the database must look like
afterwards. This module provides both.

**The kill.** :func:`kill_at` arms one WAL/page fault site
(:data:`CRASH_SITES`) with :class:`~repro.errors.SimulatedCrashError`.
When the site fires, the :class:`~repro.storage.durability
.DurabilityManager` freezes the on-disk state *first* — the WAL is
truncated to its last fsynced byte, and every later durable write
raises — and only then lets the error propagate. From that instant the
directory looks exactly as it would after ``kill -9``: whatever was
durable stays, whatever was buffered is gone, and no engine cleanup
path can touch the disk again.

**The oracle.** Two strengths, for two kinds of test:

- :func:`run_crash_workload` drives N concurrent clients, each
  committing single-row transactions tagged with a globally unique
  ``gid``. Group commit makes the disposition of every transaction
  deterministic: COMMIT returned ⇔ the commit record was fsynced ⇔ the
  row survives recovery. :func:`verify_recovery` therefore asserts set
  *equality* — recovered gids == committed gids — plus heap/index
  agreement, not just the weaker committed ⊆ recovered ⊆ attempted.
- :class:`SerialReplayOracle` shadows a single-session workload
  statement-for-statement on a plain in-memory database, applying a
  transaction's statements only when its COMMIT returned. After
  recovery, :meth:`SerialReplayOracle.diff` compares full table
  contents value-by-value (geometries via their WKB form). The
  hypothesis property test drives this with randomly chosen crash
  points.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.dbapi import connect
from repro.engines import Database
from repro.errors import ReproError, SimulatedCrashError
from repro.faults import FAULTS
from repro.storage.records import encode_value

__all__ = [
    "CRASH_SITES",
    "CrashOutcome",
    "SerialReplayOracle",
    "kill_at",
    "run_crash_workload",
    "verify_recovery",
]

#: the durable-path fault sites a crash can be injected at
CRASH_SITES: Tuple[str, ...] = ("wal.append", "wal.fsync", "page.write")


@contextmanager
def kill_at(site: str, on_call: int = 1) -> Iterator[None]:
    """Arm ``site`` to raise :class:`SimulatedCrashError` on its Nth hit.

    The durability layer reacts to that error class by freezing the
    on-disk state before re-raising, so inside this context the Nth
    visit to the site is a process kill as far as the directory is
    concerned.
    """
    FAULTS.arm(site, on_call=on_call, max_fires=1,
               error=SimulatedCrashError)
    try:
        yield
    finally:
        FAULTS.disarm_all()


@dataclass
class CrashOutcome:
    """What the clients managed to do before the lights went out."""

    site: str
    profile: str
    attempted: Set[int] = field(default_factory=set)
    committed: Set[int] = field(default_factory=set)
    fired: bool = False          # did the armed site actually fire?
    forced: bool = False         # deadline hit: crash forced directly
    wall_seconds: float = 0.0
    checkpoints: int = 0

    @property
    def lost_if_leaked(self) -> Set[int]:
        """gids that must be ABSENT after recovery."""
        return self.attempted - self.committed


def run_crash_workload(
    directory: str,
    *,
    profile: str = "greenwood",
    clients: int = 2,
    site: str = "wal.append",
    on_call: int = 50,
    deadline: float = 10.0,
    checkpoint_interval: float = 0.0,
    seed_rows: int = 25,
    pace: float = 0.0005,
) -> CrashOutcome:
    """Run committing clients against a fresh durable database in
    ``directory`` until the armed crash fires.

    Each client loops single-row transactions (``BEGIN`` / ``INSERT
    gid`` / ``COMMIT``) with a unique gid per attempt, pausing ``pace``
    seconds between transactions so a background checkpointer (run at
    ``checkpoint_interval`` when nonzero) can win the exclusive latch
    instead of starving behind the saturated clients. When any
    client observes the simulated crash, every client stops. If the
    site has not fired by ``deadline`` (it can be unreachable — e.g.
    ``page.write`` with no checkpointer), the crash is forced directly
    so the harness still hands back a killed directory.
    """
    if site not in CRASH_SITES:
        raise ValueError(
            f"site {site!r} is not a durable crash site {CRASH_SITES}"
        )
    db = Database(profile)
    db.execute("CREATE TABLE ops (gid INTEGER, g GEOMETRY)")
    db.execute("CREATE SPATIAL INDEX ops_g ON ops (g)")
    db.insert_rows(
        "ops", [(-1 - i, f"POINT({i} {i % 5})") for i in range(seed_rows)]
    )
    db.attach_storage(directory)
    outcome = CrashOutcome(site=site, profile=profile)
    for i in range(seed_rows):
        outcome.committed.add(-1 - i)
        outcome.attempted.add(-1 - i)

    crashed = threading.Event()
    lock = threading.Lock()
    checkpoints = [0]

    def checkpointer() -> None:
        while not crashed.wait(checkpoint_interval):
            try:
                db.checkpoint()
                checkpoints[0] += 1
            except ReproError:
                return

    def client(slot: int) -> None:
        connection = connect(database=db)
        cursor = connection.cursor()
        gid = (slot + 1) * 1_000_000
        stop_at = time.perf_counter() + deadline
        try:
            while not crashed.is_set() and time.perf_counter() < stop_at:
                gid += 1
                point = f"POINT({gid % 97} {gid % 89})"
                try:
                    cursor.execute("BEGIN")
                    cursor.execute(
                        "INSERT INTO ops VALUES (?, ?)", (gid, point)
                    )
                    with lock:
                        outcome.attempted.add(gid)
                    cursor.execute("COMMIT")
                    with lock:
                        outcome.committed.add(gid)
                except ReproError:
                    # a COMMIT that raised never reached the disk
                    # (group commit: return ⇔ fsync) — roll back the
                    # in-memory residue and stop if the disk is dead
                    try:
                        connection.rollback()
                    except ReproError:
                        pass
                    if db.durability is not None and db.durability.crashed:
                        crashed.set()
                if pace:
                    time.sleep(pace)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    ckpt_thread: Optional[threading.Thread] = None
    if checkpoint_interval:
        ckpt_thread = threading.Thread(target=checkpointer, daemon=True)
    start = time.perf_counter()
    with kill_at(site, on_call=on_call):
        if ckpt_thread is not None:
            ckpt_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if not db.durability.crashed:
            # deadline elapsed without reaching the site: force the kill
            db.durability.crash()
            outcome.forced = True
        crashed.set()
        if ckpt_thread is not None:
            ckpt_thread.join()
        outcome.fired = FAULTS.fire_counts().get(site, 0) > 0
    outcome.wall_seconds = time.perf_counter() - start
    outcome.checkpoints = checkpoints[0]
    return outcome


def verify_recovery(outcome: CrashOutcome,
                    database: Database) -> List[str]:
    """Check a recovered database against the crash outcome.

    Returns a list of violation descriptions — empty means the recovery
    honoured both durability directions (committed visible, uncommitted
    absent) and the spatial index agrees with the heap.
    """
    violations: List[str] = []
    recovered = {
        row[0] for row in database.execute("SELECT gid FROM ops").rows
    }
    lost = outcome.committed - recovered
    if lost:
        violations.append(
            f"{len(lost)} committed gid(s) lost: {sorted(lost)[:5]} ..."
        )
    leaked = recovered & outcome.lost_if_leaked
    if leaked:
        violations.append(
            f"{len(leaked)} uncommitted gid(s) leaked: "
            f"{sorted(leaked)[:5]} ..."
        )
    unknown = recovered - outcome.attempted
    if unknown:
        violations.append(
            f"{len(unknown)} gid(s) recovered that were never attempted"
        )
    heap = database.execute("SELECT COUNT(*) FROM ops").scalar()
    via_index = database.execute(
        "SELECT COUNT(*) FROM ops WHERE ST_Intersects(g, "
        "ST_MakeEnvelope(-1000, -1000, 1000, 1000))"
    ).scalar()
    if heap != via_index:
        violations.append(
            f"index/heap disagreement after recovery: "
            f"heap={heap} index={via_index}"
        )
    return violations


def canonical_rows(database: Database, table: str) -> List[tuple]:
    """A database-independent, order-independent rendering of one
    table's visible rows (geometries via their WKB form)."""
    result = database.execute(f"SELECT * FROM {table}")
    return sorted(
        tuple(repr(encode_value(value)) for value in row)
        for row in result.rows
    )


class SerialReplayOracle:
    """A plain in-memory shadow of the committed history.

    DDL applies immediately (the crash workloads create schema before
    arming any fault). DML is staged per transaction and replayed onto
    the shadow only when the real COMMIT returns — exactly the serial
    history the recovered database must equal.
    """

    def __init__(self, profile: str = "greenwood") -> None:
        self.db = Database(profile)
        self._staged: List[Tuple[str, tuple]] = []
        self.tables: List[str] = []

    def ddl(self, sql: str) -> None:
        self.db.execute(sql)
        head = sql.strip().split()
        if head[:2] == ["CREATE", "TABLE"]:
            self.tables.append(head[2].strip("(").lower())

    def stage(self, sql: str, params: tuple = ()) -> None:
        self._staged.append((sql, params))

    def commit(self) -> None:
        for sql, params in self._staged:
            self.db.execute(sql, params)
        self._staged.clear()

    def abort(self) -> None:
        self._staged.clear()

    def diff(self, database: Database) -> List[str]:
        """Table-by-table content comparison; empty list means the
        recovered database equals the committed serial history."""
        problems: List[str] = []
        for table in self.tables:
            expected = canonical_rows(self.db, table)
            actual = canonical_rows(database, table)
            if expected != actual:
                missing = len([r for r in expected if r not in actual])
                extra = len([r for r in actual if r not in expected])
                problems.append(
                    f"table {table!r}: {missing} row(s) missing, "
                    f"{extra} row(s) extra vs serial replay"
                )
        return problems
