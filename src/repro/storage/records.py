"""Checksummed JSON-line records, shared by dumps and the WAL.

Both durable formats in this engine — the logical dump (v2) and the
write-ahead log — store one JSON record per line, prefixed with the
CRC32 of the payload (``"%08x <json>\n"``). This module is the single
implementation of that codec: encoding, strict parsing, and the
torn-tail scan both readers use to decide where a crashed writer's last
complete record ends. Keeping one copy means the dump's recover mode and
WAL recovery can never drift on what counts as a valid record.

Values destined for a record go through :func:`encode_value` /
:func:`decode_value`, which round-trip geometries as hex-encoded WKB and
pass everything JSON-native through untouched.
"""

from __future__ import annotations

import json
import zlib
from typing import IO, Any, Iterator, Tuple

from repro.errors import DumpCorruptionError
from repro.geometry import Geometry, wkb_dumps, wkb_loads

__all__ = [
    "decode_value",
    "encode_line",
    "encode_value",
    "parse_line",
    "scan_tail",
]


def encode_value(value: Any) -> Any:
    """JSON-safe form of one column value (geometries become WKB hex)."""
    if isinstance(value, Geometry):
        return {"__wkb__": wkb_dumps(value).hex()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and "__wkb__" in value:
        return wkb_loads(bytes.fromhex(value["__wkb__"]))
    return value


def encode_line(record: dict) -> str:
    """One checksummed record line, newline included: ``%08x <json>\\n``."""
    payload = json.dumps(record)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n"


def parse_line(line: str, line_no: int = -1) -> dict:
    """Decode and checksum-verify one record line (strict).

    Raises :class:`~repro.errors.DumpCorruptionError` on a missing or
    mismatched checksum, invalid JSON, or a payload that is not a typed
    record object.
    """
    prefix, sep, payload = line.partition(" ")
    if not sep or len(prefix) != 8:
        raise DumpCorruptionError("missing checksum prefix", line_no)
    try:
        expected = int(prefix, 16)
    except ValueError:
        raise DumpCorruptionError(f"bad checksum prefix {prefix!r}", line_no)
    actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise DumpCorruptionError(
            f"checksum mismatch (stored {expected:08x}, "
            f"computed {actual:08x})",
            line_no,
        )
    try:
        record = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise DumpCorruptionError(f"invalid JSON ({exc})", line_no)
    if not isinstance(record, dict) or "type" not in record:
        raise DumpCorruptionError("not a typed record", line_no)
    return record


def scan_tail(stream: IO[bytes]) -> Iterator[Tuple[dict, int, int]]:
    """Yield ``(record, line_no, end_offset)`` for each valid record.

    The torn-tail scan: reads checksummed lines from a *binary* stream
    positioned after any unchecksummed header, stopping silently at the
    first line that is incomplete (no trailing newline — a torn write) or
    fails validation (a bit flip or a partial line that happened to end
    in a newline). ``end_offset`` is the byte offset one past the
    record's newline, so a recovering writer can truncate the file there
    and keep appending.
    """
    line_no = 0
    offset = stream.tell()
    while True:
        raw = stream.readline()
        if not raw:
            return
        line_no += 1
        if not raw.endswith(b"\n"):
            return  # torn final write: no newline ever made it to disk
        offset += len(raw)
        text = raw.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        try:
            record = parse_line(text, line_no)
        except DumpCorruptionError:
            return
        yield record, line_no, offset
