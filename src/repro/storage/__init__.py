"""Storage layer: heap tables, schemas, the system catalog, and the
durable page/WAL substrate (docs/DURABILITY.md)."""

from repro.storage.catalog import Catalog, IndexEntry
from repro.storage.durability import (
    CheckpointReport,
    DurabilityManager,
    RecoveryReport,
    recover,
)
from repro.storage.pages import (
    PAGE_SIZE,
    BufferManager,
    DiskManager,
    HeapStore,
    Page,
)
from repro.storage.statistics import (
    ColumnStats,
    EnvelopeHistogram,
    TableStats,
    estimate_join_pairs,
)
from repro.storage.table import Column, ColumnType, Table
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferManager",
    "Catalog",
    "CheckpointReport",
    "Column",
    "ColumnStats",
    "ColumnType",
    "DiskManager",
    "DurabilityManager",
    "EnvelopeHistogram",
    "HeapStore",
    "IndexEntry",
    "PAGE_SIZE",
    "Page",
    "RecoveryReport",
    "Table",
    "TableStats",
    "WriteAheadLog",
    "estimate_join_pairs",
    "recover",
]
