"""Storage layer: heap tables, schemas, and the system catalog."""

from repro.storage.catalog import Catalog, IndexEntry
from repro.storage.statistics import (
    ColumnStats,
    EnvelopeHistogram,
    TableStats,
    estimate_join_pairs,
)
from repro.storage.table import Column, ColumnType, Table

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "ColumnType",
    "EnvelopeHistogram",
    "IndexEntry",
    "Table",
    "TableStats",
    "estimate_join_pairs",
]
