"""Storage layer: heap tables, schemas, and the system catalog."""

from repro.storage.catalog import Catalog, IndexEntry
from repro.storage.table import Column, ColumnType, Table

__all__ = ["Catalog", "Column", "ColumnType", "IndexEntry", "Table"]
