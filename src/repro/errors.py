"""Exception hierarchy shared by every subsystem in the reproduction.

The hierarchy mirrors how a real spatial DBMS separates faults: geometry
construction/parsing problems, algorithmic failures on valid input, SQL
front-end errors, and engine/driver errors (the latter two also feed the
PEP 249 hierarchy in :mod:`repro.dbapi`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GeometryError(ReproError):
    """Invalid geometry construction or an operation on unsuitable input."""


class WktParseError(GeometryError):
    """Malformed Well-Known Text."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class WkbParseError(GeometryError):
    """Malformed Well-Known Binary."""


class TopologyError(GeometryError):
    """A computational-geometry routine could not produce a valid result."""


class SqlError(ReproError):
    """Base class for SQL front-end problems."""


class SqlProgrammingError(SqlError):
    """The statement itself is wrong as written (syntax or analysis)."""


class SqlSyntaxError(SqlProgrammingError):
    """The statement failed to lex or parse."""


class SqlPlanError(SqlProgrammingError):
    """The statement parsed but cannot be planned (unknown table/column...)."""


class UnsupportedFeatureError(SqlError):
    """The engine profile does not implement the requested spatial feature.

    Mirrors the feature-matrix differences Jackpine reports between DBMSes:
    a benchmark query that uses an unsupported function fails with this
    error and is recorded as "not supported" rather than timed.
    """


class EngineError(ReproError):
    """Internal engine failure (catalog corruption, executor invariant...)."""


class GuardrailError(EngineError):
    """Base class for statements stopped by an execution guardrail.

    Guardrail trips are operational conditions, not programming errors:
    the same statement may succeed with a longer deadline or a larger
    budget. They map to PEP 249 ``OperationalError``.
    """


class QueryTimeoutError(GuardrailError):
    """The statement exceeded its wall-clock deadline."""


class QueryCancelledError(GuardrailError):
    """The statement observed a cooperative cancellation request."""


class MemoryBudgetError(GuardrailError):
    """The statement tried to buffer more rows/bytes than its budget."""


class TransientError(EngineError):
    """An operation failed in a way that is safe to retry.

    The benchmark harness retries these with exponential backoff; any
    other :class:`ReproError` is treated as permanent.
    """


class InjectedFaultError(TransientError):
    """Raised by an armed :mod:`repro.faults` failure point."""


class SerializationError(TransientError):
    """A transaction lost a write-write conflict (first-updater-wins) or
    timed out waiting for a row lock (the deadlock-detection fallback).

    Subclasses :class:`TransientError` on purpose: aborting and retrying
    the whole transaction is the standard client response under snapshot
    isolation, and the benchmark harness's retry-with-backoff path picks
    these up unchanged.
    """


class ServiceError(ReproError):
    """Base class for query service tier failures (repro.service)."""

    #: wire code carried in the typed error response
    code = "service"


class ServiceProtocolError(ServiceError):
    """A malformed frame or an unknown request operation."""

    code = "protocol"


class ServiceOverloadedError(ServiceError):
    """The server shed this request (queue full or deadline expired).

    Subclasses neither :class:`TransientError` nor any engine error on
    purpose: shedding is the *server* protecting itself, and the typed
    response tells the client to back off (``retry_after`` seconds)
    rather than hammer the retry path.
    """

    code = "overloaded"

    def __init__(self, message: str, retry_after: float = 0.1):
        super().__init__(message)
        self.retry_after = retry_after


class DumpCorruptionError(EngineError):
    """A dump or log file failed validation (bad checksum, torn record, ...)."""

    def __init__(self, message: str, line_no: int = -1):
        if line_no >= 0:
            message = f"dump line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class SimulatedCrashError(EngineError):
    """Raised by the crash harness: the process is considered killed at this
    instant.

    When an armed WAL/page fault site fires with this error class, the
    durability layer *freezes first* — the WAL is truncated back to its
    last fsynced offset and every subsequent durable write raises — so the
    engine's post-error cleanup cannot retroactively "un-crash" the disk.
    Recovery then sees exactly what a kill -9 would have left behind.

    Deliberately not a :class:`TransientError`: retrying against a crashed
    durability layer is pointless, and the workload driver must not spin.
    """
