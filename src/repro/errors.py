"""Exception hierarchy shared by every subsystem in the reproduction.

The hierarchy mirrors how a real spatial DBMS separates faults: geometry
construction/parsing problems, algorithmic failures on valid input, SQL
front-end errors, and engine/driver errors (the latter two also feed the
PEP 249 hierarchy in :mod:`repro.dbapi`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GeometryError(ReproError):
    """Invalid geometry construction or an operation on unsuitable input."""


class WktParseError(GeometryError):
    """Malformed Well-Known Text."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class WkbParseError(GeometryError):
    """Malformed Well-Known Binary."""


class TopologyError(ReproError):
    """A computational-geometry routine could not produce a valid result."""


class SqlError(ReproError):
    """Base class for SQL front-end problems."""


class SqlSyntaxError(SqlError):
    """The statement failed to lex or parse."""


class SqlPlanError(SqlError):
    """The statement parsed but cannot be planned (unknown table/column...)."""


class UnsupportedFeatureError(SqlError):
    """The engine profile does not implement the requested spatial feature.

    Mirrors the feature-matrix differences Jackpine reports between DBMSes:
    a benchmark query that uses an unsupported function fails with this
    error and is recorded as "not supported" rather than timed.
    """


class EngineError(ReproError):
    """Internal engine failure (catalog corruption, executor invariant...)."""
