"""Jackpine reproduction: a spatial database benchmark, all the way down.

This package reimplements the system described in *"Jackpine: A benchmark
to evaluate spatial database performance"* (Ray, Simion, Demke Brown,
ICDE 2011) as a self-contained pure-Python stack:

- :mod:`repro.geometry` / :mod:`repro.algorithms` — OGC simple features,
  DE-9IM, overlay, buffer, hull, distance (built from scratch);
- :mod:`repro.index` — R-tree, grid, quadtree, scan indexes;
- :mod:`repro.sql`, :mod:`repro.storage`, :mod:`repro.engines` — an
  embedded spatial SQL engine with three capability profiles standing in
  for the paper's two open-source DBMSes and one commercial DBMS;
- :mod:`repro.dbapi` — the PEP 249 portability layer (the paper's JDBC);
- :mod:`repro.datagen` — a deterministic TIGER-like dataset;
- :mod:`repro.core` — the Jackpine benchmark itself: DE-9IM and
  spatial-analysis micro suites, a loading suite, and six macro scenarios.

Quickstart::

    from repro import Jackpine, BenchmarkConfig, render_full

    bench = Jackpine(BenchmarkConfig(engines=["greenwood"], scale=0.5))
    print(render_full(bench.run()))
"""

from repro.core import BenchmarkConfig, BenchmarkResult, Jackpine, render_full
from repro.datagen import generate
from repro.dbapi import connect
from repro.engines import Database

__version__ = "1.0.0"

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "Database",
    "Jackpine",
    "connect",
    "generate",
    "render_full",
    "__version__",
]
