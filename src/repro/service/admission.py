"""Admission control: bounded queue, per-request deadlines, load shedding.

Every query request passes through three gates:

1. :meth:`AdmissionControl.try_admit` on the event-loop thread — if the
   number of admitted-but-not-yet-executing requests has reached
   ``max_queue``, the request is shed immediately with a typed
   ``overloaded`` response. This is the bound that keeps queue growth
   (and therefore queueing latency) finite under overload.
2. :meth:`AdmissionControl.begin` on the worker thread — records the
   time spent queued as a ``Service:QueueWait`` wait event and enforces
   the per-request deadline: a request whose deadline budget was eaten
   by queueing is shed *before* it touches the engine (executing a
   query whose client has given up is pure goodput loss).
3. The *remaining* deadline is what :meth:`begin` returns; the server
   arms it as the statement's :mod:`repro.guard` timeout, so a query
   admitted with 80ms of budget left is cancelled by the ordinary
   guardrail machinery at 80ms, not at the full statement timeout.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import ServiceOverloadedError
from repro.obs.waits import SERVICE_QUEUE, WAITS

__all__ = ["AdmissionControl", "AdmissionTicket"]


class AdmissionTicket:
    __slots__ = ("arrival", "deadline")

    def __init__(self, arrival: float, deadline: float):
        self.arrival = arrival
        self.deadline = deadline


class AdmissionControl:
    def __init__(self, max_queue: int = 32, deadline: float = 1.0):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.max_queue = max_queue
        self.deadline = deadline
        self._lock = threading.Lock()
        self._queued = 0
        self._executing = 0
        self.peak_queue = 0
        self.admitted = 0
        self.completed = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0

    def try_admit(self) -> Optional[AdmissionTicket]:
        """Admit or shed; ``None`` means the queue is full."""
        now = time.perf_counter()
        with self._lock:
            if self._queued >= self.max_queue:
                self.shed_queue_full += 1
                return None
            self._queued += 1
            if self._queued > self.peak_queue:
                self.peak_queue = self._queued
            self.admitted += 1
        return AdmissionTicket(now, now + self.deadline)

    def cancel(self, ticket: AdmissionTicket) -> None:
        """Give an admitted slot back without executing (dispatch failed)."""
        with self._lock:
            self._queued -= 1

    def begin(self, ticket: AdmissionTicket) -> float:
        """Worker picked the request up: account the queue wait, enforce
        the deadline, move queued -> executing. Returns the remaining
        deadline budget in seconds."""
        now = time.perf_counter()
        if WAITS.enabled:
            WAITS.record(SERVICE_QUEUE, now - ticket.arrival)
        remaining = ticket.deadline - now
        with self._lock:
            self._queued -= 1
            if remaining <= 0.0:
                self.shed_deadline += 1
            else:
                self._executing += 1
        if remaining <= 0.0:
            raise ServiceOverloadedError(
                f"deadline expired after {now - ticket.arrival:.3f}s in "
                f"queue (budget {self.deadline:.3f}s)",
                retry_after=self.deadline,
            )
        return remaining

    def done(self) -> None:
        with self._lock:
            self._executing -= 1
            self.completed += 1

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "queue_depth": self._queued,
                "queue_limit": self.max_queue,
                "peak_queue": self.peak_queue,
                "executing": self._executing,
                "admitted": self.admitted,
                "completed": self.completed,
                "shed_queue_full": self.shed_queue_full,
                "shed_deadline": self.shed_deadline,
            }
