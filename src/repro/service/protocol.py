"""Wire protocol for the query service: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON. Requests and responses are flat JSON
objects; a request carries an ``op`` (``query`` / ``ping`` / ``stats``)
and an ``id`` the response echoes, so one connection is one ordered
session the way a DB wire session is.

Result values cross the wire as JSON scalars; geometry values are
encoded as ``{"$wkt": "..."}`` tagged objects (the client hands the WKT
string back). Errors are *typed*: ``{"ok": false, "error": {"code":
..., "message": ...}}`` where ``code`` is one of ``overloaded`` /
``timeout`` / ``serialization`` / ``sql`` / ``protocol`` / ``internal``
— the client library maps them back onto the exception hierarchy, and
``overloaded`` additionally carries ``retry_after`` seconds.

A ``query`` request may carry an optional ``trace`` field —
``{"trace_id": str, "span_id": str, "sent_at": epoch_float}`` — that
propagates the client's trace context for end-to-end request tracing
(``repro.obs.requests``). The field is strictly additive: servers that
predate it ignore it, clients that omit it still work, and a malformed
``trace`` value is dropped rather than failing the request
(:func:`trace_context` is deliberately tolerant). A tracing server
echoes ``trace_id`` on the matching response.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceProtocolError

__all__ = [
    "MAX_FRAME",
    "encode_frame",
    "decode_body",
    "read_frame",
    "write_frame",
    "jsonable_rows",
    "decode_rows",
    "error_payload",
    "trace_context",
]

#: refuse frames larger than this (a corrupt length prefix must not
#: make the reader allocate gigabytes)
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: every error code a response may carry
ERROR_CODES = (
    "overloaded", "timeout", "serialization", "sql", "protocol", "internal",
)


def encode_frame(message: Dict[str, Any]) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ServiceProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(data: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceProtocolError(
            f"frame must decode to an object, got {type(message).__name__}"
        )
    return message


# -- blocking socket framing (the client library) ---------------------------


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a frame
    boundary, :class:`ServiceProtocolError` on a torn frame."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise ServiceProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One message off a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServiceProtocolError(
            f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    body = _recv_exactly(sock, length)
    if body is None:
        raise ServiceProtocolError("connection closed after frame header")
    return decode_body(body)


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


# -- value encoding ---------------------------------------------------------


def _jsonable_value(value: Any) -> Any:
    wkt = getattr(value, "wkt", None)
    if callable(wkt):
        return {"$wkt": wkt()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def jsonable_rows(rows: Sequence[Sequence[Any]]) -> List[List[Any]]:
    return [[_jsonable_value(v) for v in row] for row in rows]


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$wkt" in value:
        return value["$wkt"]
    return value


def decode_rows(rows: Sequence[Sequence[Any]]) -> List[tuple]:
    """Wire rows back to tuples (geometry arrives as its WKT string)."""
    return [tuple(_decode_value(v) for v in row) for row in rows]


def trace_context(message: Dict[str, Any]):
    """The request's :class:`~repro.obs.requests.TraceContext`, or
    ``None`` when the ``trace`` field is absent or malformed — an old or
    foreign client must never have its query rejected over trace
    metadata."""
    payload = message.get("trace")
    if payload is None:
        return None
    from repro.obs.requests import TraceContext

    return TraceContext.from_wire(payload)


def error_payload(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    payload: Dict[str, Any] = {"code": code, "message": message}
    payload.update(extra)
    return payload
