"""The query service tier: network access to the embedded engines.

``repro.service`` turns the in-process benchmark engine into a small
client/server system — an asyncio TCP server speaking length-prefixed
JSON frames (:mod:`~repro.service.protocol`), a bounded session pool
(:mod:`~repro.service.pool`), admission control with deadlines and load
shedding (:mod:`~repro.service.admission`), and a read-through result
cache invalidated by MVCC write watermarks
(:mod:`~repro.service.cache`). :mod:`~repro.service.client` is the
blocking client library; :mod:`~repro.service.loadgen` the open-loop
fleet that J-X6 uses to measure saturation and overload behaviour.

See ``docs/SERVICE.md`` for the protocol and the cache-consistency
argument.
"""

from repro.service.admission import AdmissionControl, AdmissionTicket
from repro.service.cache import CachedExecutor, ResultCache
from repro.service.client import RemoteResult, ServiceClient
from repro.service.loadgen import run_server_workload
from repro.service.pool import SessionPool
from repro.service.protocol import (
    MAX_FRAME,
    decode_rows,
    encode_frame,
    jsonable_rows,
    read_frame,
    write_frame,
)
from repro.service.server import JackpineServer, ServerConfig

__all__ = [
    "AdmissionControl",
    "AdmissionTicket",
    "CachedExecutor",
    "JackpineServer",
    "MAX_FRAME",
    "RemoteResult",
    "ResultCache",
    "ServerConfig",
    "ServiceClient",
    "SessionPool",
    "decode_rows",
    "encode_frame",
    "jsonable_rows",
    "read_frame",
    "run_server_workload",
    "write_frame",
]
