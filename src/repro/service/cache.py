"""Read-through query-result cache with MVCC xid watermark invalidation.

Cache key: ``(raw SQL text, params)``. The literal-normalised
fingerprint the statement store uses is deliberately *not* part of the
key: ``SELECT ... WHERE gid = 7`` and ``... = 8`` share a fingerprint,
and keying on it would serve one query's rows as the other's whenever
their bound params coincide (e.g. both empty). The raw text tells
literal-bearing statements apart; fingerprints stay a stats/metadata
concern of :mod:`repro.obs.statements`.

Invalidation is *precise*, not TTL-based. The engine stamps
``Database.write_marks[table]`` with the committing transaction's xid
after its rows become visible (and with a fresh xid for the
non-transactional fast paths and DDL). A cache entry stores the
watermark of every table the SELECT reads, captured **before** the
query executed; a lookup serves the entry only while every watermark is
still identical. The ordering closes both races:

- a commit that lands *during* a fill bumped the mark after the entry
  captured it, so the entry is born stale and the next lookup discards
  it (over-invalidation, never staleness);
- a commit that lands *between* a lookup's validity check and its
  response is indistinguishable from the read executing just before the
  commit — a legal serialization order any uncached reader could also
  observe. Read-your-writes holds because a writer's own commit bumps
  the mark before the write's response is sent.

Sessions with an open transaction bypass the cache entirely, both ways:
their snapshot may be older than the newest committed state the cache
reflects, and their own uncommitted writes are visible to no cached
entry. Statements that read a ``jackpine_*`` system view are never
cached (the views are live windows, not MVCC tables).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.engines.sysviews import SYSTEM_VIEW_NAMES
from repro.sql import ast

__all__ = ["ResultCache", "CachedExecutor", "select_tables"]


def select_tables(statement: Any) -> Optional[Tuple[str, ...]]:
    """The tables a statement reads, or ``None`` when it is not a plain
    cacheable SELECT. A SELECT with no FROM reads no tables and caches
    on an empty watermark set (every shipped function is deterministic).
    """
    if not isinstance(statement, ast.Select):
        return None
    names = set()
    if statement.source is not None:
        names.add(statement.source.name.lower())
    for join in statement.joins:
        names.add(join.table.name.lower())
    if names & set(SYSTEM_VIEW_NAMES):
        return None
    return tuple(sorted(names))


class _Entry:
    __slots__ = ("columns", "rows", "rowcount", "marks")

    def __init__(self, columns, rows, rowcount, marks):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.marks = marks


class ResultCache:
    """LRU store of materialised SELECT results keyed by
    ``(raw SQL text, params)``; thread-safe, bounded by ``capacity``."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.fills = 0
        self.bypass = 0

    def lookup(self, key: tuple, marks: tuple,
               info: Optional[dict] = None) -> Optional[_Entry]:
        """The entry for ``key`` iff its watermarks still match ``marks``
        (the *current* per-table write marks); a mismatch evicts.
        ``info``, when given, receives ``{"status": "hit"/"miss"/
        "stale"}`` — the request tracer distinguishes a cold miss from a
        watermark invalidation (cache-stale-adjacent requests are
        tail-sampled)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                if info is not None:
                    info["status"] = "miss"
                return None
            if entry.marks != marks:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                if info is not None:
                    info["status"] = "stale"
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if info is not None:
                info["status"] = "hit"
            return entry

    def store(self, key: tuple, columns, rows, rowcount, marks) -> None:
        with self._lock:
            if key not in self._entries and \
                    len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[key] = _Entry(columns, rows, rowcount, marks)
            self.fills += 1

    def note_bypass(self) -> None:
        """Count one uncacheable execution (under the lock, like every
        other counter — bypasses are noted from concurrent workers)."""
        with self._lock:
            self.bypass += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "fills": self.fills,
                "bypass": self.bypass,
            }

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0


class CachedExecutor:
    """Read-through execution over one shared database.

    ``execute(connection, sql, params)`` returns ``(columns, rows,
    rowcount, cached)``. With ``cache=None`` it degrades to a plain
    pass-through, which is what ``--no-cache`` servers run.
    """

    #: per-SQL-text cacheability memo bound (table set, or None)
    META_CAPACITY = 512

    def __init__(self, database: Any, cache: Optional[ResultCache] = None):
        self._db = database
        self.cache = cache
        self._meta_lock = threading.Lock()
        self._meta: "OrderedDict[str, Optional[tuple]]" = OrderedDict()

    def _cacheable_tables(self, sql: str) -> Optional[Tuple[str, ...]]:
        """The table set for a cacheable SELECT else ``None``; memoised
        per SQL text like the engine's parse cache."""
        with self._meta_lock:
            if sql in self._meta:
                self._meta.move_to_end(sql)
                return self._meta[sql]
        statement = self._db._parse_statement(sql)
        tables = select_tables(statement)
        with self._meta_lock:
            if len(self._meta) >= self.META_CAPACITY:
                self._meta.popitem(last=False)
            self._meta[sql] = tables
        return tables

    def _current_marks(self, tables: Tuple[str, ...]) -> tuple:
        marks = self._db.write_marks
        return tuple(marks.get(name) for name in tables)

    def _execute_engine(self, connection, sql, params, timeout, stages):
        """One engine execution, staged as ``execute`` on the request
        trace when one is being recorded."""
        if stages is None:
            return self._db.execute(
                sql, params, timeout=timeout, session=connection.session
            )
        start = time.perf_counter()
        try:
            return self._db.execute(
                sql, params, timeout=timeout, session=connection.session
            )
        finally:
            stages.stage("execute", start, time.perf_counter() - start)

    def execute(
        self,
        connection: Any,
        sql: str,
        params: Any = (),
        timeout: Optional[float] = None,
        stages: Any = None,
    ) -> Tuple[list, list, int, bool]:
        """``stages`` is an optional request-trace sink (duck-typed
        :class:`repro.obs.requests.PendingRequest`): the cache lookup and
        the engine execution are staged onto it, and ``cache_status``
        records hit / miss / stale / bypass for the tail sampler."""
        cache = self.cache
        params = tuple(params)
        tables = None
        if cache is not None and not connection.in_transaction:
            tables = self._cacheable_tables(sql)
        if tables is None:
            if cache is not None:
                cache.note_bypass()
                if stages is not None:
                    stages.cache_status = "bypass"
            result = self._execute_engine(
                connection, sql, params, timeout, stages
            )
            return result.columns, result.rows, result.rowcount, False
        try:
            # keyed on the raw text: statements differing only in
            # literals must not collide (see module docstring)
            key = (sql, params)
            hash(key)
        except TypeError:
            cache.note_bypass()
            if stages is not None:
                stages.cache_status = "bypass"
            result = self._execute_engine(
                connection, sql, params, timeout, stages
            )
            return result.columns, result.rows, result.rowcount, False
        marks = self._current_marks(tables)
        if stages is None:
            entry = cache.lookup(key, marks)
        else:
            info: dict = {}
            lookup_start = time.perf_counter()
            entry = cache.lookup(key, marks, info)
            status = info.get("status", "miss")
            stages.stage(
                "cache.lookup", lookup_start,
                time.perf_counter() - lookup_start, status,
            )
            stages.cache_status = status
        if entry is not None:
            return entry.columns, entry.rows, entry.rowcount, True
        # marks were captured before execution: a commit racing this
        # fill leaves the entry stale-marked and therefore dead on its
        # next lookup (see module docstring)
        result = self._execute_engine(connection, sql, params, timeout, stages)
        cache.store(key, result.columns, result.rows, result.rowcount, marks)
        return result.columns, result.rows, result.rowcount, False
